//! Thompson sampling over a threshold grid (the EESD-style control
//! mechanism): reward is tokens-per-unit-work, gated by an accuracy
//! floor on the verifier's accept rate.

use specee_core::ExitFeedback;
use specee_tensor::rng::Pcg;

use crate::classed::ClassEvidence;
use crate::controller::{Controller, ControllerSummary, FeedbackCounters};

/// Arms, epoch length, reward shaping and seed for [`BanditController`].
#[derive(Debug, Clone, PartialEq)]
pub struct BanditConfig {
    /// The threshold grid (the bandit's arms). Every layer shares the
    /// sampled arm — the grid trades per-layer resolution for a sample
    /// budget small enough to adapt within one traffic phase.
    pub grid: Vec<f32>,
    /// Tokens per decision epoch: the arm is re-sampled, and the reward
    /// posterior updated, once per epoch.
    pub epoch_tokens: u64,
    /// Accuracy floor: an epoch whose verifier accept rate (accepted
    /// fires over all fires) falls below this earns zero reward no
    /// matter how much work it saved, so the posterior learns that arms
    /// which fire recklessly are worthless. A *healthy* operating point
    /// fires once or twice per token before its accepted exit (rate
    /// 0.4–0.8); a miscalibrated one fires dozens of times for one
    /// accept (rate under 0.2) — the floor sits between those regimes.
    pub accuracy_floor: f64,
    /// Work charged per rejected fire, in executed-layer equivalents (a
    /// failed verification still paid one full LM-head forward).
    pub reject_cost_layers: f64,
    /// Per-epoch posterior discount toward the uniform prior, in
    /// `(0, 1]` — the standard nonstationary-bandit device: old evidence
    /// decays with a half-life of roughly `1 / (1 - discount)` epochs,
    /// so after traffic drifts the arms re-earn their standing instead
    /// of living off a stale record. `1.0` disables forgetting.
    pub discount: f64,
    /// Pseudo-observations one epoch contributes to the played arm's
    /// Beta posterior (`alpha += e·r`, `beta += e·(1−r)`): an epoch
    /// summarizes several tokens of evidence, so weighting it as a
    /// single coin flip would leave Thompson sampling churning on noise
    /// long after the rewards have separated.
    pub epoch_evidence: f64,
    /// Pseudo-observations one *full epoch worth* of absorbed remote
    /// evidence (cross-worker gossip) contributes to the posterior of
    /// the arm nearest the reporting worker's operating point. Windows
    /// shorter than an epoch contribute proportionally less — gossip
    /// arrives at every arrival frontier, so a flat per-window weight
    /// would let dozens of 1–2-token windows (whose rewards are mostly
    /// uninformative ~0.5 noise) swamp the well-measured local epochs.
    /// Below `epoch_evidence` by default: remote traffic informs, local
    /// traffic decides.
    pub gossip_evidence: f64,
    /// Seed of the controller's private deterministic RNG.
    pub seed: u64,
}

impl Default for BanditConfig {
    fn default() -> Self {
        BanditConfig {
            // 1.0 is the safety arm: no sigmoid score exceeds it, so
            // playing it disables exits outright — the right move on
            // traffic where every fire is a rejected verification.
            grid: vec![0.2, 0.5, 0.8, 1.0],
            epoch_tokens: 8,
            accuracy_floor: 0.4,
            reject_cost_layers: 2.0,
            discount: 0.95,
            epoch_evidence: 5.0,
            gossip_evidence: 2.0,
            seed: 0x5eed,
        }
    }
}

/// Index of the grid arm nearest `threshold`, ties toward the lower arm.
fn nearest_arm(grid: &[f32], threshold: f32) -> usize {
    grid.iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            (*a - threshold)
                .abs()
                .partial_cmp(&(*b - threshold).abs())
                .expect("finite grid")
        })
        .map(|(i, _)| i)
        .expect("non-empty grid")
}

/// One arm's Beta posterior over the (Bernoulli-ized) epoch reward.
#[derive(Debug, Clone, Copy)]
struct Arm {
    alpha: f64,
    beta: f64,
}

/// Thompson-sampling threshold control (the `bandit` policy).
///
/// Per epoch of [`BanditConfig::epoch_tokens`] emitted tokens the
/// controller scores the arm it played. The raw signal is the signed
/// work saving `1 − (executed layers + priced rejects) / (tokens ×
/// n_layers)`, mapped to a reward centered at the no-exit baseline
/// (`0.5 · (1 + saving)`, clamped to `[0, 1]`) so an arm that merely
/// disables exits out-earns one that bleeds rejected verifications; the
/// reward is zeroed outright when the verifier accept rate undercuts
/// the accuracy floor. The controller flips a Bernoulli coin with that
/// probability to update the arm's Beta posterior, then draws one sample
/// from every arm's posterior and plays the argmax. Everything draws
/// from an explicitly seeded [`Pcg`], so the trajectory is a pure
/// function of the feedback stream.
#[derive(Debug, Clone)]
pub struct BanditController {
    config: BanditConfig,
    arms: Vec<Arm>,
    current: usize,
    rng: Pcg,
    counters: FeedbackCounters,
    // Epoch accumulators.
    epoch_tokens: u64,
    epoch_layers: u64,
    epoch_accepts: u64,
    epoch_rejects: u64,
    epochs: u64,
}

impl BanditController {
    /// Creates the bandit with uniform priors, starting on the grid arm
    /// nearest `base_threshold`.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or `epoch_tokens` is zero.
    pub fn new(base_threshold: f32, config: BanditConfig) -> Self {
        assert!(!config.grid.is_empty(), "bandit needs at least one arm");
        assert!(
            config.epoch_tokens > 0,
            "epoch must cover at least one token"
        );
        let current = nearest_arm(&config.grid, base_threshold);
        let rng = Pcg::seed_stream(config.seed, 0xc047_0151);
        BanditController {
            arms: vec![
                Arm {
                    alpha: 1.0,
                    beta: 1.0
                };
                config.grid.len()
            ],
            current,
            rng,
            config,
            counters: FeedbackCounters::default(),
            epoch_tokens: 0,
            epoch_layers: 0,
            epoch_accepts: 0,
            epoch_rejects: 0,
            epochs: 0,
        }
    }

    /// Decision epochs completed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The arm currently played (index into the grid).
    pub fn current_arm(&self) -> usize {
        self.current
    }

    /// The `[0, 1]` reward of a window of `tokens` emitted tokens: the
    /// signed work saving centered at the no-exit baseline — a window
    /// that spends exactly full depth scores 0.5, harvested savings push
    /// toward 1, and rejected fires can push *below* 0.5 (so "exits off"
    /// beats a bleeding arm instead of tying with it at zero) — zeroed
    /// outright when the verifier accept rate undercuts the floor.
    fn window_reward(
        &self,
        tokens: u64,
        executed_layers: u64,
        accepts: u64,
        rejects: u64,
        n_layers: usize,
    ) -> f64 {
        let full_work = tokens as f64 * n_layers as f64;
        let spent = executed_layers as f64 + self.config.reject_cost_layers * rejects as f64;
        let saved = 1.0 - spent / full_work;
        let fires = accepts + rejects;
        let accept_rate = if fires > 0 {
            accepts as f64 / fires as f64
        } else {
            1.0 // no fires, no accuracy risk
        };
        if accept_rate < self.config.accuracy_floor {
            0.0
        } else {
            (0.5 * (1.0 + saved)).clamp(0.0, 1.0)
        }
    }

    fn finish_epoch(&mut self, n_layers: usize) {
        let reward = self.window_reward(
            self.epoch_tokens,
            self.epoch_layers,
            self.epoch_accepts,
            self.epoch_rejects,
            n_layers,
        );
        // Forget before learning: decay every posterior toward the
        // uniform prior so drifted traffic re-ranks the arms.
        let d = self.config.discount.clamp(0.0, 1.0);
        for arm in &mut self.arms {
            arm.alpha = 1.0 + (arm.alpha - 1.0) * d;
            arm.beta = 1.0 + (arm.beta - 1.0) * d;
        }
        // Fractional Beta update: the epoch's [0, 1] reward enters as
        // `epoch_evidence` pseudo-observations.
        let e = self.config.epoch_evidence.max(0.0);
        let arm = &mut self.arms[self.current];
        arm.alpha += e * reward;
        arm.beta += e * (1.0 - reward);
        // Thompson step: sample every posterior, play the argmax.
        let mut best = (0usize, f64::NEG_INFINITY);
        for (i, arm) in self.arms.iter().enumerate() {
            let draw = beta_sample(&mut self.rng, arm.alpha, arm.beta);
            if draw > best.1 {
                best = (i, draw);
            }
        }
        self.current = best.0;
        self.epochs += 1;
        self.epoch_tokens = 0;
        self.epoch_layers = 0;
        self.epoch_accepts = 0;
        self.epoch_rejects = 0;
    }
}

impl Controller for BanditController {
    fn name(&self) -> &'static str {
        "bandit"
    }

    fn observe(&mut self, feedback: &ExitFeedback) {
        self.counters.observe(feedback);
        if feedback.accepted {
            self.epoch_accepts += 1;
        } else {
            self.epoch_rejects += 1;
        }
    }

    fn note_token(&mut self, executed_layers: usize, n_layers: usize) {
        self.counters.tokens += 1;
        self.epoch_tokens += 1;
        self.epoch_layers += executed_layers.min(n_layers) as u64;
        if self.epoch_tokens >= self.config.epoch_tokens {
            self.finish_epoch(n_layers);
        }
    }

    fn threshold(&self, _layer: usize) -> f32 {
        self.config.grid[self.current]
    }

    fn absorb(&mut self, evidence: &ClassEvidence) {
        // A remote window is a borrowed epoch: score it with the same
        // reward shaping and credit the arm nearest the *reporting*
        // worker's operating point (that is the arm whose quality the
        // evidence speaks to), at the reduced gossip evidence weight.
        // No posterior discount and no Thompson redraw happen here —
        // forgetting and arm switches stay paced by local epochs — and
        // nothing touches the RNG, so absorbing evidence never perturbs
        // the local exploration stream.
        if evidence.tokens == 0 || evidence.n_layers == 0 {
            return;
        }
        let reward = self.window_reward(
            evidence.tokens,
            evidence.executed_layers,
            evidence.accepts(),
            evidence.rejects(),
            evidence.n_layers,
        );
        let arm_idx = nearest_arm(&self.config.grid, evidence.mean_threshold as f32);
        let window = (evidence.tokens as f64 / self.config.epoch_tokens.max(1) as f64).min(1.0);
        let e = self.config.gossip_evidence.max(0.0) * window;
        let arm = &mut self.arms[arm_idx];
        arm.alpha += e * reward;
        arm.beta += e * (1.0 - reward);
    }

    fn summary(&self) -> ControllerSummary {
        ControllerSummary {
            policy: self.name(),
            mean_threshold: f64::from(self.config.grid[self.current]),
            accepts: self.counters.accepts,
            rejects: self.counters.rejects,
            tokens: self.counters.tokens,
        }
    }
}

/// Marsaglia–Tsang Gamma(shape, 1) sampler (shape > 0).
fn gamma_sample(rng: &mut Pcg, shape: f64) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) · U^(1/a).
        let u = rng.next_f64().max(1e-300);
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = rng.normal();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.next_f64().max(1e-300);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Beta(a, b) sample as a ratio of Gammas.
fn beta_sample(rng: &mut Pcg, a: f64, b: f64) -> f64 {
    let x = gamma_sample(rng, a);
    let y = gamma_sample(rng, b);
    if x + y == 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(accepted: bool) -> ExitFeedback {
        ExitFeedback {
            class: specee_core::TrafficClass::DEFAULT,
            layer: 0,
            score: 0.7,
            threshold: 0.5,
            accepted,
        }
    }

    #[test]
    fn starts_on_nearest_arm() {
        let ctl = BanditController::new(0.55, BanditConfig::default());
        assert_eq!(ctl.threshold(0), 0.5);
        let ctl = BanditController::new(0.9, BanditConfig::default());
        assert_eq!(ctl.threshold(0), 0.8);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let run = || {
            let mut ctl = BanditController::new(0.5, BanditConfig::default());
            for i in 0..400u64 {
                ctl.observe(&fb(i % 3 != 0));
                ctl.note_token(if i % 2 == 0 { 4 } else { 12 }, 12);
            }
            (ctl.current_arm(), ctl.summary())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn learns_the_saving_arm() {
        // Synthetic environment: the 0.2 arm saves most work with a clean
        // accept stream; higher arms save nothing. The posterior should
        // concentrate play on 0.2.
        let mut ctl = BanditController::new(
            0.8,
            BanditConfig {
                epoch_tokens: 4,
                ..BanditConfig::default()
            },
        );
        let mut plays_low = 0u32;
        for _ in 0..300 {
            let thr = ctl.threshold(0);
            let (executed, accepted) = if thr <= 0.25 {
                (4usize, true) // deep saving, verifier clean
            } else {
                (12usize, true) // no exits happen at strict thresholds
            };
            if executed < 12 {
                ctl.observe(&fb(accepted));
            }
            for _ in 0..4 {
                ctl.note_token(executed, 12);
            }
            if thr <= 0.25 {
                plays_low += 1;
            }
        }
        assert!(plays_low > 150, "played the saving arm {plays_low}/300");
    }

    #[test]
    fn accuracy_floor_vetoes_dirty_arms() {
        // The 0.2 arm saves work but the verifier rejects most of its
        // fires; the 0.5 arm saves a little, cleanly. With the floor the
        // bandit must settle on the clean arm.
        let mut ctl = BanditController::new(
            0.2,
            BanditConfig {
                grid: vec![0.2, 0.5],
                epoch_tokens: 4,
                ..BanditConfig::default()
            },
        );
        let mut plays_clean = 0u32;
        for _ in 0..400u32 {
            let thr = ctl.threshold(0);
            if thr <= 0.25 {
                // Eager arm: fires five times per epoch, 80% rejected —
                // every one of its epochs undercuts the accuracy floor.
                for j in 0..5 {
                    ctl.observe(&fb(j < 1));
                }
                for _ in 0..4 {
                    ctl.note_token(6, 12);
                }
            } else {
                plays_clean += 1;
                ctl.observe(&fb(true));
                for _ in 0..4 {
                    ctl.note_token(9, 12);
                }
            }
        }
        assert!(plays_clean > 200, "played the clean arm {plays_clean}/400");
    }

    #[test]
    fn absorb_credits_the_reporters_arm_without_touching_the_rng() {
        use crate::classed::ClassEvidence;
        use specee_core::TrafficClass;
        // Two identical controllers; one absorbs glowing remote evidence
        // for the 0.2 arm. Its 0.2 posterior mean must rise, and the
        // local trajectory (arm play sequence under identical local
        // feedback) must stay in lock-step until the posteriors actually
        // diverge a Thompson draw — never because the RNG was consumed.
        let build = || BanditController::new(0.8, BanditConfig::default());
        let (plain, mut gossiped) = (build(), build());
        let mut evidence = ClassEvidence::empty(TrafficClass::new(1), 4, 12);
        evidence.layer_accepts[0] = 8;
        evidence.tokens = 8;
        evidence.executed_layers = 3 * 8; // deep saving
        evidence.mean_threshold = 0.2;
        for _ in 0..10 {
            gossiped.absorb(&evidence);
        }
        // Posterior mean of the 0.2 arm: alpha grew by gossip reward.
        assert!(gossiped.arms[0].alpha > plain.arms[0].alpha);
        assert_eq!(
            gossiped.current_arm(),
            plain.current_arm(),
            "absorb alone never switches arms"
        );
        // Rewardless dimensions: empty evidence is a no-op.
        let before = gossiped.arms[0].alpha;
        gossiped.absorb(&ClassEvidence::empty(TrafficClass::new(1), 4, 12));
        assert_eq!(gossiped.arms[0].alpha, before);
    }

    #[test]
    fn beta_sampler_matches_moments() {
        let mut rng = Pcg::seed(9);
        let n = 20_000;
        let (a, b) = (6.0, 2.0);
        let mean = (0..n).map(|_| beta_sample(&mut rng, a, b)).sum::<f64>() / n as f64;
        assert!((mean - a / (a + b)).abs() < 0.01, "mean {mean}");
        let mut rng = Pcg::seed(10);
        let samples: Vec<f64> = (0..n).map(|_| beta_sample(&mut rng, 0.5, 0.5)).collect();
        assert!(samples.iter().all(|s| (0.0..=1.0).contains(s)));
        let m = samples.iter().sum::<f64>() / n as f64;
        assert!((m - 0.5).abs() < 0.02, "mean {m}");
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_grid_rejected() {
        let _ = BanditController::new(
            0.5,
            BanditConfig {
                grid: vec![],
                ..BanditConfig::default()
            },
        );
    }
}
