//! The [`Controller`] trait and the static (fixed-threshold) baseline.

use specee_core::predictor::PredictorBank;
use specee_core::ExitFeedback;

use crate::classed::ClassEvidence;

/// Closed-loop exit-threshold control.
///
/// A controller watches two deterministic event streams produced by the
/// decode loop — the verifier's per-fire accept/reject outcomes
/// ([`ExitFeedback`], via [`Controller::observe`]) and per-token executed
/// depths (via [`Controller::note_token`]) — and maintains one exit
/// threshold per predictor layer. The runtime pushes the operating point
/// back into its [`PredictorBank`] with [`Controller::apply`] after each
/// decode step, so threshold changes take effect at the next token
/// boundary and never mid-scan.
///
/// Implementations must be deterministic: the same event stream must
/// produce the same threshold trajectory (randomized policies draw from
/// an explicitly seeded generator). That is what lets controller state
/// ride the cluster's arrival-frontier protocol unchanged.
///
/// # Examples
///
/// ```
/// use specee_control::{Controller, ControllerPolicy};
/// use specee_core::ExitFeedback;
///
/// // A PID controller tracking a 20% false-exit rate over 8 predictor
/// // layers, starting from the paper's 0.5 operating point.
/// let mut ctl = ControllerPolicy::pid().build(8, 0.5);
/// let before = ctl.threshold(3);
/// // A burst of rejected fires at layer 3: the false-exit rate is above
/// // target, so the controller raises that layer's threshold.
/// for _ in 0..16 {
///     ctl.observe(&ExitFeedback {
///         class: specee_core::TrafficClass::DEFAULT,
///         layer: 3,
///         score: 0.6,
///         threshold: before,
///         accepted: false,
///     });
/// }
/// assert!(ctl.threshold(3) > before);
/// let summary = ctl.summary();
/// assert_eq!(summary.rejects, 16);
/// ```
pub trait Controller: Send {
    /// Short policy name for reports and CLI selection.
    fn name(&self) -> &'static str;

    /// Feeds one verifier outcome (one predictor fire) to the policy.
    fn observe(&mut self, feedback: &ExitFeedback);

    /// Feeds one emitted token: how many decoder layers it executed out
    /// of `n_layers`. This is the work signal reward-seeking policies
    /// price (a token that ran the full stack saved nothing), and the
    /// only signal that arrives when thresholds are so high that no
    /// predictor fires.
    fn note_token(&mut self, executed_layers: usize, n_layers: usize);

    /// The current threshold for `layer`'s predictor.
    fn threshold(&self, layer: usize) -> f32;

    /// Pushes the current operating point into `bank`. The default
    /// writes [`Controller::threshold`] for every predictor layer;
    /// the static policy overrides it with a no-op so attaching it is
    /// bit-identical to running uncontrolled.
    fn apply(&self, bank: &mut PredictorBank) {
        for layer in 0..bank.len() {
            bank.layer_mut(layer).set_threshold(self.threshold(layer));
        }
    }

    /// Absorbs summarized *remote* evidence — the cross-worker gossip a
    /// cluster coordinator merges and broadcasts at arrival frontiers.
    /// Remote evidence moves the operating point but never the local
    /// observation counters ([`Controller::summary`] keeps reporting
    /// what *this* engine saw). The default ignores it, which keeps the
    /// static policy — and thus every parity baseline — untouched by
    /// gossip.
    fn absorb(&mut self, evidence: &ClassEvidence) {
        let _ = evidence;
    }

    /// Receives the SLO burn-rate pressure signal in `[-1, 1]` from the
    /// serving tier's `specee_obs::slo::SloTracker` (positive: a latency
    /// objective is burning, bias toward aggressive exits; negative: a
    /// false-exit objective is burning, bias toward exits-off; zero:
    /// healthy). The default ignores it — only the `SloAdaptive` wrapper
    /// reacts — so plain policies stay bit-identical with or without an
    /// SLO plane attached.
    fn set_slo_pressure(&mut self, pressure: f64) {
        let _ = pressure;
    }

    /// Counters and the current operating point, for reports.
    fn summary(&self) -> ControllerSummary;
}

/// A controller's observable state, for worker reports and CLI output.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerSummary {
    /// Policy name ([`Controller::name`]).
    pub policy: &'static str,
    /// Mean threshold across predictor layers.
    pub mean_threshold: f64,
    /// Verifier accepts observed.
    pub accepts: u64,
    /// Verifier rejects observed (false exits).
    pub rejects: u64,
    /// Tokens observed via [`Controller::note_token`].
    pub tokens: u64,
}

impl ControllerSummary {
    /// Fraction of fires the verifier rejected (`None` before any fire).
    pub fn false_exit_rate(&self) -> Option<f64> {
        let fires = self.accepts + self.rejects;
        (fires > 0).then(|| self.rejects as f64 / fires as f64)
    }
}

/// Shared observation counters every policy keeps.
#[derive(Debug, Clone, Default)]
pub(crate) struct FeedbackCounters {
    pub accepts: u64,
    pub rejects: u64,
    pub tokens: u64,
}

impl FeedbackCounters {
    pub(crate) fn observe(&mut self, feedback: &ExitFeedback) {
        if feedback.accepted {
            self.accepts += 1;
        } else {
            self.rejects += 1;
        }
    }
}

pub(crate) fn mean_threshold(thresholds: &[f32]) -> f64 {
    if thresholds.is_empty() {
        0.0
    } else {
        thresholds.iter().map(|&t| f64::from(t)).sum::<f64>() / thresholds.len() as f64
    }
}

/// Today's behavior as a policy: thresholds never move.
///
/// Attaching a static controller is bit-identical to attaching none —
/// its [`Controller::apply`] is a no-op, so even a bank whose per-layer
/// thresholds differ from the controller's nominal base is left exactly
/// as the caller configured it. It still counts the feedback stream, so
/// reports can compare its observed false-exit rate against the adaptive
/// policies'.
#[derive(Debug, Clone)]
pub struct StaticController {
    thresholds: Vec<f32>,
    counters: FeedbackCounters,
}

impl StaticController {
    /// A static controller holding `n_predictors` layers at `threshold`.
    pub fn new(n_predictors: usize, threshold: f32) -> Self {
        StaticController {
            thresholds: vec![threshold.clamp(0.0, 1.0); n_predictors],
            counters: FeedbackCounters::default(),
        }
    }
}

impl Controller for StaticController {
    fn name(&self) -> &'static str {
        "static"
    }

    fn observe(&mut self, feedback: &ExitFeedback) {
        self.counters.observe(feedback);
    }

    fn note_token(&mut self, _executed_layers: usize, _n_layers: usize) {
        self.counters.tokens += 1;
    }

    fn threshold(&self, layer: usize) -> f32 {
        self.thresholds[layer]
    }

    fn apply(&self, _bank: &mut PredictorBank) {
        // Static means static: leave the bank exactly as configured.
    }

    fn summary(&self) -> ControllerSummary {
        ControllerSummary {
            policy: self.name(),
            mean_threshold: mean_threshold(&self.thresholds),
            accepts: self.counters.accepts,
            rejects: self.counters.rejects,
            tokens: self.counters.tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specee_core::predictor::PredictorConfig;
    use specee_tensor::rng::Pcg;

    fn fb(layer: usize, accepted: bool) -> ExitFeedback {
        ExitFeedback {
            class: specee_core::TrafficClass::DEFAULT,
            layer,
            score: 0.7,
            threshold: 0.5,
            accepted,
        }
    }

    #[test]
    fn static_apply_is_a_noop() {
        let mut bank = PredictorBank::new(4, &PredictorConfig::default(), &mut Pcg::seed(1));
        bank.layer_mut(1).set_threshold(0.9); // deliberately off-base
        let ctl = StaticController::new(3, 0.5);
        ctl.apply(&mut bank);
        assert_eq!(bank.layer(1).threshold(), 0.9);
        assert_eq!(bank.layer(0).threshold(), 0.5);
    }

    #[test]
    fn static_counts_but_never_moves() {
        let mut ctl = StaticController::new(4, 0.5);
        for _ in 0..10 {
            ctl.observe(&fb(2, false));
        }
        ctl.observe(&fb(1, true));
        ctl.note_token(4, 8);
        assert_eq!(ctl.threshold(2), 0.5);
        let s = ctl.summary();
        assert_eq!((s.accepts, s.rejects, s.tokens), (1, 10, 1));
        assert!((s.false_exit_rate().unwrap() - 10.0 / 11.0).abs() < 1e-12);
        assert_eq!(s.mean_threshold, 0.5);
    }

    #[test]
    fn false_exit_rate_is_none_before_any_fire() {
        let ctl = StaticController::new(2, 0.5);
        assert_eq!(ctl.summary().false_exit_rate(), None);
    }
}
