//! Linear classifiers for the AdaInfer baseline.
//!
//! AdaInfer attaches an SVM (the paper also discusses basic-model
//! predictors generally) to every decoder layer, fed with features derived
//! from the *full* vocabulary distribution. These linear models are
//! intentionally simple: their cost profile (a full LM-head traversal per
//! layer plus a cheap classifier) is what SpecEE's T1 is measured against.

use serde::{Deserialize, Serialize};
use specee_tensor::{ops, rng::Pcg};

/// Logistic-regression binary classifier trained by SGD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    w: Vec<f32>,
    b: f32,
}

impl LogisticRegression {
    /// Creates a zero-initialized model of the given input dimension.
    pub fn new(dim: usize) -> Self {
        LogisticRegression {
            w: vec![0.0; dim],
            b: 0.0,
        }
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.w.len()
    }

    /// Predicted probability of the positive class.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn predict_proba(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.w.len(), "feature dimension");
        ops::sigmoid(specee_tensor::matrix::dot(&self.w, x) + self.b)
    }

    /// Hard prediction at a 0.5 threshold.
    pub fn predict(&self, x: &[f32]) -> bool {
        self.predict_proba(x) > 0.5
    }

    /// Trains with plain SGD on log loss.
    ///
    /// # Panics
    ///
    /// Panics if inputs and labels disagree in length or dimension.
    pub fn fit(&mut self, inputs: &[Vec<f32>], labels: &[bool], epochs: usize, lr: f32, seed: u64) {
        assert_eq!(inputs.len(), labels.len(), "inputs/labels length");
        let mut rng = Pcg::seed(seed);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let x = &inputs[i];
                let target = if labels[i] { 1.0 } else { 0.0 };
                let err = self.predict_proba(x) - target;
                for (w, &xv) in self.w.iter_mut().zip(x.iter()) {
                    *w -= lr * err * xv;
                }
                self.b -= lr * err;
            }
        }
    }
}

/// Linear soft-margin SVM trained by Pegasos-style SGD on hinge loss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    w: Vec<f32>,
    b: f32,
    lambda: f32,
}

impl LinearSvm {
    /// Creates a zero model with L2 regularization strength `lambda`.
    pub fn new(dim: usize, lambda: f32) -> Self {
        LinearSvm {
            w: vec![0.0; dim],
            b: 0.0,
            lambda,
        }
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.w.len()
    }

    /// Signed margin of a sample.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn decision(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.w.len(), "feature dimension");
        specee_tensor::matrix::dot(&self.w, x) + self.b
    }

    /// Hard prediction: positive margin → `true`.
    pub fn predict(&self, x: &[f32]) -> bool {
        self.decision(x) > 0.0
    }

    /// Trains with Pegasos SGD on hinge loss.
    ///
    /// # Panics
    ///
    /// Panics if inputs and labels disagree in length or dimension.
    pub fn fit(&mut self, inputs: &[Vec<f32>], labels: &[bool], epochs: usize, seed: u64) {
        assert_eq!(inputs.len(), labels.len(), "inputs/labels length");
        let mut rng = Pcg::seed(seed);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        let mut t: f32 = 1.0;
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let x = &inputs[i];
                let y = if labels[i] { 1.0f32 } else { -1.0 };
                let lr = 1.0 / (self.lambda * t);
                let margin = y * self.decision(x);
                for w in &mut self.w {
                    *w *= 1.0 - lr * self.lambda;
                }
                if margin < 1.0 {
                    for (w, &xv) in self.w.iter_mut().zip(x.iter()) {
                        *w += lr * y * xv;
                    }
                    self.b += lr * y * 0.1;
                }
                t += 1.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(seed: u64, n: usize) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut rng = Pcg::seed(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x0 = rng.uniform(-1.0, 1.0) as f32;
            let x1 = rng.uniform(-1.0, 1.0) as f32;
            xs.push(vec![x0, x1]);
            ys.push(x0 + x1 > 0.2);
        }
        (xs, ys)
    }

    #[test]
    fn logistic_learns_separable_data() {
        let (xs, ys) = linearly_separable(1, 400);
        let mut lr = LogisticRegression::new(2);
        lr.fit(&xs, &ys, 30, 0.1, 0);
        let correct = xs
            .iter()
            .zip(ys.iter())
            .filter(|(x, &y)| lr.predict(x) == y)
            .count();
        assert!(correct as f64 / xs.len() as f64 > 0.95, "correct {correct}");
    }

    #[test]
    fn svm_learns_separable_data() {
        let (xs, ys) = linearly_separable(2, 400);
        let mut svm = LinearSvm::new(2, 1e-3);
        svm.fit(&xs, &ys, 30, 0);
        let correct = xs
            .iter()
            .zip(ys.iter())
            .filter(|(x, &y)| svm.predict(x) == y)
            .count();
        assert!(correct as f64 / xs.len() as f64 > 0.93, "correct {correct}");
    }

    #[test]
    fn untrained_models_are_neutral() {
        let lr = LogisticRegression::new(3);
        assert!((lr.predict_proba(&[1.0, 2.0, 3.0]) - 0.5).abs() < 1e-6);
        let svm = LinearSvm::new(3, 0.01);
        assert_eq!(svm.decision(&[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "feature dimension")]
    fn dimension_validated() {
        LogisticRegression::new(2).predict_proba(&[1.0]);
    }
}
