//! Binary-classification quality metrics.

use serde::{Deserialize, Serialize};

/// Confusion-matrix-derived metrics for a binary classifier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryMetrics {
    /// True positives.
    pub tp: usize,
    /// True negatives.
    pub tn: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl BinaryMetrics {
    /// Builds metrics from aligned prediction/label slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_predictions(preds: &[bool], labels: &[bool]) -> Self {
        assert_eq!(preds.len(), labels.len(), "preds/labels length");
        let mut m = BinaryMetrics::default();
        for (&p, &l) in preds.iter().zip(labels.iter()) {
            match (p, l) {
                (true, true) => m.tp += 1,
                (false, false) => m.tn += 1,
                (true, false) => m.fp += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        m
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Fraction of correct predictions (0 for an empty set).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Precision of the positive class (0 when nothing predicted positive).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall of the positive class (0 when no positives exist).
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False-positive rate (the dangerous direction for early exit: exiting
    /// when the token has not stabilized).
    pub fn false_positive_rate(&self) -> f64 {
        let denom = self.fp + self.tn;
        if denom == 0 {
            0.0
        } else {
            self.fp as f64 / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let m = BinaryMetrics::from_predictions(&[true, false, true], &[true, false, true]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.false_positive_rate(), 0.0);
    }

    #[test]
    fn all_wrong() {
        let m = BinaryMetrics::from_predictions(&[true, false], &[false, true]);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
    }

    #[test]
    fn mixed_case_counts() {
        let preds = [true, true, false, false];
        let labels = [true, false, true, false];
        let m = BinaryMetrics::from_predictions(&preds, &labels);
        assert_eq!((m.tp, m.fp, m.fn_, m.tn), (1, 1, 1, 1));
        assert_eq!(m.accuracy(), 0.5);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.recall(), 0.5);
        assert_eq!(m.f1(), 0.5);
    }

    #[test]
    fn empty_is_zero_not_nan() {
        let m = BinaryMetrics::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }
}
