//! Small neural-network substrate for SpecEE's learned components.
//!
//! The paper's exit predictor is a 2-layer MLP (12 → 512 → 1, ReLU hidden,
//! sigmoid output, BCE loss) trained offline on features collected from the
//! running model (§4.3.2, §7.4.4). The AdaInfer baseline uses an SVM over
//! full-vocabulary features. This crate provides exactly those pieces:
//! [`Mlp`] with manual backprop, an [`Adam`] optimizer and
//! [`BinaryTrainer`], plus [`LogisticRegression`] and [`LinearSvm`] for the
//! baselines, and binary-classification [`metrics`].
//!
//! # Examples
//!
//! ```
//! use specee_nn::{Activation, Mlp};
//! use specee_tensor::rng::Pcg;
//!
//! let mut rng = Pcg::seed(1);
//! let mlp = Mlp::new(&[12, 512, 1], Activation::Relu, &mut rng);
//! let y = mlp.forward(&[0.0; 12]);
//! assert_eq!(y.len(), 1);
//! ```

#![deny(missing_docs)]

pub mod dense;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod train;

pub use dense::Dense;
pub use linear::{LinearSvm, LogisticRegression};
pub use metrics::BinaryMetrics;
pub use mlp::{Activation, Mlp};
pub use train::{Adam, BinaryTrainer, TrainConfig, TrainReport};
