//! A fully-connected layer with manual gradients.

use serde::{Deserialize, Serialize};
use specee_tensor::{rng::Pcg, BackendKind, Matrix};

/// A dense affine layer `y = W x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
}

/// Gradients of a [`Dense`] layer for one mini-batch.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGrad {
    /// Gradient of the weight matrix.
    pub dw: Matrix,
    /// Gradient of the bias.
    pub db: Vec<f32>,
}

impl Dense {
    /// Creates a layer with Kaiming-uniform initialized weights and zero
    /// bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Pcg) -> Self {
        let scale = (6.0 / in_dim.max(1) as f32).sqrt();
        Dense {
            w: Matrix::random(out_dim, in_dim, scale, rng),
            b: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Borrows the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Borrows the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Forward pass for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut y = self.w.matvec(x);
        for (v, b) in y.iter_mut().zip(self.b.iter()) {
            *v += b;
        }
        y
    }

    /// Forward pass through a compute backend. With
    /// [`BackendKind::Reference`] this is bit-identical to
    /// [`Dense::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()`.
    pub fn forward_with(&self, backend: BackendKind, x: &[f32]) -> Vec<f32> {
        let mut y = backend.get().matvec(&self.w, x);
        for (v, b) in y.iter_mut().zip(self.b.iter()) {
            *v += b;
        }
        y
    }

    /// Backward pass for one sample: given the upstream gradient `dy` and
    /// the input `x` that produced it, accumulates parameter gradients into
    /// `grad` and returns the gradient with respect to `x`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn backward(&self, x: &[f32], dy: &[f32], grad: &mut DenseGrad) -> Vec<f32> {
        assert_eq!(x.len(), self.in_dim(), "backward input dim");
        assert_eq!(dy.len(), self.out_dim(), "backward output dim");
        for (r, &g) in dy.iter().enumerate() {
            grad.db[r] += g;
            let row = grad.dw.row_mut(r);
            for (c, &xv) in x.iter().enumerate() {
                row[c] += g * xv;
            }
        }
        self.w.matvec_t(dy)
    }

    /// Creates a zeroed gradient buffer matching this layer.
    pub fn zero_grad(&self) -> DenseGrad {
        DenseGrad {
            dw: Matrix::zeros(self.out_dim(), self.in_dim()),
            db: vec![0.0; self.out_dim()],
        }
    }

    /// Applies a parameter update `w -= step_w`, `b -= step_b` where the
    /// steps are produced by an optimizer.
    pub fn apply_step(&mut self, step_w: &Matrix, step_b: &[f32]) {
        self.w.add_scaled(step_w, -1.0);
        for (b, s) in self.b.iter_mut().zip(step_b.iter()) {
            *b -= s;
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// FLOPs of one forward pass.
    pub fn flops(&self) -> f64 {
        2.0 * self.w.len() as f64 + self.b.len() as f64
    }

    /// Parameter payload in bytes (f32).
    pub fn bytes(&self) -> usize {
        self.w.bytes() + self.b.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_affine() {
        let mut rng = Pcg::seed(1);
        let mut d = Dense::new(2, 2, &mut rng);
        // overwrite with known weights
        d.w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        d.b = vec![0.5, -0.5];
        assert_eq!(d.forward(&[3.0, 4.0]), vec![3.5, 7.5]);
    }

    #[test]
    fn backward_matches_numeric_gradient() {
        let mut rng = Pcg::seed(2);
        let d = Dense::new(3, 2, &mut rng);
        let x = [0.4, -0.2, 0.9];
        // loss = sum(y); dy = ones
        let dy = [1.0, 1.0];
        let mut grad = d.zero_grad();
        let dx = d.backward(&x, &dy, &mut grad);

        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let fp: f32 = d.forward(&xp).iter().sum();
            let fm: f32 = d.forward(&xm).iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (dx[i] - numeric).abs() < 1e-2,
                "dx[{i}] {} vs {numeric}",
                dx[i]
            );
        }
        // weight gradient of sum(y) wrt w[r][c] is x[c]
        for r in 0..2 {
            for (c, &xc) in x.iter().enumerate() {
                assert!((grad.dw.get(r, c) - xc).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn apply_step_moves_parameters() {
        let mut rng = Pcg::seed(3);
        let mut d = Dense::new(2, 1, &mut rng);
        let before = d.forward(&[1.0, 1.0])[0];
        let step_w = Matrix::from_rows(&[&[0.1, 0.1]]);
        d.apply_step(&step_w, &[0.05]);
        let after = d.forward(&[1.0, 1.0])[0];
        assert!((before - after - 0.25).abs() < 1e-5);
    }

    #[test]
    fn param_count_and_flops() {
        let mut rng = Pcg::seed(4);
        let d = Dense::new(12, 512, &mut rng);
        assert_eq!(d.param_count(), 12 * 512 + 512);
        assert!(d.flops() > 12_000.0);
    }
}
