//! Adam optimizer and binary-classification training loop.

use serde::{Deserialize, Serialize};
use specee_tensor::{ops, rng::Pcg, Matrix};

use crate::dense::DenseGrad;
use crate::metrics::BinaryMetrics;
use crate::mlp::Mlp;

/// Adam optimizer state for one [`Mlp`].
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m_w: Vec<Matrix>,
    v_w: Vec<Matrix>,
    m_b: Vec<Vec<f32>>,
    v_b: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates optimizer state matching the network's parameter shapes.
    pub fn new(mlp: &Mlp, lr: f32) -> Self {
        let m_w = mlp
            .layers()
            .iter()
            .map(|l| Matrix::zeros(l.out_dim(), l.in_dim()))
            .collect::<Vec<_>>();
        let m_b = mlp
            .layers()
            .iter()
            .map(|l| vec![0.0; l.out_dim()])
            .collect::<Vec<_>>();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            v_w: m_w.clone(),
            m_w,
            v_b: m_b.clone(),
            m_b,
        }
    }

    /// Applies one Adam update from accumulated gradients (scaled by
    /// `1/batch` by the caller).
    pub fn step(&mut self, mlp: &mut Mlp, grads: &[DenseGrad]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, layer) in mlp.layers_mut().iter_mut().enumerate() {
            let g = &grads[i];
            let mw = &mut self.m_w[i];
            let vw = &mut self.v_w[i];
            let mut step_w = Matrix::zeros(g.dw.rows(), g.dw.cols());
            for idx in 0..g.dw.len() {
                let grad = g.dw.as_slice()[idx];
                let m = self.beta1 * mw.as_slice()[idx] + (1.0 - self.beta1) * grad;
                let v = self.beta2 * vw.as_slice()[idx] + (1.0 - self.beta2) * grad * grad;
                mw.as_mut_slice()[idx] = m;
                vw.as_mut_slice()[idx] = v;
                let mhat = m / bc1;
                let vhat = v / bc2;
                step_w.as_mut_slice()[idx] = self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            let mb = &mut self.m_b[i];
            let vb = &mut self.v_b[i];
            let mut step_b = vec![0.0; g.db.len()];
            for idx in 0..g.db.len() {
                let grad = g.db[idx];
                mb[idx] = self.beta1 * mb[idx] + (1.0 - self.beta1) * grad;
                vb[idx] = self.beta2 * vb[idx] + (1.0 - self.beta2) * grad * grad;
                let mhat = mb[idx] / bc1;
                let vhat = vb[idx] / bc2;
                step_b[idx] = self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            layer.apply_step(&step_w, &step_b);
        }
    }
}

/// Hyper-parameters for [`BinaryTrainer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning rate.
    pub lr: f32,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed for shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 1e-3,
            epochs: 12,
            batch_size: 64,
            seed: 0,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Final average BCE loss over the training set.
    pub final_loss: f32,
    /// Loss after each epoch.
    pub loss_curve: Vec<f32>,
    /// Number of samples trained on.
    pub samples: usize,
}

/// Trains an [`Mlp`] with a sigmoid head on binary labels using BCE loss.
///
/// # Examples
///
/// ```
/// use specee_nn::{Activation, BinaryTrainer, Mlp, TrainConfig};
/// use specee_tensor::rng::Pcg;
///
/// let mut rng = Pcg::seed(5);
/// let mut mlp = Mlp::new(&[2, 16, 1], Activation::Relu, &mut rng);
/// // learn OR
/// let x = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
/// let y = vec![false, true, true, true];
/// let report = BinaryTrainer::new(TrainConfig { epochs: 200, ..Default::default() })
///     .train(&mut mlp, &x, &y);
/// assert!(report.final_loss < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct BinaryTrainer {
    config: TrainConfig,
}

impl BinaryTrainer {
    /// Creates a trainer with the given config.
    pub fn new(config: TrainConfig) -> Self {
        BinaryTrainer { config }
    }

    /// Runs training in place.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `labels` lengths differ, the input dims do not
    /// match the network, or the training set is empty.
    pub fn train(&self, mlp: &mut Mlp, inputs: &[Vec<f32>], labels: &[bool]) -> TrainReport {
        assert_eq!(inputs.len(), labels.len(), "inputs/labels length");
        assert!(!inputs.is_empty(), "empty training set");
        assert_eq!(mlp.out_dim(), 1, "binary head must have one output");
        let mut rng = Pcg::seed(self.config.seed);
        let mut adam = Adam::new(mlp, self.config.lr);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        let mut loss_curve = Vec::with_capacity(self.config.epochs);
        for _epoch in 0..self.config.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f64;
            for batch in order.chunks(self.config.batch_size.max(1)) {
                let mut grads = mlp.zero_grads();
                for &i in batch {
                    let x = &inputs[i];
                    let target = if labels[i] { 1.0f32 } else { 0.0 };
                    let trace = mlp.forward_trace(x);
                    let logit = trace.last().expect("trace")[0];
                    let p = ops::sigmoid(logit);
                    // BCE over sigmoid: d(loss)/d(logit) = p - target.
                    let dlogit = p - target;
                    epoch_loss += bce(p, target) as f64;
                    mlp.backward(&trace, &[dlogit / batch.len() as f32], &mut grads);
                }
                adam.step(mlp, &grads);
            }
            loss_curve.push((epoch_loss / inputs.len() as f64) as f32);
        }
        TrainReport {
            final_loss: *loss_curve.last().expect("at least one epoch"),
            loss_curve,
            samples: inputs.len(),
        }
    }

    /// Evaluates classification quality at a threshold.
    pub fn evaluate(
        &self,
        mlp: &Mlp,
        inputs: &[Vec<f32>],
        labels: &[bool],
        threshold: f32,
    ) -> BinaryMetrics {
        let preds: Vec<bool> = inputs
            .iter()
            .map(|x| ops::sigmoid(mlp.forward(x)[0]) > threshold)
            .collect();
        BinaryMetrics::from_predictions(&preds, labels)
    }
}

fn bce(p: f32, target: f32) -> f32 {
    let p = p.clamp(1e-7, 1.0 - 1e-7);
    -(target * p.ln() + (1.0 - target) * (1.0 - p).ln())
}

/// Deterministically splits indices into train/test partitions.
///
/// Returns `(train, test)` index vectors. `train_fraction` is clamped to
/// `[0, 1]`.
pub fn train_test_split(n: usize, train_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = Pcg::seed(seed);
    rng.shuffle(&mut idx);
    let cut = ((n as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
    let test = idx.split_off(cut.min(n));
    (idx, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Activation;

    fn xor_data() -> (Vec<Vec<f32>>, Vec<bool>) {
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![false, true, true, false];
        (x, y)
    }

    #[test]
    fn learns_xor() {
        let mut rng = Pcg::seed(7);
        let mut mlp = Mlp::new(&[2, 16, 1], Activation::Relu, &mut rng);
        let (x, y) = xor_data();
        // replicate so batches have substance
        let xs: Vec<Vec<f32>> = x.iter().cycle().take(64).cloned().collect();
        let ys: Vec<bool> = y.iter().cycle().take(64).copied().collect();
        let trainer = BinaryTrainer::new(TrainConfig {
            epochs: 300,
            lr: 5e-3,
            ..Default::default()
        });
        let report = trainer.train(&mut mlp, &xs, &ys);
        assert!(report.final_loss < 0.1, "loss {}", report.final_loss);
        let metrics = trainer.evaluate(&mlp, &x, &y, 0.5);
        assert_eq!(metrics.accuracy(), 1.0);
    }

    #[test]
    fn loss_decreases() {
        let mut rng = Pcg::seed(8);
        let mut mlp = Mlp::new(&[2, 8, 1], Activation::Relu, &mut rng);
        let (x, y) = xor_data();
        let xs: Vec<Vec<f32>> = x.iter().cycle().take(32).cloned().collect();
        let ys: Vec<bool> = y.iter().cycle().take(32).copied().collect();
        let report = BinaryTrainer::new(TrainConfig {
            epochs: 60,
            lr: 5e-3,
            ..Default::default()
        })
        .train(&mut mlp, &xs, &ys);
        assert!(report.loss_curve.first().unwrap() > report.loss_curve.last().unwrap());
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let (train, test) = train_test_split(100, 0.8, 3);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_deterministic() {
        assert_eq!(train_test_split(50, 0.5, 9), train_test_split(50, 0.5, 9));
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_training() {
        let mut rng = Pcg::seed(1);
        let mut mlp = Mlp::new(&[2, 4, 1], Activation::Relu, &mut rng);
        BinaryTrainer::new(TrainConfig::default()).train(&mut mlp, &[], &[]);
    }
}
