//! Multi-layer perceptron with ReLU hidden activations.

use serde::{Deserialize, Serialize};
use specee_tensor::{ops, rng::Pcg, BackendKind};

use crate::dense::{Dense, DenseGrad};

/// Hidden-layer activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit (the paper's choice, §4.3.2).
    Relu,
    /// Hyperbolic tangent (kept for the design-space exploration).
    Tanh,
}

impl Activation {
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => ops::relu(x),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the activation *output*.
    fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
        }
    }
}

/// A feed-forward network: dense layers with the chosen activation between
/// them and a *linear* final layer (callers apply sigmoid/softmax).
///
/// The SpecEE predictor is `Mlp::new(&[12, 512, 1], Activation::Relu, ..)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer dimensions, e.g. `&[12, 512, 1]`
    /// for one hidden layer of width 512.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn new(dims: &[usize], activation: Activation, rng: &mut Pcg) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Number of dense layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Borrows the layers (optimizer access).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutably borrows the layers (optimizer access).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Forward pass for one sample; the final layer is linear.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut h = x.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i != last {
                for v in &mut h {
                    *v = self.activation.apply(*v);
                }
            }
        }
        h
    }

    /// Forward pass through a compute backend. With
    /// [`BackendKind::Reference`] this is bit-identical to
    /// [`Mlp::forward`].
    pub fn forward_with(&self, backend: BackendKind, x: &[f32]) -> Vec<f32> {
        let mut h = x.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward_with(backend, &h);
            if i != last {
                for v in &mut h {
                    *v = self.activation.apply(*v);
                }
            }
        }
        h
    }

    /// Forward pass that keeps every intermediate activation (input of each
    /// layer plus final output), for use by [`Mlp::backward`].
    pub fn forward_trace(&self, x: &[f32]) -> Vec<Vec<f32>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut h = layer.forward(acts.last().expect("non-empty"));
            if i != last {
                for v in &mut h {
                    *v = self.activation.apply(*v);
                }
            }
            acts.push(h);
        }
        acts
    }

    /// Backward pass: given the trace from [`Mlp::forward_trace`] and the
    /// gradient of the loss with respect to the (linear) output, accumulates
    /// parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if the trace does not match this network.
    pub fn backward(&self, trace: &[Vec<f32>], dout: &[f32], grads: &mut [DenseGrad]) {
        assert_eq!(trace.len(), self.layers.len() + 1, "trace length");
        assert_eq!(grads.len(), self.layers.len(), "grads length");
        let mut dy = dout.to_vec();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            // For hidden layers, `trace[i+1]` holds post-activation values;
            // fold the activation derivative into dy first.
            if i != self.layers.len() - 1 {
                for (g, &y) in dy.iter_mut().zip(trace[i + 1].iter()) {
                    *g *= self.activation.derivative_from_output(y);
                }
            }
            dy = layer.backward(&trace[i], &dy, &mut grads[i]);
        }
    }

    /// Fresh zeroed gradient buffers.
    pub fn zero_grads(&self) -> Vec<DenseGrad> {
        self.layers.iter().map(Dense::zero_grad).collect()
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// FLOPs of one forward pass.
    pub fn flops(&self) -> f64 {
        self.layers.iter().map(Dense::flops).sum()
    }

    /// Parameter payload in bytes.
    pub fn bytes(&self) -> usize {
        self.layers.iter().map(Dense::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_flow_through() {
        let mut rng = Pcg::seed(1);
        let mlp = Mlp::new(&[12, 512, 1], Activation::Relu, &mut rng);
        assert_eq!(mlp.in_dim(), 12);
        assert_eq!(mlp.out_dim(), 1);
        assert_eq!(mlp.layer_count(), 2);
        assert_eq!(mlp.forward(&[0.1; 12]).len(), 1);
        assert_eq!(mlp.param_count(), 12 * 512 + 512 + 512 + 1);
    }

    #[test]
    fn trace_matches_forward() {
        let mut rng = Pcg::seed(2);
        let mlp = Mlp::new(&[4, 8, 8, 2], Activation::Relu, &mut rng);
        let x = [0.3, -0.5, 0.2, 0.9];
        let trace = mlp.forward_trace(&x);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.last().unwrap(), &mlp.forward(&x));
    }

    #[test]
    fn backward_matches_numeric_gradient() {
        let mut rng = Pcg::seed(3);
        let mlp = Mlp::new(&[3, 5, 1], Activation::Tanh, &mut rng);
        let x = [0.2, -0.7, 0.5];
        let loss = |m: &Mlp| m.forward(&x)[0];

        let trace = mlp.forward_trace(&x);
        let mut grads = mlp.zero_grads();
        mlp.backward(&trace, &[1.0], &mut grads);

        // Numerically check a few first-layer weights.
        let eps = 1e-3;
        for (r, c) in [(0usize, 0usize), (2, 1), (4, 2)] {
            let mut mp = mlp.clone();
            let mut w = mp.layers[0].weights().clone();
            w.set(r, c, w.get(r, c) + eps);
            mp.layers[0] = rebuilt(&mp.layers[0], &w);
            let mut mm = mlp.clone();
            let mut w2 = mm.layers[0].weights().clone();
            w2.set(r, c, w2.get(r, c) - eps);
            mm.layers[0] = rebuilt(&mm.layers[0], &w2);
            let numeric = (loss(&mp) - loss(&mm)) / (2.0 * eps);
            let analytic = grads[0].dw.get(r, c);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "w[{r}][{c}]: numeric {numeric} analytic {analytic}"
            );
        }
    }

    fn rebuilt(d: &Dense, w: &specee_tensor::Matrix) -> Dense {
        // Dense has private fields; reconstruct through serde round-trip.
        let mut clone = d.clone();
        let json = serde_json_like(&clone, w);
        clone = json;
        clone
    }

    // Helper: rebuild a Dense with new weights via its public API surface.
    fn serde_json_like(d: &Dense, w: &specee_tensor::Matrix) -> Dense {
        // apply_step with the delta moves weights to the target.
        let mut delta = d.weights().clone();
        delta.add_scaled(w, -1.0); // delta = old - new, step subtracts
        let mut out = d.clone();
        out.apply_step(&delta, &vec![0.0; d.out_dim()]);
        out
    }

    #[test]
    fn relu_kills_negative_hidden_gradients() {
        let mut rng = Pcg::seed(4);
        let mlp = Mlp::new(&[2, 4, 1], Activation::Relu, &mut rng);
        let trace = mlp.forward_trace(&[-10.0, -10.0]);
        let mut grads = mlp.zero_grads();
        mlp.backward(&trace, &[1.0], &mut grads);
        // hidden outputs that are exactly zero must contribute zero gradient
        for (i, &h) in trace[1].iter().enumerate() {
            if h == 0.0 {
                for c in 0..2 {
                    assert_eq!(grads[0].dw.get(i, c), 0.0);
                }
            }
        }
    }
}
