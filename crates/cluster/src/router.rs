//! Routing policies: which worker a request is dispatched to.
//!
//! The coordinator synchronizes every worker to each request's arrival
//! time before routing it (see [`crate::Cluster`]), so the
//! [`WorkerSnapshot`]s a [`Router`] sees are deterministic functions of
//! the workload and earlier routing decisions — never of OS thread
//! scheduling. Policies are therefore reproducible bit-for-bit and safe
//! to assert against in benches.

use specee_core::TrafficClass;

use crate::request::ClusterRequest;

/// A worker's state at a synchronization point, as the router sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSnapshot {
    /// Worker index.
    pub worker: usize,
    /// The worker's simulated clock, seconds.
    pub sim_now: f64,
    /// Decoder depth the worker's engine drives (all workers agree).
    pub n_layers: usize,
    /// Sequences currently seated in engine slots.
    pub occupancy: usize,
    /// Requests routed to the worker but not yet seated.
    pub queued: usize,
    /// Remaining decode tokens across seated and queued requests.
    pub backlog_tokens: usize,
    /// Depth-weighted remaining work across seated and queued requests,
    /// in token×layer units (each request's remaining tokens times its
    /// predicted exit depth, defaulting to full depth without a hint).
    pub backlog_work: f64,
    /// Mean predicted exit depth over seated + queued requests, layers.
    /// `None` when the worker has no outstanding work.
    pub active_depth: Option<f64>,
    /// Deepest predicted exit depth over seated + queued requests,
    /// layers — the worker's Cannikin position: every step it runs pays
    /// for layers down to (about) this depth. `None` when idle.
    pub max_depth: Option<f64>,
    /// Mean observed exit depth over every token the worker has finished,
    /// layers. `None` before its first completion.
    pub observed_depth: Option<f64>,
    /// Mean exit threshold of the worker's controller at this sync point
    /// (`None` when no controller is attached). Routers may treat a
    /// tightening threshold as a congestion/accuracy signal; reports use
    /// it to watch per-worker adaptation.
    pub mean_threshold: Option<f64>,
    /// Base threshold the worker's controller classes start from
    /// (`None` without a controller) — the reference point against which
    /// a per-class threshold reads as "tightened".
    pub base_threshold: Option<f64>,
    /// Per-traffic-class mean thresholds of the worker's controller,
    /// ascending class order (empty without a controller or before any
    /// class has state). A class the controller has tightened toward 1.0
    /// effectively decodes at full depth on this worker — the
    /// [`ExitAware`] router prices that in.
    pub class_thresholds: Vec<(TrafficClass, f64)>,
    /// Physical KV pages the worker's slot pool has resident.
    pub pages_in_use: usize,
    /// The worker pool's physical-page ceiling (`None` = uncapped).
    pub page_capacity: Option<usize>,
    /// Sequences evicted under page pressure and awaiting re-seating.
    pub parked: usize,
    /// Requests the worker has completed.
    pub completed: usize,
    /// Whether the worker has failed (a request panicked on it); failed
    /// workers must not be routed to.
    pub failed: bool,
}

impl WorkerSnapshot {
    /// The worker controller's mean threshold for `class`, if that class
    /// has state on this worker.
    pub fn class_threshold(&self, class: TrafficClass) -> Option<f64> {
        self.class_thresholds
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, t)| *t)
    }
}

/// Picks a worker for each submitted request.
///
/// `route` is called with one snapshot per worker, at least one of which
/// is not failed; implementations must return the index of a non-failed
/// worker. Policies may keep internal state (e.g. a round-robin cursor) —
/// the coordinator owns exactly one router per cluster.
pub trait Router: Send {
    /// Short policy name for reports and CLI selection.
    fn name(&self) -> &'static str;

    /// Chooses the worker index for `req`.
    fn route(&mut self, req: &ClusterRequest, workers: &[WorkerSnapshot]) -> usize;

    /// The per-worker placement scores behind a [`route`](Self::route)
    /// call over the same snapshots (lower is better), for observability:
    /// the coordinator records them on routing-decision trace events so a
    /// decision can be audited after the run. Failed workers are skipped.
    /// Score-free policies (round-robin) return an empty vector; reading
    /// scores must not mutate routing state.
    fn scores(&self, _req: &ClusterRequest, _workers: &[WorkerSnapshot]) -> Vec<(u32, f64)> {
        Vec::new()
    }
}

/// The built-in routing policies, selectable by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Cycle through workers in index order, skipping failed ones.
    RoundRobin,
    /// Join the shortest queue: least depth-weighted outstanding work.
    ShortestQueue,
    /// Exit-aware: shortest queue *plus* a penalty for mixing a request
    /// into a worker whose residents exit at a different depth, so
    /// shallow-exiting traffic packs together and a deep request does not
    /// straggle a whole shallow batch (the Cannikin effect the cluster
    /// exists to counter).
    ExitAware,
}

impl RouterPolicy {
    /// All built-in policies, in CLI listing order.
    pub fn all() -> [RouterPolicy; 3] {
        [
            RouterPolicy::RoundRobin,
            RouterPolicy::ShortestQueue,
            RouterPolicy::ExitAware,
        ]
    }

    /// The policy's canonical CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::ShortestQueue => "shortest-queue",
            RouterPolicy::ExitAware => "exit-aware",
        }
    }

    /// Parses a CLI name (`round-robin`, `shortest-queue`/`jsq`,
    /// `exit-aware`).
    pub fn parse(name: &str) -> Option<RouterPolicy> {
        match name {
            "round-robin" | "rr" => Some(RouterPolicy::RoundRobin),
            "shortest-queue" | "jsq" => Some(RouterPolicy::ShortestQueue),
            "exit-aware" | "ea" => Some(RouterPolicy::ExitAware),
            _ => None,
        }
    }

    /// Builds the router implementing this policy.
    pub fn build(&self) -> Box<dyn Router> {
        match self {
            RouterPolicy::RoundRobin => Box::new(RoundRobin::new()),
            RouterPolicy::ShortestQueue => Box::new(ShortestQueue),
            RouterPolicy::ExitAware => Box::new(ExitAware::default()),
        }
    }
}

/// Indices of routable workers.
fn eligible(workers: &[WorkerSnapshot]) -> impl Iterator<Item = &WorkerSnapshot> {
    workers.iter().filter(|w| !w.failed)
}

/// Round-robin dispatch: worker `i`, then `i+1`, wrapping, skipping
/// failed workers.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a cursor starting at worker 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Router for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _req: &ClusterRequest, workers: &[WorkerSnapshot]) -> usize {
        for step in 0..workers.len() {
            let w = (self.next + step) % workers.len();
            if !workers[w].failed {
                self.next = (w + 1) % workers.len();
                return w;
            }
        }
        unreachable!("route called with at least one eligible worker");
    }
}

/// Join-shortest-queue dispatch: the worker with the least depth-weighted
/// outstanding work, ties toward the lower index.
#[derive(Debug, Default)]
pub struct ShortestQueue;

impl Router for ShortestQueue {
    fn name(&self) -> &'static str {
        "shortest-queue"
    }

    fn route(&mut self, _req: &ClusterRequest, workers: &[WorkerSnapshot]) -> usize {
        eligible(workers)
            .min_by(|a, b| {
                (a.backlog_work, a.worker)
                    .partial_cmp(&(b.backlog_work, b.worker))
                    .expect("finite backlog")
            })
            .map(|w| w.worker)
            .expect("route called with at least one eligible worker")
    }

    fn scores(&self, _req: &ClusterRequest, workers: &[WorkerSnapshot]) -> Vec<(u32, f64)> {
        eligible(workers)
            .map(|w| (w.worker as u32, w.backlog_work))
            .collect()
    }
}

/// Exit-aware dispatch: greedy minimization of total *Cannikin-priced*
/// work.
///
/// A lock-step batch streams layer weights down to its rearmost
/// still-needed layer, so a worker's outstanding work is effectively
/// `max_depth × backlog_tokens` — every queued token pays the deepest
/// resident's depth, not its own. The score of placing a request on a
/// worker is the *increase* in that quantity:
///
/// ```text
/// marginal = max(max_depth_w, depth_req) × (backlog_tokens_w + gen_req)
///          − max_depth_w × backlog_tokens_w           (0-depth when idle)
/// score    = marginal + load_weight × backlog_work
/// ```
///
/// The marginal term prices both straggler directions at once: a deep
/// request joining a shallow worker raises every resident token to its
/// depth (the Cannikin straggler), while a shallow request joining a
/// deep worker pays the residents' depth for its whole generation
/// instead of its own. Like-depth placements cost only `depth × gen` —
/// the work the request costs anywhere — so packing by depth is the
/// greedy optimum, and the small `load_weight` times the depth-weighted
/// queue breaks ties toward idle workers and keeps sustained one-class
/// traffic from piling onto a single worker.
///
/// The score is **controller-aware**: `depth_req` is the request's exit
/// hint *as this worker would actually decode it*. A worker whose
/// controller has tightened the request's traffic class above the base
/// threshold exits less, so the hint is interpolated toward full depth
/// by the tightening fraction `(thr − base) / (1 − base)` — a fully
/// tightened class (threshold at 1.0, exits off) is costed at
/// `n_layers` on that worker no matter how shallow the hint. Workers
/// whose controllers have loosened, or that carry no state for the
/// class, price the hint as-is.
#[derive(Debug)]
pub struct ExitAware {
    /// Weight of the depth-weighted queue term relative to the marginal
    /// Cannikin cost. Small by design: load only arbitrates between
    /// placements of comparable marginal cost.
    pub load_weight: f64,
}

impl Default for ExitAware {
    fn default() -> Self {
        ExitAware { load_weight: 0.1 }
    }
}

impl Router for ExitAware {
    fn name(&self) -> &'static str {
        "exit-aware"
    }

    fn route(&mut self, req: &ClusterRequest, workers: &[WorkerSnapshot]) -> usize {
        eligible(workers)
            .min_by(|a, b| {
                (self.score(req, a), a.worker)
                    .partial_cmp(&(self.score(req, b), b.worker))
                    .expect("finite score")
            })
            .map(|w| w.worker)
            .expect("route called with at least one eligible worker")
    }

    fn scores(&self, req: &ClusterRequest, workers: &[WorkerSnapshot]) -> Vec<(u32, f64)> {
        eligible(workers)
            .map(|w| (w.worker as u32, self.score(req, w)))
            .collect()
    }
}

impl ExitAware {
    /// The depth the request would *actually* decode at on this worker:
    /// the exit hint, pushed toward full depth by however much the
    /// worker's controller has tightened the request's class.
    fn effective_depth(&self, req: &ClusterRequest, w: &WorkerSnapshot) -> f64 {
        let depth = req.exit_hint.unwrap_or(w.n_layers as f64);
        let class = req.traffic_class(w.n_layers);
        let (Some(thr), Some(base)) = (w.class_threshold(class), w.base_threshold) else {
            return depth;
        };
        if thr <= base || base >= 1.0 {
            return depth;
        }
        let tightened = ((thr - base) / (1.0 - base)).clamp(0.0, 1.0);
        depth + tightened * (w.n_layers as f64 - depth)
    }

    fn score(&self, req: &ClusterRequest, w: &WorkerSnapshot) -> f64 {
        let depth = self.effective_depth(req, w);
        let gen = req.request.gen_len as f64;
        let tokens = w.backlog_tokens as f64;
        let current = w.max_depth.unwrap_or(0.0);
        let marginal = current.max(depth) * (tokens + gen) - current * tokens;
        marginal + self.load_weight * w.backlog_work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specee_serve::ServeRequest;

    fn snap(worker: usize, backlog_work: f64, depth: Option<f64>) -> WorkerSnapshot {
        WorkerSnapshot {
            worker,
            sim_now: 0.0,
            n_layers: 32,
            occupancy: 0,
            queued: 0,
            backlog_tokens: depth.map_or(0, |d| (backlog_work / d) as usize),
            backlog_work,
            active_depth: depth,
            max_depth: depth,
            observed_depth: None,
            mean_threshold: None,
            base_threshold: None,
            class_thresholds: Vec::new(),
            pages_in_use: 0,
            page_capacity: None,
            parked: 0,
            completed: 0,
            failed: false,
        }
    }

    fn req(id: u64, gen_len: usize, hint: Option<f64>) -> ClusterRequest {
        ClusterRequest {
            request: ServeRequest {
                id,
                prompt: vec![1, 2, 3],
                gen_len,
                arrival_s: 0.0,
            },
            class: None,
            exit_hint: hint,
            deadline_s: None,
            lane: specee_core::Lane::DEFAULT,
        }
    }

    #[test]
    fn scores_back_the_routing_decision() {
        let mut ea = ExitAware::default();
        let workers = vec![snap(0, 64.0, Some(8.0)), snap(1, 0.0, None)];
        let r = req(0, 4, Some(8.0));
        let scores = ea.scores(&r, &workers);
        assert_eq!(scores.len(), 2);
        let best = scores
            .iter()
            .min_by(|a, b| (a.1, a.0).partial_cmp(&(b.1, b.0)).expect("finite"))
            .expect("non-empty")
            .0;
        assert_eq!(ea.route(&r, &workers) as u32, best);
        assert!(RoundRobin::new().scores(&r, &workers).is_empty());
        let mut with_failure = workers.clone();
        with_failure[0].failed = true;
        assert_eq!(ShortestQueue.scores(&r, &with_failure), vec![(1, 0.0)]);
    }

    #[test]
    fn round_robin_cycles_and_skips_failed() {
        let mut rr = RoundRobin::new();
        let mut workers = vec![snap(0, 0.0, None), snap(1, 0.0, None), snap(2, 0.0, None)];
        let r = req(0, 4, None);
        assert_eq!(rr.route(&r, &workers), 0);
        assert_eq!(rr.route(&r, &workers), 1);
        workers[2].failed = true;
        assert_eq!(rr.route(&r, &workers), 0, "failed worker 2 skipped");
        assert_eq!(rr.route(&r, &workers), 1);
    }

    #[test]
    fn shortest_queue_prefers_least_work_then_lowest_index() {
        let mut jsq = ShortestQueue;
        let workers = vec![
            snap(0, 64.0, None),
            snap(1, 16.0, None),
            snap(2, 16.0, None),
        ];
        assert_eq!(jsq.route(&req(0, 4, None), &workers), 1);
    }

    #[test]
    fn exit_aware_packs_by_depth_and_balances_load() {
        let mut ea = ExitAware::default();
        // Two settled workers: one shallow (depth 4), one deep (depth 30),
        // equal depth-weighted load (the shallow worker holds more tokens).
        let workers = vec![snap(0, 240.0, Some(4.0)), snap(1, 240.0, Some(30.0))];
        // A shallow request on the deep worker would pay 26 extra layers
        // for its whole generation → packs with the shallow worker.
        assert_eq!(ea.route(&req(0, 8, Some(4.0)), &workers), 0);
        // A deep request on the shallow worker would drag 60 resident
        // tokens 26 layers deeper → packs with the deep worker.
        assert_eq!(ea.route(&req(1, 8, Some(30.0)), &workers), 1);
        // A hint-less request counts as full depth → joins the deep worker.
        assert_eq!(ea.route(&req(2, 8, None), &workers), 1);
        // Load eventually outweighs affinity.
        let lopsided = vec![snap(0, 10_000.0, Some(4.0)), snap(1, 0.0, Some(30.0))];
        assert_eq!(ea.route(&req(3, 8, Some(4.0)), &lopsided), 1);
        // An idle worker has no residents to straggle: zero penalty.
        let fresh = vec![snap(0, 64.0, Some(4.0)), snap(1, 0.0, None)];
        assert_eq!(ea.route(&req(4, 8, Some(4.0)), &fresh), 1);
    }

    #[test]
    fn exit_aware_costs_controller_tightened_workers_as_deep() {
        let mut ea = ExitAware::default();
        // Two otherwise identical shallow workers (depth 4, equal load),
        // but worker 0's controller has tightened the request's class
        // (threshold 0.95 over a 0.5 base): the request would decode at
        // nearly full depth there, so exit-aware must pick worker 1 even
        // though plain depth affinity ties.
        let shallow = req(0, 8, Some(4.0));
        let class = shallow.traffic_class(32);
        let mut tightened = snap(0, 240.0, Some(4.0));
        tightened.base_threshold = Some(0.5);
        tightened.class_thresholds = vec![(class, 0.95)];
        let mut open = snap(1, 240.0, Some(4.0));
        open.base_threshold = Some(0.5);
        open.class_thresholds = vec![(class, 0.5)];
        let workers = vec![tightened.clone(), open.clone()];
        assert_eq!(ea.route(&shallow, &workers), 1);

        // Effective depth interpolates: fully tightened (1.0) is costed
        // at full depth, the base threshold leaves the hint alone, and a
        // class without state on the worker is also left alone.
        let mut off = tightened.clone();
        off.class_thresholds = vec![(class, 1.0)];
        assert_eq!(ea.effective_depth(&shallow, &off), 32.0);
        assert_eq!(ea.effective_depth(&shallow, &open), 4.0);
        let mut stateless = tightened.clone();
        stateless.class_thresholds = vec![(TrafficClass::new(99), 0.95)];
        assert_eq!(ea.effective_depth(&shallow, &stateless), 4.0);
        // A loosened controller never shrinks the hint below itself.
        let mut loosened = tightened.clone();
        loosened.class_thresholds = vec![(class, 0.2)];
        assert_eq!(ea.effective_depth(&shallow, &loosened), 4.0);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in RouterPolicy::all() {
            assert_eq!(RouterPolicy::parse(p.name()), Some(p));
            assert_eq!(p.build().name(), p.name());
        }
        assert_eq!(
            RouterPolicy::parse("jsq"),
            Some(RouterPolicy::ShortestQueue)
        );
        assert_eq!(RouterPolicy::parse("nope"), None);
    }
}
