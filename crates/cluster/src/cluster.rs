//! The cluster coordinator: spawn, route, cancel, drain.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use specee_batch::BatchedEngine;
use specee_control::{ClassEvidence, ControllerPolicy};
use specee_core::predictor::PredictorBank;
use specee_core::{ScheduleEngine, SpecEeConfig};
use specee_draft::SpeculativeSource;
use specee_model::LayeredLm;
use specee_obs::{EventKind, Recorder, SloSpec, SloTracker, COORDINATOR_LANE};
use specee_serve::batcher::ServeReport;
use specee_serve::cost::StepCostModel;
use specee_serve::{AdmissionPolicy, BatcherConfig};

use crate::report::ClusterReport;
use crate::request::ClusterRequest;
use crate::router::{Router, WorkerSnapshot};
use crate::worker::{SeqFactory, Worker, WorkerMsg, WorkerReply, WorkerReport};

/// Cluster-wide configuration: how many workers, and the per-worker
/// engine/pricing setup (every worker is a full live-serving instance
/// with the [`BatcherConfig`] capacity, hardware and cost dims).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of data-parallel workers (one OS thread + engine each).
    pub workers: usize,
    /// KV page size for each worker's slot pool.
    pub page_size: usize,
    /// Physical-page ceiling for each worker's slot pool (`None` =
    /// uncapped, today's behavior). With a cap, a worker that cannot
    /// fund the next decode step parks its lowest-priority resident
    /// (when [`preemption`](ClusterConfig::preemption) is on) instead of
    /// aborting, and resumes it bit-identically once pages free up.
    pub page_capacity: Option<usize>,
    /// Copy-on-write prompt-prefix sharing across each worker's
    /// residents: admissions whose prompt prefix matches a resident's
    /// lease pages read-only and copy only on the first divergent write.
    /// Decoded tokens are unchanged — only physical page residency drops.
    pub prefix_share: bool,
    /// Page-pressure preemption. When on, an exhausted pool evicts the
    /// lowest-priority resident (highest [`specee_core::Lane`], then
    /// highest id) — its pages recycle, its generation state parks, and
    /// it resumes bit-identically when pages free; a higher-priority
    /// arrival may also evict a strictly lower-priority resident at
    /// admission. When off (default), page exhaustion panics the worker
    /// as before.
    pub preemption: bool,
    /// Per-worker admission policy (applied to each worker's own queue).
    pub admission: AdmissionPolicy,
    /// Per-worker capacity and pricing (`max_batch` is *per worker*).
    pub batcher: BatcherConfig,
    /// Exit-threshold control policy. Every worker builds its *own*
    /// traffic-class-keyed controller from this
    /// ([`ControllerPolicy::build_classed_for_worker`], with
    /// `(worker, class)`-decorrelated bandit seeds) and adapts it from
    /// its local engine's per-class verifier feedback inside the
    /// deterministic serving loop — controller state therefore rides the
    /// arrival-frontier protocol and runs stay reproducible.
    /// [`ControllerPolicy::Static`] is today's fixed-threshold behavior.
    pub controller: ControllerPolicy,
    /// Structured tracing. When `true`, every worker's engine carries a
    /// [`specee_obs::Recorder`] on its own lane (exit decisions, priced
    /// steps, admissions, completions, controller applies, gossip
    /// absorbs, all stamped with the worker's simulated clock) and the
    /// coordinator records routing decisions — with the router's
    /// per-worker scores — on [`specee_obs::COORDINATOR_LANE`]. The
    /// merged, time-ordered stream lands in the drained
    /// [`ClusterReport::events`]; recording never feeds back into the
    /// simulation, so a traced run is bit-identical to an untraced one.
    pub trace: bool,
    /// Trace sampling period: every recorder lane (workers and
    /// coordinator) keeps a deterministic 1-in-N of each event *kind*
    /// and counts the rest as dropped ([`WorkerReport::dropped_events`],
    /// folded into [`ClusterReport::metrics`] as
    /// `specee_trace_dropped_events_total`). `1` keeps everything;
    /// ignored unless [`trace`](ClusterConfig::trace) is on. Sampling
    /// only thins the recorded stream — it never feeds back into the
    /// simulation.
    pub trace_sample: u32,
    /// Online SLO objectives, evaluated per worker. When set, every
    /// worker drives a [`SloTracker`] on its own simulated clock —
    /// admission TTFTs and verifier accept/reject outcomes feed its
    /// rolling windows, burn-rate alerts are evaluated at every clock
    /// advance, fired/cleared transitions land in the worker's trace
    /// lane (when tracing is on), and the tracker's pressure signal is
    /// pushed into the worker's controller via
    /// `BatchedEngine::set_slo_pressure` (actuation requires an
    /// `slo+*` [`ControllerPolicy`]). The tracker runs independently of
    /// tracing, so traced and untraced runs stay bit-identical even
    /// while an objective burns.
    pub slo: Option<SloSpec>,
    /// Cross-worker controller gossip. When `true`, every arrival
    /// frontier the coordinator collects each worker's matured per-class
    /// evidence deltas with its snapshot and broadcasts to each worker
    /// the *other* workers' deltas, per reporter in worker-index order
    /// (deltas are deliberately not averaged across reporters — see
    /// the broadcast path's docs) — so drift observed by worker 0 warms
    /// worker 3's controller before its first request of that class,
    /// instead of being re-learned from scratch. Gossip rides the
    /// arrival-frontier protocol (collection and broadcast happen only
    /// at sync points), so adaptive runs stay bit-identical across
    /// executions; the static policy ignores evidence entirely.
    pub gossip: bool,
}

struct WorkerHandle {
    tx: Sender<WorkerMsg>,
    rx: Receiver<WorkerReply>,
    join: JoinHandle<()>,
    /// Ids routed to this worker (for failure accounting if the thread
    /// dies without reporting).
    assigned: Vec<u64>,
    dead: bool,
}

/// A running multi-worker serving cluster.
///
/// `submit` requests in nondecreasing arrival order, optionally `cancel`
/// some, then `drain` for the merged [`ClusterReport`]. Workers decode
/// concurrently on their own OS threads; determinism comes from the
/// **arrival-frontier protocol**: before a request is routed, every
/// worker is synchronized to the request's arrival time and snapshotted,
/// so the router's view — and hence every routing decision, admission
/// boundary and priced step — is a pure function of the workload, never
/// of thread scheduling. See the crate docs for the full protocol.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
///
/// use specee_cluster::{Cluster, ClusterConfig, ClusterRequest, RouterPolicy};
/// use specee_control::ControllerPolicy;
/// use specee_core::predictor::{PredictorBank, PredictorConfig};
/// use specee_core::{ScheduleEngine, SpecEeConfig};
/// use specee_metrics::{FrameworkProfile, HardwareProfile};
/// use specee_model::{CostDims, ModelConfig};
/// use specee_serve::{AdmissionPolicy, BatcherConfig, ServeRequest};
/// use specee_synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
/// use specee_tensor::rng::Pcg;
///
/// let n_layers = 8;
/// let cfg = ModelConfig { n_layers, vocab_size: 256, ..ModelConfig::tiny() };
/// let pcfg = PredictorConfig { hidden_dim: 16, ..PredictorConfig::default() };
/// let bank = PredictorBank::new(n_layers, &pcfg, &mut Pcg::seed(1));
/// let spec = SpecEeConfig { predictor: pcfg, ..SpecEeConfig::default() };
/// let config = ClusterConfig {
///     workers: 2,
///     page_size: 16,
///     page_capacity: None,                 // or Some(n) to cap each worker's pool
///     prefix_share: false,                 // flip on for COW prompt-prefix sharing
///     preemption: false,                   // flip on to park/resume under pressure
///     admission: AdmissionPolicy::Fcfs,
///     batcher: BatcherConfig {
///         max_batch: 2,
///         hardware: HardwareProfile::a100_80g(),
///         framework: FrameworkProfile::vllm(),
///         cost: CostDims { n_layers, ..CostDims::llama2_7b() },
///     },
///     controller: ControllerPolicy::pid(), // per-worker adaptive thresholds
///     gossip: true,                        // share per-class drift across workers
///     trace: false,                        // flip on for a typed event timeline
///     trace_sample: 1,                     // keep every event when tracing
///     slo: None,                           // or SloSpec::parse("p99_ttft=0.25")
/// };
/// let model_cfg = cfg.clone();
/// let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
///     &config,
///     RouterPolicy::ExitAware.build(),
///     &bank,
///     &ScheduleEngine::all_layers(n_layers),
///     &spec,
///     Arc::new(move |req| {
///         let lm = SyntheticLmBuilder::new(model_cfg.clone(), DatasetProfile::qa())
///             .seed(5)
///             .build();
///         let draft = OracleDraft::new(*lm.language(), 0.9, &model_cfg, req.request.id);
///         (lm, draft)
///     }),
/// );
/// for id in 0..4u64 {
///     let request = ServeRequest {
///         id,
///         prompt: vec![1, 2 + id as u32],
///         gen_len: 4,
///         arrival_s: id as f64 * 0.01,
///     };
///     cluster.submit(ClusterRequest::new(request).with_exit_hint(5.0));
/// }
/// let report = cluster.drain();
/// assert_eq!(report.completed(), 4);
/// assert!(report.workers.iter().all(|w| w.controller.is_some()));
/// ```
pub struct Cluster<M: LayeredLm, D: SpeculativeSource> {
    workers: Vec<WorkerHandle>,
    router: Box<dyn Router>,
    snapshots: Vec<WorkerSnapshot>,
    gossip: bool,
    /// Coordinator-lane recorder for routing decisions (`None` unless the
    /// cluster was spawned with tracing on).
    trace: Option<Recorder>,
    last_arrival: f64,
    unroutable: Vec<u64>,
    _seq: std::marker::PhantomData<(M, D)>,
}

impl<M, D> Cluster<M, D>
where
    M: LayeredLm + Send + 'static,
    D: SpeculativeSource + Send + 'static,
{
    /// Spawns the worker threads.
    ///
    /// Every worker gets its own [`BatchedEngine`] built from clones of
    /// `bank`/`schedule`/`spec_config`, and prices its steps with a
    /// [`StepCostModel`] built from the shared [`BatcherConfig`].
    /// `make_seq` constructs each admitted request's per-sequence model
    /// and draft, on the worker's thread.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero (engine/capacity validation is the
    /// per-worker [`BatchedEngine::new`]'s).
    pub fn spawn(
        config: &ClusterConfig,
        router: Box<dyn Router>,
        bank: &PredictorBank,
        schedule: &ScheduleEngine,
        spec_config: &SpecEeConfig,
        make_seq: SeqFactory<M, D>,
    ) -> Self {
        assert!(config.workers > 0, "cluster needs at least one worker");
        let n_layers = config.batcher.cost.n_layers;
        let mut workers = Vec::with_capacity(config.workers);
        let mut snapshots = Vec::with_capacity(config.workers);
        for id in 0..config.workers {
            let mut engine: BatchedEngine<M, D> = BatchedEngine::new(
                config.batcher.max_batch,
                config.page_size,
                n_layers,
                bank.clone(),
                schedule.clone(),
                spec_config.clone(),
            );
            engine.set_page_capacity(config.page_capacity);
            engine.enable_prefix_share(config.prefix_share);
            engine.set_preemption_enabled(config.preemption);
            engine.set_controller(config.controller.build_classed_for_worker(
                bank.len(),
                spec_config.predictor.threshold,
                id,
            ));
            if config.trace {
                engine.set_recorder(Some(sampled(
                    Recorder::for_worker(id as u32),
                    config.trace_sample,
                )));
            }
            let cost = StepCostModel::new(
                config.batcher.cost,
                config.batcher.hardware.clone(),
                config.batcher.framework.clone(),
            );
            let slo = config.slo.clone().map(SloTracker::new);
            let worker = Worker::new(id, engine, cost, config.admission, slo, make_seq.clone());
            snapshots.push(worker.snapshot());
            let (tx, worker_rx) = channel();
            let (worker_tx, rx) = channel();
            let join = std::thread::Builder::new()
                .name(format!("specee-cluster-worker-{id}"))
                .spawn(move || worker.run(worker_rx, worker_tx))
                .expect("spawn worker thread");
            workers.push(WorkerHandle {
                tx,
                rx,
                join,
                assigned: Vec::new(),
                dead: false,
            });
        }
        Cluster {
            workers,
            router,
            snapshots,
            gossip: config.gossip,
            trace: config
                .trace
                .then(|| sampled(Recorder::for_worker(COORDINATOR_LANE), config.trace_sample)),
            last_arrival: f64::NEG_INFINITY,
            unroutable: Vec::new(),
            _seq: std::marker::PhantomData,
        }
    }

    /// Number of workers (failed ones included).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The last synchronized snapshots, one per worker.
    pub fn snapshots(&self) -> &[WorkerSnapshot] {
        &self.snapshots
    }

    /// Routes one request into the cluster and returns the worker index
    /// it was dispatched to (`None` if every worker has failed; the id is
    /// then recorded as unroutable in the final report).
    ///
    /// # Panics
    ///
    /// Panics if arrivals are submitted out of order.
    pub fn submit(&mut self, req: ClusterRequest) -> Option<usize> {
        assert!(
            req.request.arrival_s >= self.last_arrival,
            "requests must be submitted in arrival order"
        );
        self.last_arrival = req.request.arrival_s;
        self.sync_to(req.request.arrival_s);
        if self.snapshots.iter().all(|s| s.failed) {
            self.unroutable.push(req.request.id);
            return None;
        }
        let mut w = self.router.route(&req, &self.snapshots);
        if self.snapshots[w].failed {
            // Defensive: a router returning a failed worker falls back to
            // the first live one instead of losing the request.
            w = self
                .snapshots
                .iter()
                .position(|s| !s.failed)
                .expect("checked above");
        }
        let id = req.request.id;
        if let Some(rec) = self.trace.as_mut() {
            rec.record_at(
                req.request.arrival_s,
                Some(id),
                EventKind::Routing {
                    request: id,
                    policy: self.router.name(),
                    chosen: w as u32,
                    scores: self.router.scores(&req, &self.snapshots),
                },
            );
        }
        if self.workers[w].tx.send(WorkerMsg::Submit(req)).is_err() {
            self.mark_dead(w);
            self.unroutable.push(id);
            return None;
        }
        self.workers[w].assigned.push(id);
        Some(w)
    }

    /// Best-effort cancellation of a previously submitted request:
    /// queued requests are dropped, a mid-decode sequence is retired with
    /// its partial output. Returns whether the id was known (already
    /// finished requests are unaffected either way).
    pub fn cancel(&mut self, id: u64) -> bool {
        for w in &mut self.workers {
            if w.assigned.contains(&id) {
                if !w.dead {
                    let _ = w.tx.send(WorkerMsg::Cancel(id));
                }
                return true;
            }
        }
        false
    }

    /// Synchronizes every live worker to the arrival frontier `t`,
    /// refreshes the routing snapshots, and — when gossip is enabled —
    /// broadcasts each worker the other workers' per-class evidence
    /// deltas. All workers advance their simulated clocks concurrently
    /// (this is where the data-parallel decoding actually happens); the
    /// broadcast walks reporters in worker-index order (each reporter's
    /// deltas already ascend by class), so the payload is a pure
    /// function of the workload.
    fn sync_to(&mut self, t: f64) {
        for w in 0..self.workers.len() {
            if self.workers[w].dead {
                continue;
            }
            if self.workers[w].tx.send(WorkerMsg::SyncTo(t)).is_err() {
                self.mark_dead(w);
            }
        }
        let mut evidence: Vec<Vec<ClassEvidence>> = vec![Vec::new(); self.workers.len()];
        for (w, slot) in evidence.iter_mut().enumerate() {
            if self.workers[w].dead {
                continue;
            }
            match self.workers[w].rx.recv() {
                Ok(WorkerReply::Synced(snapshot, deltas)) => {
                    self.snapshots[w] = *snapshot;
                    *slot = deltas;
                }
                _ => {
                    self.workers[w].dead = true;
                    self.snapshots[w].failed = true;
                }
            }
        }
        if self.gossip && self.workers.len() > 1 {
            self.broadcast_gossip(&evidence);
        }
    }

    /// Sends each live worker the evidence of every *other* worker (its
    /// own observations are excluded — it has already consumed them
    /// locally), as per-reporter deltas in worker-index order. Deltas
    /// are deliberately **not** averaged across reporters: a delta's
    /// reward was earned under its reporter's operating point, and a
    /// bandit credits the arm nearest that point — averaging two
    /// reporters' thresholds (say one parked on the 1.0 off-arm and one
    /// exploring 0.5) would attribute both workers' outcomes to an arm
    /// neither played. Per-class aggregation happens where it is sound:
    /// inside each reporter's window ([`ClassEvidence`] counters) and in
    /// the receiving controller's posterior. Skips workers with nothing
    /// to learn.
    fn broadcast_gossip(&mut self, evidence: &[Vec<ClassEvidence>]) {
        for w in 0..evidence.len() {
            if self.workers[w].dead {
                continue;
            }
            let payload: Vec<ClassEvidence> = evidence
                .iter()
                .enumerate()
                .filter(|(v, _)| *v != w)
                .flat_map(|(_, deltas)| deltas.iter().cloned())
                .collect();
            if payload.is_empty() {
                continue;
            }
            if self.workers[w].tx.send(WorkerMsg::Gossip(payload)).is_err() {
                self.mark_dead(w);
            }
        }
    }

    fn mark_dead(&mut self, w: usize) {
        self.workers[w].dead = true;
        self.snapshots[w].failed = true;
    }

    /// Graceful shutdown: every worker finishes its outstanding requests
    /// (no new admissions are possible once called), reports, and its
    /// thread is joined. Returns the merged per-worker and aggregate
    /// report.
    pub fn drain(self) -> ClusterReport {
        let router = self.router.name().to_string();
        let coordinator_events = self.trace.map(|r| r.into_events()).unwrap_or_default();
        let mut reports: Vec<WorkerReport> = Vec::with_capacity(self.workers.len());
        for (w, handle) in self.workers.into_iter().enumerate() {
            let report = if handle.dead || handle.tx.send(WorkerMsg::Drain).is_err() {
                None
            } else {
                loop {
                    match handle.rx.recv() {
                        Ok(WorkerReply::Done(report)) => break Some(*report),
                        Ok(WorkerReply::Synced(..)) => continue,
                        Err(_) => break None,
                    }
                }
            };
            let report = report.unwrap_or_else(|| dead_worker_report(w, &handle.assigned));
            let _ = handle.join.join();
            reports.push(report);
        }
        ClusterReport::new(router, reports, self.unroutable, coordinator_events)
    }
}

/// Applies the configured 1-in-N trace sampling to a recorder lane
/// (`n <= 1` keeps everything).
fn sampled(rec: Recorder, n: u32) -> Recorder {
    if n > 1 {
        rec.with_sample_every(n)
    } else {
        rec
    }
}

/// Synthesized report for a worker whose thread died without reporting
/// (catch-unwind containment normally prevents this).
fn dead_worker_report(worker: usize, assigned: &[u64]) -> WorkerReport {
    WorkerReport {
        worker,
        report: ServeReport {
            completions: Vec::new(),
            makespan_s: 0.0,
            steps: 0,
            avg_occupancy: 0.0,
            avg_layers: 0.0,
        },
        outputs: Vec::new(),
        assigned: assigned.len(),
        layer_sum: 0.0,
        decode_tokens: 0,
        occupancy_sum: 0.0,
        observed_depth: None,
        timed_out: Vec::new(),
        cancelled: Vec::new(),
        failed: assigned.to_vec(),
        panic: Some("worker thread died without reporting".to_string()),
        controller: None,
        classes: Vec::new(),
        events: Vec::new(),
        dropped_events: 0,
        meter: specee_metrics::Meter::new(),
        preemptions: 0,
        resumes: 0,
        kv: specee_model::KvStats::default(),
    }
}
