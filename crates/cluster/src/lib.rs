//! Multi-worker data-parallel serving with exit-aware routing.
//!
//! The live batched runtime (`specee-batch` + `specee-serve`'s live mode)
//! measures the **Cannikin effect**: one big batch pays for layers down
//! to the rearmost still-needed one, so SpecEE's per-batch speedup decays
//! toward 1.0× as the batch grows. This crate counters it at the
//! *deployment* layer: N workers — one OS thread and one
//! [`specee_batch::BatchedEngine`] each — serve many small batches in
//! parallel behind a shared admission queue, and a pluggable [`Router`]
//! decides which worker each request joins. Because the exit predictor's
//! depth estimate is also a *load* signal, the [`router::ExitAware`]
//! policy packs shallow-exiting traffic together so one deep request
//! cannot straggle a whole shallow batch.
//!
//! # The arrival-frontier protocol
//!
//! Workers are real threads (`std::sync::mpsc` channels, no external
//! dependencies) but every run is deterministic. Before routing a
//! request the coordinator synchronizes each worker to the request's
//! arrival time — the **frontier** — and collects a
//! [`router::WorkerSnapshot`]. A worker advances its simulated clock by
//! genuinely executing decode steps (priced with the shared
//! [`specee_serve::StepCostModel`]) until it reaches the frontier, and a
//! routed request only becomes admissible once the frontier passes its
//! arrival. Routing decisions, admission boundaries and priced steps are
//! therefore pure functions of the workload: OS scheduling affects
//! wall-clock speed, never results. A one-worker round-robin cluster is
//! completion-for-completion identical to
//! `ContinuousBatcher::run_live` (asserted in `tests/parity.rs`).
//!
//! Adaptation rides the same protocol: when [`ClusterConfig`] selects an
//! adaptive [`specee_control::ControllerPolicy`], every worker's engine
//! carries its own exit-threshold controller, fed from that worker's
//! verifier accept/reject stream strictly inside the deterministic
//! serving loop. Worker snapshots expose the controller's current mean
//! threshold and the final [`WorkerReport::controller`] summary records
//! where each worker's operating point converged.
//!
//! Requests carry optional absolute deadlines (expired ones are dropped
//! while queued and reported as timed out), can be cancelled mid-decode
//! ([`Cluster::cancel`] retires the sequence with its partial output),
//! and a panic on one worker — a poisoned request, a factory bug — is
//! contained: the worker fails, its outstanding requests are reported in
//! [`WorkerReport::failed`], and the rest of the cluster drains normally.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//!
//! use specee_cluster::{Cluster, ClusterConfig, ClusterRequest, RouterPolicy};
//! use specee_control::ControllerPolicy;
//! use specee_core::predictor::{PredictorBank, PredictorConfig};
//! use specee_core::{ScheduleEngine, SpecEeConfig};
//! use specee_metrics::{FrameworkProfile, HardwareProfile};
//! use specee_model::{CostDims, ModelConfig};
//! use specee_serve::{AdmissionPolicy, BatcherConfig, PoissonArrivals};
//! use specee_synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
//! use specee_tensor::rng::Pcg;
//!
//! let n_layers = 8;
//! let cfg = ModelConfig { n_layers, vocab_size: 256, ..ModelConfig::tiny() };
//! let pcfg = PredictorConfig { hidden_dim: 16, ..PredictorConfig::default() };
//! let bank = PredictorBank::new(n_layers, &pcfg, &mut Pcg::seed(1));
//! let spec = SpecEeConfig { predictor: pcfg, ..SpecEeConfig::default() };
//! let config = ClusterConfig {
//!     workers: 2,
//!     page_size: 16,
//!     page_capacity: None,
//!     prefix_share: false,
//!     preemption: false,
//!     admission: AdmissionPolicy::Fcfs,
//!     batcher: BatcherConfig {
//!         max_batch: 2,
//!         hardware: HardwareProfile::a100_80g(),
//!         framework: FrameworkProfile::vllm(),
//!         cost: CostDims { n_layers, ..CostDims::llama2_7b() },
//!     },
//!     controller: ControllerPolicy::Static,
//!     gossip: true,
//!     trace: false,
//!     trace_sample: 1,
//!     slo: None,
//! };
//! let model_cfg = cfg.clone();
//! let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
//!     &config,
//!     RouterPolicy::RoundRobin.build(),
//!     &bank,
//!     &ScheduleEngine::all_layers(n_layers),
//!     &spec,
//!     Arc::new(move |req| {
//!         let lm = SyntheticLmBuilder::new(model_cfg.clone(), DatasetProfile::qa())
//!             .seed(7)
//!             .build();
//!         let draft = OracleDraft::new(*lm.language(), 0.9, &model_cfg, req.request.id);
//!         (lm, draft)
//!     }),
//! );
//! for req in PoissonArrivals::new(10.0, 3).requests(&[(vec![1, 2], 4), (vec![3, 1], 4)]) {
//!     cluster.submit(ClusterRequest::new(req));
//! }
//! let report = cluster.drain();
//! assert_eq!(report.completed(), 2);
//! assert!(report.stats().throughput_tok_s > 0.0);
//! ```

#![deny(missing_docs)]

mod cluster;
pub mod report;
pub mod request;
pub mod router;
mod worker;

pub use cluster::{Cluster, ClusterConfig};
pub use report::ClusterReport;
pub use request::ClusterRequest;
pub use router::{Router, RouterPolicy, WorkerSnapshot};
pub use worker::{SeqFactory, WorkerReport};
