//! Cluster-level requests: a serving request plus routing metadata.

use specee_serve::ServeRequest;

/// One request entering the cluster's shared admission queue.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRequest {
    /// The underlying serving request (id, prompt, decode length,
    /// arrival time). Ids must be unique across a run; submissions must
    /// be ordered by arrival time.
    pub request: ServeRequest,
    /// Predicted mean exit depth in layers, when the caller has one —
    /// e.g. the expected exit of the trained predictor schedule on this
    /// request's traffic class. Consumed by the exit-aware router;
    /// `None` is treated as full depth.
    pub exit_hint: Option<f64>,
    /// Absolute simulated-time admission deadline, seconds. A request
    /// still queued when its worker's clock passes the deadline is
    /// cancelled instead of decoded and reported in
    /// [`crate::WorkerReport::timed_out`]. `None` waits forever.
    pub deadline_s: Option<f64>,
}

impl ClusterRequest {
    /// Wraps a serving request with no hint and no deadline.
    pub fn new(request: ServeRequest) -> Self {
        ClusterRequest {
            request,
            exit_hint: None,
            deadline_s: None,
        }
    }

    /// Sets the predicted exit depth, layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is not finite — a NaN hint (e.g. from a `0/0`
    /// calibration) would otherwise poison every router score comparison.
    pub fn with_exit_hint(mut self, layers: f64) -> Self {
        assert!(layers.is_finite(), "exit hint must be finite");
        self.exit_hint = Some(layers);
        self
    }

    /// Sets the absolute admission deadline, seconds.
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.deadline_s = Some(deadline_s);
        self
    }
}
