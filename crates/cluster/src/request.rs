//! Cluster-level requests: a serving request plus routing metadata.

use specee_core::{Lane, TrafficClass};
use specee_serve::ServeRequest;

/// One request entering the cluster's shared admission queue.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRequest {
    /// The underlying serving request (id, prompt, decode length,
    /// arrival time). Ids must be unique across a run; submissions must
    /// be ordered by arrival time.
    pub request: ServeRequest,
    /// Explicit traffic class, when the caller tags one (tenant, prompt
    /// domain, …). When absent, the class is derived from `exit_hint` at
    /// admission ([`ClusterRequest::traffic_class`]); hint-less,
    /// class-less requests land in [`TrafficClass::DEFAULT`].
    pub class: Option<TrafficClass>,
    /// Predicted mean exit depth in layers, when the caller has one —
    /// e.g. the expected exit of the trained predictor schedule on this
    /// request's traffic class. Consumed by the exit-aware router;
    /// `None` is treated as full depth.
    pub exit_hint: Option<f64>,
    /// Absolute simulated-time admission deadline, seconds. A request
    /// still queued when its worker's clock passes the deadline is
    /// cancelled instead of decoded and reported in
    /// [`crate::WorkerReport::timed_out`]. `None` waits forever.
    pub deadline_s: Option<f64>,
    /// Priority lane (lower id = higher priority; defaults to
    /// [`Lane::DEFAULT`]). Workers admit the best lane present first and,
    /// when preemption is enabled, a higher-priority arrival may evict a
    /// strictly lower-priority resident under page pressure.
    pub lane: Lane,
}

impl ClusterRequest {
    /// Wraps a serving request with no class, no hint and no deadline.
    pub fn new(request: ServeRequest) -> Self {
        ClusterRequest {
            request,
            class: None,
            exit_hint: None,
            deadline_s: None,
            lane: Lane::DEFAULT,
        }
    }

    /// Sets an explicit traffic class (overrides hint derivation).
    pub fn with_class(mut self, class: TrafficClass) -> Self {
        self.class = Some(class);
        self
    }

    /// The traffic class this request is admitted under on an
    /// `n_layers`-deep deployment: the explicit class when tagged,
    /// otherwise the exit hint's depth band
    /// ([`TrafficClass::from_exit_depth`]), otherwise the default class.
    /// Workers and routers call this with the same `n_layers`, so both
    /// ends of the feedback plane agree on the key.
    pub fn traffic_class(&self, n_layers: usize) -> TrafficClass {
        if let Some(class) = self.class {
            return class;
        }
        match self.exit_hint {
            Some(hint) => TrafficClass::from_exit_depth(hint, n_layers),
            None => TrafficClass::DEFAULT,
        }
    }

    /// Sets the predicted exit depth, layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is not finite — a NaN hint (e.g. from a `0/0`
    /// calibration) would otherwise poison every router score comparison.
    pub fn with_exit_hint(mut self, layers: f64) -> Self {
        assert!(layers.is_finite(), "exit hint must be finite");
        self.exit_hint = Some(layers);
        self
    }

    /// Sets the absolute admission deadline, seconds.
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Sets the priority lane (lower id = higher priority).
    pub fn with_lane(mut self, lane: Lane) -> Self {
        self.lane = lane;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> ClusterRequest {
        ClusterRequest::new(ServeRequest {
            id: 0,
            prompt: vec![1, 2],
            gen_len: 4,
            arrival_s: 0.0,
        })
    }

    #[test]
    fn class_resolution_prefers_explicit_then_hint_then_default() {
        assert!(req().traffic_class(32).is_default(), "no hint, no class");
        let hinted = req().with_exit_hint(3.0);
        assert_eq!(
            hinted.traffic_class(32),
            TrafficClass::from_exit_depth(3.0, 32)
        );
        let tagged = req().with_exit_hint(3.0).with_class(TrafficClass::new(9));
        assert_eq!(tagged.traffic_class(32), TrafficClass::new(9));
    }

    #[test]
    fn lane_defaults_and_builds() {
        assert!(req().lane.is_default());
        assert_eq!(req().with_lane(Lane::new(3)).lane, Lane::new(3));
    }
}
