//! Per-worker and aggregate cluster reporting.

use specee_batch::BatchedOutput;
use specee_core::traffic::ClassMap;
use specee_metrics::{HardwareProfile, Roofline};
use specee_obs::{
    fold_dropped_events, fold_events, fold_meter, fold_roofline, merge_events, Event,
    MetricsRegistry,
};
use specee_serve::batcher::ServeReport;
use specee_serve::{ClassStats, ServeStats};

use crate::worker::WorkerReport;

/// Everything a served cluster run produced: one [`WorkerReport`] per
/// worker plus the merged aggregate view.
///
/// The aggregate [`ServeReport`] merges every worker's completions and
/// takes the rearmost worker's makespan (all simulated clocks start at
/// zero), so [`ClusterReport::stats`] yields the same [`ServeStats`]
/// shape as single-engine replay/live runs — cluster curves overlay
/// directly on theirs.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Routing policy that produced the run.
    pub router: String,
    /// Per-worker reports, in worker-index order.
    pub workers: Vec<WorkerReport>,
    /// Ids that could not be routed at all (every worker had failed).
    pub unroutable: Vec<u64>,
    /// The cluster-wide trace timeline: every worker's event stream plus
    /// the coordinator's routing decisions, stably merged by `(t, lane)`
    /// — empty unless the cluster ran with
    /// [`ClusterConfig::trace`](crate::ClusterConfig::trace) on. Feed it
    /// to [`specee_obs::chrome_trace_json`] for a Perfetto-viewable trace
    /// (one lane per worker) or to [`ClusterReport::metrics`] for the
    /// aggregated registry.
    pub events: Vec<Event>,
}

impl ClusterReport {
    pub(crate) fn new(
        router: String,
        workers: Vec<WorkerReport>,
        unroutable: Vec<u64>,
        coordinator_events: Vec<Event>,
    ) -> Self {
        let mut streams: Vec<Vec<Event>> = workers.iter().map(|w| w.events.clone()).collect();
        streams.push(coordinator_events);
        let events = merge_events(streams);
        ClusterReport {
            router,
            workers,
            unroutable,
            events,
        }
    }

    /// The merged aggregate report: all completions in id order, the
    /// rearmost worker's makespan, summed steps, and exactly-weighted
    /// occupancy / executed-layer means.
    pub fn aggregate(&self) -> ServeReport {
        let mut completions: Vec<_> = self
            .workers
            .iter()
            .flat_map(|w| w.report.completions.iter().cloned())
            .collect();
        completions.sort_by_key(|c| c.id);
        let makespan_s = self
            .workers
            .iter()
            .map(|w| w.report.makespan_s)
            .fold(0.0f64, f64::max);
        let steps: u64 = self.workers.iter().map(|w| w.report.steps).sum();
        let occupancy_sum: f64 = self.workers.iter().map(|w| w.occupancy_sum).sum();
        let layer_sum: f64 = self.workers.iter().map(|w| w.layer_sum).sum();
        let decode_tokens: u64 = self.workers.iter().map(|w| w.decode_tokens).sum();
        ServeReport {
            completions,
            makespan_s,
            steps,
            avg_occupancy: if steps > 0 {
                occupancy_sum / steps as f64
            } else {
                0.0
            },
            avg_layers: if decode_tokens > 0 {
                layer_sum / decode_tokens as f64
            } else {
                0.0
            },
        }
    }

    /// Aggregate latency/throughput statistics (the existing
    /// [`ServeStats`] shape).
    pub fn stats(&self) -> ServeStats {
        self.aggregate().stats()
    }

    /// Every decoded output across workers, in id order (completed
    /// requests plus cancelled partials).
    pub fn outputs(&self) -> Vec<&BatchedOutput> {
        let mut outs: Vec<&BatchedOutput> =
            self.workers.iter().flat_map(|w| w.outputs.iter()).collect();
        outs.sort_by_key(|o| o.id);
        outs
    }

    /// Completed requests across all workers.
    pub fn completed(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.report.completions.len())
            .sum()
    }

    /// Ids that timed out, were cancelled, or failed, plus the
    /// unroutable, across all workers — everything that did *not*
    /// complete, each id exactly once.
    pub fn not_completed(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.unroutable.clone();
        for w in &self.workers {
            ids.extend(&w.timed_out);
            ids.extend(&w.cancelled);
            ids.extend(&w.failed);
        }
        ids.sort_unstable();
        ids
    }

    /// Cluster-wide per-traffic-class breakdown (ascending class order):
    /// each worker's [`ClassStats`] rows merged exactly — counts and
    /// layer sums add, controller operating points merge token-weighted.
    /// Empty when no request carried a class and no controller ran.
    pub fn class_breakdown(&self) -> Vec<ClassStats> {
        let mut merged: ClassMap<ClassStats> = ClassMap::new();
        for worker in &self.workers {
            for row in &worker.classes {
                merged
                    .get_or_insert_with(row.class, || ClassStats::empty(row.class))
                    .merge(row);
            }
        }
        merged.iter().map(|(_, row)| row.clone()).collect()
    }

    /// Mean observed exit depth (executed layers per decode token)
    /// across everything the cluster decoded.
    pub fn observed_depth(&self) -> Option<f64> {
        let layer_sum: f64 = self.workers.iter().map(|w| w.layer_sum).sum();
        let tokens: u64 = self.workers.iter().map(|w| w.decode_tokens).sum();
        (tokens > 0).then(|| layer_sum / tokens as f64)
    }

    /// Snapshots the run into a [`MetricsRegistry`]: the merged event
    /// stream folds to exit-layer/TTFT/queue-depth histograms and
    /// per-type counters, and every worker's measured op totals fold in
    /// as `specee_op_*` counters. With a `hardware` profile, each
    /// worker's roofline-modelled per-[`specee_metrics::OpKind`] costs
    /// are folded too (gauges add across workers, so modelled latency
    /// reads as cluster device-seconds). The merge is exact — counters
    /// and histogram buckets sum element-wise — so the cluster-wide
    /// registry equals the sum of its workers'.
    pub fn metrics(&self, hardware: Option<&HardwareProfile>) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        fold_events(&mut reg, &self.events);
        fold_dropped_events(
            &mut reg,
            self.workers.iter().map(|w| w.dropped_events).sum(),
        );
        for w in &self.workers {
            fold_meter(&mut reg, &w.meter);
            if let Some(hw) = hardware {
                let mut own = MetricsRegistry::new();
                fold_roofline(&mut own, &Roofline::new(hw.clone()).cost(&w.meter));
                reg.merge(&own);
            }
        }
        reg
    }

    /// Total page-pressure preemptions across workers (`0` unless the
    /// cluster ran with a page capacity and preemption enabled).
    pub fn preemptions(&self) -> u64 {
        self.workers.iter().map(|w| w.preemptions).sum()
    }

    /// Total parked-sequence resumes across workers.
    pub fn resumes(&self) -> u64 {
        self.workers.iter().map(|w| w.resumes).sum()
    }

    /// Summed peak physical KV-page residency across worker pools — the
    /// cluster's memory high-water mark in pages.
    pub fn kv_pages_peak(&self) -> usize {
        self.workers.iter().map(|w| w.kv.pages_peak).sum()
    }

    /// Workers that failed, with their panic messages.
    pub fn failures(&self) -> Vec<(usize, &str)> {
        self.workers
            .iter()
            .filter_map(|w| w.panic.as_deref().map(|msg| (w.worker, msg)))
            .collect()
    }
}
