//! The per-worker serving loop: one OS thread, one batched engine, one
//! simulated clock.
//!
//! Each worker replicates the admission/step loop of
//! `ContinuousBatcher::run_live` *incrementally*: requests stream in over
//! an mpsc channel instead of being known upfront, and the loop advances
//! only to the coordinator's current **arrival frontier** (see
//! [`crate::Cluster`]). Two rules keep a one-worker cluster
//! boundary-for-boundary identical to `run_live`:
//!
//! 1. a routed request becomes admissible only once the frontier has
//!    passed its arrival time (so same-instant arrivals are admitted in
//!    one batched prefill, exactly as a loop that knows the full request
//!    list would admit them), and
//! 2. the worker pauses stepping at the first loop boundary at or beyond
//!    the frontier (so an arrival routed next can never land *between*
//!    boundaries the reference loop would have checked).
//!
//! Every decode step is genuinely executed by the worker's
//! [`BatchedEngine`] and priced with the shared
//! [`specee_serve::StepCostModel`]; prefill is priced as one batched
//! forward per admission boundary. A panic anywhere in the worker's
//! serving loop (a poisoned request's model, a factory bug) is caught at
//! the message boundary: the worker marks itself failed, reports the
//! requests it can no longer serve, and keeps answering the coordinator
//! so the rest of the cluster drains normally.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use specee_batch::{Admission, BatchedEngine, BatchedOutput};
use specee_control::{ClassEvidence, ControllerSummary};
use specee_core::traffic::ClassMap;
use specee_draft::SpeculativeSource;
use specee_metrics::Meter;
use specee_model::LayeredLm;
use specee_obs::{Event, EventKind, SloTracker};
use specee_serve::batcher::ServeReport;
use specee_serve::cost::{StepCostModel, StepSpec};
use specee_serve::request::Completion;
use specee_serve::{AdmissionPolicy, ClassStats};

use crate::request::ClusterRequest;
use crate::router::WorkerSnapshot;

/// Builds the per-sequence model and draft for a request at admission
/// time (each engine slot owns its sequence's KV state). Shared by every
/// worker thread, hence `Send + Sync`.
pub type SeqFactory<M, D> = Arc<dyn Fn(&ClusterRequest) -> (M, D) + Send + Sync>;

/// Coordinator → worker messages.
pub(crate) enum WorkerMsg {
    /// A routed request (arrival times nondecreasing per worker).
    Submit(ClusterRequest),
    /// Advance the simulated clock to the arrival frontier and snapshot.
    SyncTo(f64),
    /// The *other* workers' per-class evidence deltas (cross-worker
    /// controller gossip; one delta per reporter and class, in
    /// worker-index order), to absorb at the current loop boundary.
    Gossip(Vec<ClassEvidence>),
    /// Best-effort cancellation of a routed request by id.
    Cancel(u64),
    /// No more requests: run to completion and report.
    Drain,
}

/// Worker → coordinator replies.
pub(crate) enum WorkerReply {
    /// Response to [`WorkerMsg::SyncTo`]: the routing snapshot plus the
    /// per-class evidence deltas this worker's controller accumulated
    /// since the previous sync (raw material of the coordinator's
    /// gossip merge).
    /// Boxed: the snapshot (pages, classes, queue state) dwarfs the
    /// channel's other traffic.
    Synced(Box<WorkerSnapshot>, Vec<ClassEvidence>),
    /// Response to [`WorkerMsg::Drain`]; the worker thread exits after.
    /// Boxed: the report (event stream, meter, completions) dwarfs the
    /// sync variant.
    Done(Box<WorkerReport>),
}

/// Everything one worker did over a served run.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// The worker's serving report: completions in id order, its local
    /// makespan, steps and occupancy — same shape as a single-engine run.
    pub report: ServeReport,
    /// Decoded outputs (finished and cancelled-partial), in id order.
    pub outputs: Vec<BatchedOutput>,
    /// Requests routed to this worker.
    pub assigned: usize,
    /// Sum of executed layers over decode steps (for exact cross-worker
    /// averaging).
    pub layer_sum: f64,
    /// Decode tokens emitted in steps (excludes prefill tokens).
    pub decode_tokens: u64,
    /// Sum of batch occupancy over decode steps.
    pub occupancy_sum: f64,
    /// Mean observed exit depth over every emitted token, layers.
    pub observed_depth: Option<f64>,
    /// Ids dropped because their deadline passed while queued.
    pub timed_out: Vec<u64>,
    /// Ids cancelled by the coordinator (queued or mid-decode).
    pub cancelled: Vec<u64>,
    /// Ids this worker could not serve because it failed.
    pub failed: Vec<u64>,
    /// The panic message that failed the worker, if any.
    pub panic: Option<String>,
    /// Final state of the worker's exit-threshold controller (operating
    /// point plus its observed accept/reject stream), merged across
    /// classes.
    pub controller: Option<ControllerSummary>,
    /// Per-traffic-class breakdown (ascending class order): requests,
    /// decode tokens, executed-layer sums and the class's controller
    /// operating point.
    pub classes: Vec<ClassStats>,
    /// The worker's trace-event stream, stamped with its simulated clock
    /// and worker lane (empty unless the cluster was spawned with
    /// tracing on). Already in clock order for this lane; the
    /// coordinator merges lanes into the cluster-wide timeline.
    pub events: Vec<Event>,
    /// Events the worker's recorder discarded (trace sampling plus any
    /// budget overflow); `0` when untraced. Folded into
    /// [`crate::ClusterReport::metrics`] as
    /// `specee_trace_dropped_events_total`.
    pub dropped_events: u64,
    /// The engine's measured op totals (FLOPs/bytes/kernels per
    /// [`specee_metrics::OpKind`]), for folding into a cluster-wide
    /// metrics registry.
    pub meter: Meter,
    /// Sequences this worker evicted under page pressure (each later
    /// resumed or cancelled); `0` unless the cluster runs with a page
    /// capacity and preemption enabled.
    pub preemptions: u64,
    /// Parked sequences re-seated after pages freed up.
    pub resumes: u64,
    /// Final snapshot of the worker's KV slot pool (peak residency,
    /// sharing, copy-on-write counts).
    pub kv: specee_model::KvStats,
}

struct ActiveSeq {
    id: u64,
    gen_len: usize,
    tokens_done: usize,
    depth_est: f64,
}

pub(crate) struct Worker<M: LayeredLm, D: SpeculativeSource> {
    id: usize,
    engine: BatchedEngine<M, D>,
    cost: StepCostModel,
    policy: AdmissionPolicy,
    make_seq: SeqFactory<M, D>,
    n_layers: usize,
    sim_now: f64,
    /// Routed requests not yet past the arrival frontier, arrival order.
    inbox: VecDeque<ClusterRequest>,
    /// Arrived requests waiting for a slot.
    pending: Vec<ClusterRequest>,
    /// Requests picked for the current admission boundary (a struct field
    /// so a panic mid-admission cannot drop them unaccounted).
    admitting: Vec<ClusterRequest>,
    /// The id being admitted right now, for panic accounting.
    current_admission: Option<u64>,
    /// Seated sequences (routing metadata; the engine owns the state).
    active: Vec<ActiveSeq>,
    /// `(id, arrival_s, first_token_s)` recorded at admission.
    admitted_meta: Vec<(u64, f64, f64)>,
    completions: Vec<Completion>,
    outputs: Vec<BatchedOutput>,
    assigned: usize,
    steps: u64,
    occupancy_sum: f64,
    layer_sum: f64,
    token_sum: u64,
    timed_out: Vec<u64>,
    cancelled: Vec<u64>,
    lost: Vec<u64>,
    panic: Option<String>,
    /// Online SLO tracker, driven by this worker's simulated clock
    /// (`None` unless the cluster was spawned with an SLO spec).
    slo: Option<SloTracker>,
}

impl<M: LayeredLm, D: SpeculativeSource> Worker<M, D> {
    pub(crate) fn new(
        id: usize,
        engine: BatchedEngine<M, D>,
        cost: StepCostModel,
        policy: AdmissionPolicy,
        slo: Option<SloTracker>,
        make_seq: SeqFactory<M, D>,
    ) -> Self {
        let n_layers = engine.n_layers();
        Worker {
            id,
            engine,
            cost,
            policy,
            make_seq,
            n_layers,
            sim_now: 0.0,
            inbox: VecDeque::new(),
            pending: Vec::new(),
            admitting: Vec::new(),
            current_admission: None,
            active: Vec::new(),
            admitted_meta: Vec::new(),
            completions: Vec::new(),
            outputs: Vec::new(),
            assigned: 0,
            steps: 0,
            occupancy_sum: 0.0,
            layer_sum: 0.0,
            token_sum: 0,
            timed_out: Vec::new(),
            cancelled: Vec::new(),
            lost: Vec::new(),
            panic: None,
            slo,
        }
    }

    /// The worker thread's message loop.
    pub(crate) fn run(mut self, rx: Receiver<WorkerMsg>, tx: Sender<WorkerReply>) {
        while let Ok(msg) = rx.recv() {
            match msg {
                WorkerMsg::Submit(req) => {
                    if self.panic.is_some() {
                        self.lost.push(req.request.id);
                    } else {
                        self.assigned += 1;
                        self.inbox.push_back(req);
                    }
                }
                WorkerMsg::SyncTo(frontier) => {
                    self.advance_contained(frontier);
                    // Drain the evidence window at the boundary the loop
                    // is paused on — a deterministic point — so the
                    // coordinator's merge is a pure function of the
                    // workload. A failed worker gossips nothing.
                    let evidence = if self.panic.is_none() {
                        self.engine.take_gossip_evidence()
                    } else {
                        Vec::new()
                    };
                    if tx
                        .send(WorkerReply::Synced(Box::new(self.snapshot()), evidence))
                        .is_err()
                    {
                        return;
                    }
                }
                WorkerMsg::Gossip(evidence) => {
                    if self.panic.is_none() {
                        // Gossip lands at the paused loop boundary: stamp
                        // the recorder there so the engine's gossip event
                        // carries this worker's current simulated clock.
                        if let Some(rec) = self.engine.recorder_mut() {
                            rec.set_clock(self.sim_now);
                        }
                        let caught =
                            catch_unwind(AssertUnwindSafe(|| self.engine.absorb_gossip(&evidence)));
                        if let Err(payload) = caught {
                            self.panic = Some(panic_message(payload.as_ref()));
                            self.fail_outstanding();
                        }
                    }
                }
                WorkerMsg::Cancel(id) => self.cancel(id),
                WorkerMsg::Drain => {
                    self.advance_contained(f64::INFINITY);
                    let _ = tx.send(WorkerReply::Done(Box::new(self.into_report())));
                    return;
                }
            }
        }
    }

    /// Runs the serving loop with panic containment: a panic fails this
    /// worker's outstanding requests, never the cluster.
    fn advance_contained(&mut self, frontier: f64) {
        if self.panic.is_some() {
            self.fail_outstanding();
            return;
        }
        let caught = catch_unwind(AssertUnwindSafe(|| self.advance(frontier)));
        if let Err(payload) = caught {
            self.panic = Some(panic_message(payload.as_ref()));
            self.fail_outstanding();
        }
    }

    /// The incremental `run_live` loop, advanced to `frontier`.
    fn advance(&mut self, frontier: f64) {
        loop {
            // A boundary at clock `s` may only be processed once the
            // frontier has passed it: only then is the set of arrivals
            // with `arrival ≤ s` final, so admission groups exactly the
            // requests a loop that knew the full list would group.
            if self.sim_now >= frontier {
                return; // paused; the next sync resumes at this boundary
            }

            // Arrivals the clock has passed (all final, per the above).
            while self
                .inbox
                .front()
                .is_some_and(|r| r.request.arrival_s <= self.sim_now)
            {
                self.pending
                    .push(self.inbox.pop_front().expect("front exists"));
            }
            self.drop_expired();

            // Admission, one batched prefill per boundary. The picks land
            // in `self.admitting` (not a local) so a panic mid-admission
            // still accounts for every request. Lanes gate first (best
            // lane present wins), the policy orders within the lane, and
            // each pick reserves its admission pages out of a per-boundary
            // budget so one boundary cannot overcommit the pool. When a
            // pick does not fit, a preemption-enabled engine may evict a
            // strictly lower-priority resident to make room.
            let mut pages_left = self.engine.pool().available_pages();
            while !self.pending.is_empty() {
                let best_lane = self
                    .pending
                    .iter()
                    .map(|r| r.lane)
                    .min()
                    .expect("pending non-empty");
                let subset: Vec<usize> = (0..self.pending.len())
                    .filter(|&i| self.pending[i].lane == best_lane)
                    .collect();
                let keys: Vec<(usize, u64)> = subset
                    .iter()
                    .map(|&i| (self.pending[i].request.gen_len, self.pending[i].request.id))
                    .collect();
                let pick = subset[self.policy.pick_by_key(&keys)];
                let req = &self.pending[pick];
                let need = if req.request.gen_len == 0 {
                    0
                } else {
                    self.engine.pages_for_admit(&req.request.prompt)
                };
                let fits = self.engine.occupancy() + self.admitting.len() < self.engine.max_batch()
                    && need <= pages_left;
                if !fits {
                    if !(self.admitting.is_empty()
                        && self.engine.make_room(&req.request.prompt, req.lane))
                    {
                        assert!(
                            self.engine.occupancy() > 0
                                || self.engine.parked() > 0
                                || !self.admitting.is_empty(),
                            "page capacity too small to admit request {}",
                            req.request.id
                        );
                        break;
                    }
                    pages_left = self.engine.pool().available_pages();
                }
                pages_left = pages_left.saturating_sub(need);
                let req = self.pending.remove(pick);
                self.admitting.push(req);
            }
            if !self.admitting.is_empty() {
                let depth = self.pending.len() as u32;
                if let Some(rec) = self.engine.recorder_mut() {
                    for r in &self.admitting {
                        rec.record_at(
                            self.sim_now,
                            Some(r.request.id),
                            EventKind::Admission {
                                request: r.request.id,
                                queue_depth: depth,
                            },
                        );
                    }
                }
                let lens: Vec<usize> = self
                    .admitting
                    .iter()
                    .map(|r| r.request.prompt.len())
                    .collect();
                self.sim_now += self.cost.prefill_latency(&lens);
                if let Some(rec) = self.engine.recorder_mut() {
                    rec.set_clock(self.sim_now);
                }
                while !self.admitting.is_empty() {
                    let req = self.admitting.remove(0);
                    self.admit(req);
                }
                self.slo_tick();
                continue;
            }

            if self.engine.occupancy() == 0 && self.engine.parked() == 0 {
                // Idle: jump to the next arrival (the loop top defers the
                // boundary if the frontier has not released it yet).
                if let Some(front) = self.inbox.front() {
                    self.sim_now = self.sim_now.max(front.request.arrival_s);
                    // Idle time drains the rolling windows, so a burn
                    // can clear between bursts.
                    self.slo_tick();
                    continue;
                }
                return;
            }

            self.step();
        }
    }

    /// Drops queued requests whose deadline the clock has passed.
    fn drop_expired(&mut self) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].deadline_s.is_some_and(|d| d < self.sim_now) {
                let req = self.pending.remove(i);
                self.timed_out.push(req.request.id);
            } else {
                i += 1;
            }
        }
    }

    /// Seats one admitted request (prefill already priced by the caller).
    fn admit(&mut self, req: ClusterRequest) {
        let id = req.request.id;
        self.current_admission = Some(id);
        self.admitted_meta
            .push((id, req.request.arrival_s, self.sim_now));
        if let Some(t) = self.slo.as_mut() {
            t.observe_ttft(self.sim_now, self.sim_now - req.request.arrival_s);
        }
        // The class is resolved once, here at admission — explicit tag,
        // else exit-hint depth band — and keys the engine's feedback
        // plane for the sequence's whole lifetime.
        let class = req.traffic_class(self.n_layers);
        if req.request.gen_len == 0 {
            self.completions.push(Completion {
                id,
                arrival_s: req.request.arrival_s,
                first_token_s: self.sim_now,
                finish_s: self.sim_now,
                tokens: 0,
            });
            if let Some(rec) = self.engine.recorder_mut() {
                rec.record_at(
                    self.sim_now,
                    Some(id),
                    EventKind::Request {
                        request: id,
                        arrival_s: req.request.arrival_s,
                        first_token_s: self.sim_now,
                        finish_s: self.sim_now,
                        tokens: 0,
                    },
                );
            }
            // Keep one output per request so callers can zip by id.
            self.outputs.push(BatchedOutput {
                id,
                class,
                tokens: Vec::new(),
                exit_layers: Vec::new(),
                ce_sum: 0.0,
                predictor_calls: 0,
                verify_calls: 0,
                draft_calls: 0,
                self_draft_calls: 0,
            });
            self.current_admission = None;
            return;
        }
        let (model, draft) = (self.make_seq)(&req);
        match self.engine.admit_laned(
            id,
            class,
            req.lane,
            model,
            draft,
            &req.request.prompt,
            req.request.gen_len,
        ) {
            Admission::Done(out) => {
                self.completions.push(Completion {
                    id,
                    arrival_s: req.request.arrival_s,
                    first_token_s: self.sim_now,
                    finish_s: self.sim_now,
                    tokens: out.tokens.len(),
                });
                if let Some(rec) = self.engine.recorder_mut() {
                    rec.record_at(
                        self.sim_now,
                        Some(id),
                        EventKind::Request {
                            request: id,
                            arrival_s: req.request.arrival_s,
                            first_token_s: self.sim_now,
                            finish_s: self.sim_now,
                            tokens: out.tokens.len() as u32,
                        },
                    );
                }
                self.outputs.push(out);
            }
            Admission::Seated { .. } => {
                self.active.push(ActiveSeq {
                    id,
                    gen_len: req.request.gen_len,
                    tokens_done: 1,
                    depth_est: req.exit_hint.unwrap_or(self.n_layers as f64),
                });
            }
        }
        self.current_admission = None;
    }

    /// One genuinely executed, priced decode step.
    fn step(&mut self) {
        if let Some(rec) = self.engine.recorder_mut() {
            rec.set_clock(self.sim_now);
        }
        let step = self.engine.step();
        let dur = self.cost.decode_step_latency(&StepSpec {
            layer_runners: step.layer_runners.clone(),
            ctx_lens: step.ctx_lens.clone(),
            lm_head_evals: step.lm_head_evals as f64,
            draft_slots: step.draft_slots,
            self_draft_slots: step.self_draft_slots,
            predictor_calls: step.predictor_calls as f64,
        });
        if let Some(rec) = self.engine.recorder_mut() {
            rec.record_at(
                self.sim_now,
                None,
                EventKind::Step {
                    step: self.steps,
                    occupancy: step.ctx_lens.len() as u32,
                    layers: step.rearmost_layer() as u32,
                    dur_s: dur,
                },
            );
        }
        self.sim_now += dur;
        self.steps += 1;
        self.occupancy_sum += step.ctx_lens.len() as f64;
        self.layer_sum += step.layer_runners.iter().sum::<usize>() as f64;
        self.token_sum += step.emitted as u64;
        if let Some(t) = self.slo.as_mut() {
            for fb in &step.feedback {
                t.observe_exit(self.sim_now, fb.accepted);
            }
        }
        for seq in &mut self.active {
            seq.tokens_done += 1;
        }
        for out in step.finished {
            self.active.retain(|s| s.id != out.id);
            let (arrival_s, first_token_s) = self.milestones(out.id);
            self.completions.push(Completion {
                id: out.id,
                arrival_s,
                first_token_s,
                finish_s: self.sim_now,
                tokens: out.tokens.len(),
            });
            if let Some(rec) = self.engine.recorder_mut() {
                rec.record_at(
                    self.sim_now,
                    Some(out.id),
                    EventKind::Request {
                        request: out.id,
                        arrival_s,
                        first_token_s,
                        finish_s: self.sim_now,
                        tokens: out.tokens.len() as u32,
                    },
                );
            }
            self.outputs.push(out);
        }
        self.slo_tick();
    }

    /// Evaluates the burn-rate alerts at the clock the loop just reached,
    /// records any fired/cleared transitions on this worker's trace lane,
    /// and pushes the pressure signal into the engine's controller.
    /// Measurement is recorder-independent — only the transition
    /// *instants* touch the recorder — so traced and untraced runs see
    /// identical pressure.
    fn slo_tick(&mut self) {
        let Some(tracker) = self.slo.as_mut() else {
            return;
        };
        for kind in tracker.evaluate(self.sim_now) {
            if let Some(rec) = self.engine.recorder_mut() {
                rec.record_at(self.sim_now, None, kind);
            }
        }
        self.engine.set_slo_pressure(tracker.pressure());
    }

    /// The `(arrival_s, first_token_s)` milestones recorded at admission.
    fn milestones(&self, id: u64) -> (f64, f64) {
        self.admitted_meta
            .iter()
            .find(|(i, _, _)| *i == id)
            .map(|(_, a, f)| (*a, *f))
            .expect("milestones recorded at admission")
    }

    /// Best-effort cancellation: queued requests vanish, a seated
    /// sequence is retired with its partial output.
    fn cancel(&mut self, id: u64) {
        if let Some(pos) = self.inbox.iter().position(|r| r.request.id == id) {
            self.inbox.remove(pos);
            self.cancelled.push(id);
            return;
        }
        if let Some(pos) = self.pending.iter().position(|r| r.request.id == id) {
            self.pending.remove(pos);
            self.cancelled.push(id);
            return;
        }
        if let Some(out) = self.engine.cancel(id) {
            self.active.retain(|s| s.id != id);
            self.outputs.push(out);
            self.cancelled.push(id);
        }
    }

    /// Moves every outstanding request into the failed list (the worker
    /// can no longer serve them).
    fn fail_outstanding(&mut self) {
        if let Some(id) = self.current_admission.take() {
            self.lost.push(id);
        }
        self.lost
            .extend(self.admitting.drain(..).map(|r| r.request.id));
        self.lost.extend(self.inbox.drain(..).map(|r| r.request.id));
        self.lost
            .extend(self.pending.drain(..).map(|r| r.request.id));
        self.lost.extend(self.active.drain(..).map(|s| s.id));
    }

    fn depth_of(&self, req: &ClusterRequest) -> f64 {
        req.exit_hint.unwrap_or(self.n_layers as f64)
    }

    pub(crate) fn snapshot(&self) -> WorkerSnapshot {
        let queued_iter = self.pending.iter().chain(self.inbox.iter());
        let mut backlog_tokens = 0usize;
        let mut backlog_work = 0.0f64;
        let mut depth_sum = 0.0f64;
        let mut max_depth = f64::NEG_INFINITY;
        let mut residents = 0usize;
        for req in queued_iter {
            let depth = self.depth_of(req);
            backlog_tokens += req.request.gen_len;
            backlog_work += req.request.gen_len as f64 * depth;
            depth_sum += depth;
            max_depth = max_depth.max(depth);
            residents += 1;
        }
        for seq in &self.active {
            let remaining = seq.gen_len.saturating_sub(seq.tokens_done);
            backlog_tokens += remaining;
            backlog_work += remaining as f64 * seq.depth_est;
            depth_sum += seq.depth_est;
            max_depth = max_depth.max(seq.depth_est);
            residents += 1;
        }
        WorkerSnapshot {
            worker: self.id,
            sim_now: self.sim_now,
            n_layers: self.n_layers,
            occupancy: self.engine.occupancy(),
            queued: self.pending.len() + self.inbox.len(),
            backlog_tokens,
            backlog_work,
            active_depth: (residents > 0).then(|| depth_sum / residents as f64),
            max_depth: (residents > 0).then_some(max_depth),
            observed_depth: (self.token_sum > 0).then(|| self.layer_sum / self.token_sum as f64),
            mean_threshold: self.engine.controller_summary().map(|s| s.mean_threshold),
            base_threshold: self.engine.controller_base_threshold().map(f64::from),
            class_thresholds: self
                .engine
                .controller_class_summaries()
                .map(|summaries| {
                    summaries
                        .into_iter()
                        .map(|(class, s)| (class, s.mean_threshold))
                        .collect()
                })
                .unwrap_or_default(),
            pages_in_use: self.engine.pool().pages_in_use(),
            page_capacity: self.engine.pool().capacity(),
            parked: self.engine.parked(),
            completed: self.completions.len(),
            failed: self.panic.is_some(),
        }
    }

    /// Per-class rows of everything this worker decoded: one row per
    /// class seen in outputs or controller state, counts and layer sums
    /// exact, the operating point from the class's controller.
    fn class_rows(&self) -> Vec<ClassStats> {
        let mut rows: ClassMap<ClassStats> = ClassMap::new();
        for out in &self.outputs {
            let row = rows.get_or_insert_with(out.class, || ClassStats::empty(out.class));
            row.requests += 1;
            row.tokens += out.exit_layers.len().saturating_sub(1) as u64;
            // The prefill token always runs full depth and is excluded
            // from decode-token depth, matching `observed_depth`.
            row.layer_sum += out.exit_layers.iter().skip(1).sum::<usize>() as f64;
        }
        if let Some(summaries) = self.engine.controller_class_summaries() {
            for (class, summary) in summaries {
                let row = rows.get_or_insert_with(class, || ClassStats::empty(class));
                row.mean_threshold = Some(summary.mean_threshold);
            }
        }
        rows.iter().map(|(_, row)| row.clone()).collect()
    }

    fn into_report(mut self) -> WorkerReport {
        self.completions.sort_by_key(|c| c.id);
        self.outputs.sort_by_key(|o| o.id);
        let controller = self.engine.controller_summary();
        let classes = self.class_rows();
        let meter = self.engine.meter().clone();
        let preemptions = self.engine.preemptions();
        let resumes = self.engine.resumes();
        let kv = self.engine.kv_stats();
        let recorder = self.engine.take_recorder();
        let dropped_events = recorder.as_ref().map_or(0, |r| r.dropped_events());
        let events = recorder.map(|r| r.into_events()).unwrap_or_default();
        WorkerReport {
            worker: self.id,
            report: ServeReport {
                completions: self.completions,
                makespan_s: self.sim_now,
                steps: self.steps,
                avg_occupancy: if self.steps > 0 {
                    self.occupancy_sum / self.steps as f64
                } else {
                    0.0
                },
                avg_layers: if self.token_sum > 0 {
                    self.layer_sum / self.token_sum as f64
                } else {
                    0.0
                },
            },
            outputs: self.outputs,
            assigned: self.assigned,
            layer_sum: self.layer_sum,
            decode_tokens: self.token_sum,
            occupancy_sum: self.occupancy_sum,
            observed_depth: (self.token_sum > 0).then(|| self.layer_sum / self.token_sum as f64),
            timed_out: self.timed_out,
            cancelled: self.cancelled,
            failed: self.lost,
            panic: self.panic,
            controller,
            classes,
            events,
            dropped_events,
            meter,
            preemptions,
            resumes,
            kv,
        }
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}
