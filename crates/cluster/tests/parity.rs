//! Cluster correctness: single-worker parity with the live batcher,
//! multi-worker scaling, deadline/cancellation semantics, and
//! worker-panic containment.

use std::sync::Arc;

use specee_batch::BatchedEngine;
use specee_cluster::{Cluster, ClusterConfig, ClusterRequest, RouterPolicy};
use specee_core::collect::{collect_training_data, train_bank};
use specee_core::predictor::{PredictorBank, PredictorConfig};
use specee_core::{ScheduleEngine, SpecEeConfig};
use specee_metrics::{FrameworkProfile, HardwareProfile};
use specee_model::{CostDims, ModelConfig, TokenId};
use specee_nn::TrainConfig;
use specee_serve::{
    AdmissionPolicy, BatcherConfig, ContinuousBatcher, PoissonArrivals, ServeRequest,
};
use specee_synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
use specee_tensor::rng::Pcg;

const N_LAYERS: usize = 8;

fn cfg() -> ModelConfig {
    ModelConfig {
        n_layers: N_LAYERS,
        vocab_size: 256,
        ..ModelConfig::tiny()
    }
}

fn cost_dims() -> CostDims {
    CostDims {
        n_layers: N_LAYERS,
        ..CostDims::llama2_7b()
    }
}

fn batcher_config(max_batch: usize) -> BatcherConfig {
    BatcherConfig {
        max_batch,
        hardware: HardwareProfile::a100_80g(),
        framework: FrameworkProfile::vllm(),
        cost: cost_dims(),
    }
}

fn cluster_config(workers: usize, max_batch: usize) -> ClusterConfig {
    ClusterConfig {
        workers,
        page_size: 16,
        page_capacity: None,
        prefix_share: false,
        preemption: false,
        admission: AdmissionPolicy::Fcfs,
        batcher: batcher_config(max_batch),
        controller: specee_control::ControllerPolicy::Static,
        gossip: true,
        trace: false,
        trace_sample: 1,
        slo: None,
    }
}

fn build_lm(seed: u64) -> SyntheticLm {
    SyntheticLmBuilder::new(cfg(), DatasetProfile::qa())
        .seed(seed)
        .build()
}

fn trained(seed: u64) -> (PredictorBank, ScheduleEngine, SpecEeConfig) {
    let mut lm = build_lm(seed);
    let mut draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed);
    let prompts: Vec<(Vec<TokenId>, usize)> =
        (0..8u32).map(|i| (vec![1 + i, 2 + i], 8usize)).collect();
    let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
    let pcfg = PredictorConfig {
        hidden_dim: 16,
        ..PredictorConfig::default()
    };
    let mut bank = PredictorBank::new(N_LAYERS, &pcfg, &mut Pcg::seed(seed));
    train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), seed);
    let config = SpecEeConfig {
        predictor: pcfg,
        ..SpecEeConfig::default()
    };
    let schedule = config.build_schedule(N_LAYERS, Some(&data.exit_frequencies));
    (bank, schedule, config)
}

/// The per-sequence factory used by both the live batcher closure and the
/// cluster (same seeds → same sequences).
fn seq_parts(seed: u64, id: u64) -> (SyntheticLm, OracleDraft) {
    let lm = build_lm(seed);
    let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed ^ id);
    (lm, draft)
}

fn factory(seed: u64) -> specee_cluster::SeqFactory<SyntheticLm, OracleDraft> {
    Arc::new(move |req: &ClusterRequest| seq_parts(seed, req.request.id))
}

fn specs(n: usize, gen: usize) -> Vec<(Vec<TokenId>, usize)> {
    (0..n as u32)
        .map(|i| (vec![2 + i, 5 + i, 1 + i], gen))
        .collect()
}

fn run_cluster(
    workers: usize,
    max_batch: usize,
    policy: RouterPolicy,
    parts: &(PredictorBank, ScheduleEngine, SpecEeConfig),
    seed: u64,
    requests: &[ServeRequest],
) -> specee_cluster::ClusterReport {
    let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
        &cluster_config(workers, max_batch),
        policy.build(),
        &parts.0,
        &parts.1,
        &parts.2,
        factory(seed),
    );
    for req in requests {
        cluster.submit(ClusterRequest::new(req.clone()));
    }
    cluster.drain()
}

/// The acceptance-criterion parity: one round-robin worker reproduces
/// `ContinuousBatcher::run_live` exactly — token streams, exit layers,
/// call counts, and every completion milestone down to the clock.
#[test]
fn one_worker_round_robin_matches_live_mode_exactly() {
    let seed = 41;
    let parts = trained(seed);
    // A rate that interleaves queueing, batched admissions and idle gaps.
    let requests = PoissonArrivals::new(18.0, 7).requests(&specs(7, 8));
    let batcher = ContinuousBatcher::new(batcher_config(3));
    let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
        3,
        16,
        N_LAYERS,
        parts.0.clone(),
        parts.1.clone(),
        parts.2.clone(),
    );
    let live = batcher.run_live(&requests, &mut engine, |r| seq_parts(seed, r.id));

    let report = run_cluster(1, 3, RouterPolicy::RoundRobin, &parts, seed, &requests);
    assert!(report.failures().is_empty());
    assert_eq!(report.workers.len(), 1);

    // Token-identical output and identical exit-layer counts...
    let outputs = report.outputs();
    assert_eq!(outputs.len(), live.outputs.len());
    for (cluster_out, live_out) in outputs.iter().zip(&live.outputs) {
        assert_eq!(cluster_out.id, live_out.id);
        assert_eq!(
            cluster_out.tokens, live_out.tokens,
            "request {}",
            live_out.id
        );
        assert_eq!(
            cluster_out.exit_layers, live_out.exit_layers,
            "request {}",
            live_out.id
        );
        assert_eq!(cluster_out.predictor_calls, live_out.predictor_calls);
        assert_eq!(cluster_out.verify_calls, live_out.verify_calls);
    }
    // ...and a bit-identical timing report: same admission boundaries,
    // same priced steps, same clock.
    assert_eq!(report.aggregate(), live.report);
}

/// Same-instant arrivals must be admitted in one batched prefill by the
/// worker exactly as the full-list live loop admits them.
#[test]
fn one_worker_parity_with_simultaneous_arrivals() {
    let seed = 47;
    let parts = trained(seed);
    let mut requests = PoissonArrivals::new(25.0, 5).requests(&specs(6, 6));
    // Force arrival collisions across admission boundaries.
    let t0 = requests[0].arrival_s;
    requests[1].arrival_s = t0;
    requests[2].arrival_s = t0;
    let t4 = requests[4].arrival_s.max(t0);
    requests[4].arrival_s = t4;
    requests[5].arrival_s = t4;
    for w in requests.windows(2) {
        assert!(w[0].arrival_s <= w[1].arrival_s);
    }
    let batcher = ContinuousBatcher::new(batcher_config(2));
    let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
        2,
        16,
        N_LAYERS,
        parts.0.clone(),
        parts.1.clone(),
        parts.2.clone(),
    );
    let live = batcher.run_live(&requests, &mut engine, |r| seq_parts(seed, r.id));
    let report = run_cluster(1, 2, RouterPolicy::RoundRobin, &parts, seed, &requests);
    assert_eq!(report.aggregate(), live.report);
}

/// Parity must also hold under the shortest-job-first admission policy
/// (the worker reuses the exact pick the replay/live loops use).
#[test]
fn one_worker_parity_under_sjf_admission() {
    let seed = 53;
    let parts = trained(seed);
    let mut spec_list = specs(6, 6);
    for (i, s) in spec_list.iter_mut().enumerate() {
        s.1 = if i % 2 == 0 { 10 } else { 4 };
    }
    let requests = PoissonArrivals::new(40.0, 9).requests(&spec_list);
    let batcher =
        ContinuousBatcher::with_policy(batcher_config(2), AdmissionPolicy::ShortestJobFirst);
    let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
        2,
        16,
        N_LAYERS,
        parts.0.clone(),
        parts.1.clone(),
        parts.2.clone(),
    );
    let live = batcher.run_live(&requests, &mut engine, |r| seq_parts(seed, r.id));

    let config = ClusterConfig {
        admission: AdmissionPolicy::ShortestJobFirst,
        ..cluster_config(1, 2)
    };
    let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
        &config,
        RouterPolicy::RoundRobin.build(),
        &parts.0,
        &parts.1,
        &parts.2,
        factory(seed),
    );
    for req in &requests {
        cluster.submit(ClusterRequest::new(req.clone()));
    }
    let report = cluster.drain();
    assert_eq!(report.aggregate(), live.report);
}

/// More workers, same workload: everything completes, every sequence's
/// tokens are what it decodes anywhere (batching and routing change
/// timing, never values), and the parallel makespan shrinks.
#[test]
fn multi_worker_cluster_completes_and_scales() {
    let seed = 61;
    let parts = trained(seed);
    let requests = PoissonArrivals::new(80.0, 11).requests(&specs(10, 8));
    let one = run_cluster(1, 2, RouterPolicy::RoundRobin, &parts, seed, &requests);
    let two = run_cluster(2, 2, RouterPolicy::RoundRobin, &parts, seed, &requests);
    let four = run_cluster(4, 2, RouterPolicy::ShortestQueue, &parts, seed, &requests);
    for report in [&one, &two, &four] {
        assert_eq!(report.completed(), requests.len());
        assert!(report.not_completed().is_empty());
    }
    // Values are identical across deployments.
    for (a, b) in one.outputs().iter().zip(two.outputs()) {
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.exit_layers, b.exit_layers);
    }
    for (a, b) in one.outputs().iter().zip(four.outputs()) {
        assert_eq!(a.tokens, b.tokens);
    }
    // Parallel workers shorten the saturated burst.
    let t1 = one.stats().throughput_tok_s;
    let t2 = two.stats().throughput_tok_s;
    let t4 = four.stats().throughput_tok_s;
    assert!(t2 > t1, "2 workers {t2} vs 1 worker {t1}");
    assert!(t4 > t2, "4 workers {t4} vs 2 workers {t2}");
    // Two runs of the same configuration agree bit-for-bit (the frontier
    // protocol removes thread-scheduling nondeterminism).
    let again = run_cluster(2, 2, RouterPolicy::RoundRobin, &parts, seed, &requests);
    assert_eq!(again.aggregate(), two.aggregate());
}

/// A deliberately poisoned request fails only its own worker; the other
/// worker's requests complete and the report records the damage instead
/// of the run hanging.
#[test]
fn poisoned_request_is_contained_to_its_worker() {
    let seed = 67;
    let parts = trained(seed);
    let requests = PoissonArrivals::new(50.0, 13).requests(&specs(6, 6));
    let poisoned: u64 = 2;
    let make_seq: specee_cluster::SeqFactory<SyntheticLm, OracleDraft> =
        Arc::new(move |req: &ClusterRequest| {
            assert!(
                req.request.id != poisoned,
                "poisoned request {poisoned} reached the factory"
            );
            seq_parts(seed, req.request.id)
        });
    let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
        &cluster_config(2, 2),
        RouterPolicy::RoundRobin.build(),
        &parts.0,
        &parts.1,
        &parts.2,
        make_seq,
    );
    for req in &requests {
        cluster.submit(ClusterRequest::new(req.clone()));
    }
    let report = cluster.drain();

    // Round-robin sends even ids to worker 0 until it fails on the
    // poison; worker 1 then absorbs the rest of the traffic untouched.
    let failures = report.failures();
    assert_eq!(failures.len(), 1, "exactly one worker failed");
    assert_eq!(failures[0].0, 0);
    assert!(failures[0].1.contains("poisoned"), "msg: {}", failures[0].1);
    assert!(report.workers[0].failed.contains(&poisoned));
    assert!(report.workers[1].panic.is_none());
    assert!(report.workers[1].failed.is_empty());
    assert!(
        report.workers[1].report.completions.len() >= 3,
        "worker 1 serves its own traffic plus the failed-over remainder"
    );
    for c in &report.workers[1].report.completions {
        assert_eq!(c.tokens, 6);
    }
    // Every request is accounted for exactly once.
    let mut accounted: Vec<u64> = report
        .aggregate()
        .completions
        .iter()
        .map(|c| c.id)
        .collect();
    accounted.extend(report.not_completed());
    accounted.sort_unstable();
    assert_eq!(accounted, (0..requests.len() as u64).collect::<Vec<_>>());
}

/// A queued request whose absolute deadline passes before a slot frees is
/// dropped and reported, not decoded.
#[test]
fn expired_deadline_cancels_queued_request() {
    let seed = 71;
    let parts = trained(seed);
    // One long job hogs the single slot; the second request's deadline
    // expires while it waits.
    let requests = [
        ServeRequest {
            id: 0,
            prompt: vec![1, 2, 3],
            gen_len: 24,
            arrival_s: 0.0,
        },
        ServeRequest {
            id: 1,
            prompt: vec![2, 3, 4],
            gen_len: 4,
            arrival_s: 1e-4,
        },
    ];
    let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
        &cluster_config(1, 1),
        RouterPolicy::RoundRobin.build(),
        &parts.0,
        &parts.1,
        &parts.2,
        factory(seed),
    );
    cluster.submit(ClusterRequest::new(requests[0].clone()));
    cluster.submit(ClusterRequest::new(requests[1].clone()).with_deadline(2e-4));
    let report = cluster.drain();
    assert_eq!(report.completed(), 1);
    assert_eq!(report.aggregate().completions[0].id, 0);
    assert_eq!(report.workers[0].timed_out, vec![1]);

    // The same workload with a generous deadline completes both.
    let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
        &cluster_config(1, 1),
        RouterPolicy::RoundRobin.build(),
        &parts.0,
        &parts.1,
        &parts.2,
        factory(seed),
    );
    cluster.submit(ClusterRequest::new(requests[0].clone()));
    cluster.submit(ClusterRequest::new(requests[1].clone()).with_deadline(1e9));
    let report = cluster.drain();
    assert_eq!(report.completed(), 2);
    assert!(report.workers[0].timed_out.is_empty());
}

/// Cancellation drops a queued request outright and retires a mid-decode
/// sequence with its partial output.
#[test]
fn cancellation_queued_and_mid_decode() {
    let seed = 73;
    let parts = trained(seed);
    let long = ServeRequest {
        id: 0,
        prompt: vec![1, 2, 3],
        gen_len: 24,
        arrival_s: 0.0,
    };
    let queued = ServeRequest {
        id: 1,
        prompt: vec![2, 3, 4],
        gen_len: 6,
        arrival_s: 1e-4,
    };
    let later = ServeRequest {
        id: 2,
        prompt: vec![3, 4, 5],
        gen_len: 6,
        arrival_s: 0.05,
    };
    let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
        &cluster_config(1, 1),
        RouterPolicy::RoundRobin.build(),
        &parts.0,
        &parts.1,
        &parts.2,
        factory(seed),
    );
    cluster.submit(ClusterRequest::new(long.clone()));
    cluster.submit(ClusterRequest::new(queued.clone()));
    assert!(cluster.cancel(1), "queued request is known");
    // The `later` arrival advances the worker mid-decode of request 0;
    // cancelling 0 afterwards retires it with a partial output.
    cluster.submit(ClusterRequest::new(later.clone()));
    assert!(cluster.cancel(0));
    assert!(!cluster.cancel(99), "unknown id");
    let report = cluster.drain();
    assert_eq!(report.completed(), 1);
    assert_eq!(report.aggregate().completions[0].id, 2);
    let mut cancelled = report.workers[0].cancelled.clone();
    cancelled.sort_unstable();
    assert_eq!(cancelled, vec![0, 1]);
    let outputs = report.outputs();
    // Request 0's partial output: decoding started but was cut short.
    let partial = outputs.iter().find(|o| o.id == 0).expect("partial output");
    assert!(!partial.tokens.is_empty());
    assert!(partial.tokens.len() < 24, "cancelled before finishing");
    // Request 1 never decoded: no output at all.
    assert!(!outputs.iter().any(|o| o.id == 1));
}

/// Zero-length requests complete at admission with an empty output, as in
/// live mode.
#[test]
fn zero_gen_len_completes_at_admission() {
    let seed = 79;
    let parts = trained(seed);
    let mut requests = PoissonArrivals::new(10.0, 3).requests(&specs(3, 6));
    requests[1].gen_len = 0;
    let report = run_cluster(2, 2, RouterPolicy::ShortestQueue, &parts, seed, &requests);
    assert_eq!(report.completed(), 3);
    let outputs = report.outputs();
    assert_eq!(outputs.len(), 3);
    assert!(outputs[1].tokens.is_empty());
    let completion = &report.aggregate().completions[1];
    assert_eq!(completion.tokens, 0);
    assert_eq!(completion.first_token_s, completion.finish_s);
}

/// Exit-aware routing with per-class hints packs a skewed workload by
/// depth far better than round-robin does: on an SSDD arrival pattern
/// (the adversarial case for round-robin at two workers) round-robin
/// mixes every batch, while exit-aware keeps each worker's residents
/// predominantly one class.
#[test]
fn exit_aware_routing_segregates_skewed_traffic() {
    let seed = 83;
    let parts = trained(seed);
    let requests = PoissonArrivals::new(100.0, 17).requests(&specs(8, 6));
    // SSDD pattern: shallow, shallow, deep, deep, repeating.
    let hint_of = |i: usize| if (i / 2) % 2 == 0 { 2.0 } else { 8.0 };

    let route_all = |policy: RouterPolicy| {
        let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
            &cluster_config(2, 2),
            policy.build(),
            &parts.0,
            &parts.1,
            &parts.2,
            factory(seed),
        );
        let mut assignments = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            let w = cluster
                .submit(ClusterRequest::new(req.clone()).with_exit_hint(hint_of(i)))
                .expect("routable");
            assignments.push((hint_of(i), w));
        }
        (cluster.drain(), assignments)
    };
    // Minority-class residents per worker: 0 = perfect segregation.
    let mixing = |assignments: &[(f64, usize)]| -> usize {
        (0..2)
            .map(|w| {
                let shallow = assignments
                    .iter()
                    .filter(|(h, aw)| *aw == w && *h < 5.0)
                    .count();
                let deep = assignments
                    .iter()
                    .filter(|(h, aw)| *aw == w && *h > 5.0)
                    .count();
                shallow.min(deep)
            })
            .sum()
    };

    let (ea_report, ea_assignments) = route_all(RouterPolicy::ExitAware);
    let (rr_report, rr_assignments) = route_all(RouterPolicy::RoundRobin);
    assert_eq!(ea_report.completed(), requests.len());
    assert_eq!(rr_report.completed(), requests.len());
    let (ea_mix, rr_mix) = (mixing(&ea_assignments), mixing(&rr_assignments));
    assert_eq!(rr_mix, 4, "SSDD round-robin mixes every pair");
    assert!(
        ea_mix < rr_mix,
        "exit-aware mixing {ea_mix} should beat round-robin {rr_mix}: {ea_assignments:?}"
    );
    // Determinism: re-routing the same workload reproduces the decisions.
    let (_, again) = route_all(RouterPolicy::ExitAware);
    assert_eq!(again, ea_assignments);
}

/// Cross-worker gossip actually transfers per-class controller state:
/// with round-robin splitting two tagged classes across two workers,
/// each worker ends the run with state for the class it never decoded —
/// warmed purely by the coordinator's evidence broadcasts — while a
/// gossip-off run leaves each worker knowing only its own class.
#[test]
fn gossip_warms_classes_a_worker_never_served() {
    use specee_core::TrafficClass;
    let seed = 89;
    let parts = trained(seed);
    // Slow arrivals so workers decode (and accumulate evidence) between
    // sync points.
    let requests = PoissonArrivals::new(12.0, 9).requests(&specs(8, 8));
    let (class_a, class_b) = (TrafficClass::new(1), TrafficClass::new(2));
    let run = |gossip: bool| {
        let config = ClusterConfig {
            controller: specee_control::ControllerPolicy::pid(),
            gossip,
            ..cluster_config(2, 2)
        };
        let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
            &config,
            RouterPolicy::RoundRobin.build(),
            &parts.0,
            &parts.1,
            &parts.2,
            factory(seed),
        );
        for (i, req) in requests.iter().enumerate() {
            // Round-robin: even indices land on worker 0 (class A), odd
            // on worker 1 (class B).
            let class = if i % 2 == 0 { class_a } else { class_b };
            cluster.submit(ClusterRequest::new(req.clone()).with_class(class));
        }
        cluster.drain()
    };
    let with = run(true);
    let without = run(false);
    for report in [&with, &without] {
        assert_eq!(report.completed(), requests.len());
    }
    let classes_of = |report: &specee_cluster::ClusterReport, w: usize| -> Vec<TrafficClass> {
        report.workers[w].classes.iter().map(|c| c.class).collect()
    };
    // Without gossip each worker knows only the class it decoded...
    assert_eq!(classes_of(&without, 0), vec![class_a]);
    assert_eq!(classes_of(&without, 1), vec![class_b]);
    // ...with gossip both workers carry both classes' controller state.
    assert_eq!(classes_of(&with, 0), vec![class_a, class_b]);
    assert_eq!(classes_of(&with, 1), vec![class_a, class_b]);
    // The warmed class has an operating point but no locally decoded
    // requests on the worker that never served it.
    let warmed = with.workers[0]
        .classes
        .iter()
        .find(|c| c.class == class_b)
        .expect("warmed class");
    assert_eq!(warmed.requests, 0);
    assert!(warmed.mean_threshold.is_some());
    // Cluster-wide breakdown merges both workers' rows exactly.
    let breakdown = with.class_breakdown();
    assert_eq!(
        breakdown.iter().map(|c| c.class).collect::<Vec<_>>(),
        vec![class_a, class_b]
    );
    assert_eq!(breakdown.iter().map(|c| c.requests).sum::<usize>(), 8);
    // Token values never move with gossip (thresholds steer *future*
    // scans; greedy decode per sequence is threshold-independent).
    for (a, b) in with.outputs().iter().zip(without.outputs()) {
        assert_eq!(a.tokens, b.tokens);
    }
}

/// Gossip with the static policy is inert: evidence flows but absorb is
/// a no-op, so a gossip-on static run is bit-identical to gossip-off.
#[test]
fn static_gossip_is_bit_identical_to_no_gossip() {
    let seed = 97;
    let parts = trained(seed);
    let requests = PoissonArrivals::new(40.0, 11).requests(&specs(8, 6));
    let run = |gossip: bool| {
        let config = ClusterConfig {
            gossip,
            ..cluster_config(2, 2)
        };
        let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
            &config,
            RouterPolicy::RoundRobin.build(),
            &parts.0,
            &parts.1,
            &parts.2,
            factory(seed),
        );
        for req in &requests {
            cluster.submit(ClusterRequest::new(req.clone()).with_exit_hint(4.0));
        }
        cluster.drain()
    };
    let (on, off) = (run(true), run(false));
    assert_eq!(on.aggregate(), off.aggregate());
    for (a, b) in on.workers.iter().zip(&off.workers) {
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.classes, b.classes);
    }
}

/// The gossip determinism bar: merged posteriors (and everything else a
/// gossiping adaptive cluster produces) are bit-identical across two
/// executions — per-class controller summaries included.
#[test]
fn gossiped_posteriors_are_bit_identical_across_executions() {
    use specee_core::TrafficClass;
    let seed = 59;
    let parts = trained(seed);
    let requests = PoissonArrivals::new(15.0, 13).requests(&specs(8, 8));
    let run = |policy: specee_control::ControllerPolicy| {
        let config = ClusterConfig {
            controller: policy,
            gossip: true,
            ..cluster_config(2, 2)
        };
        let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
            &config,
            RouterPolicy::RoundRobin.build(),
            &parts.0,
            &parts.1,
            &parts.2,
            factory(seed),
        );
        for (i, req) in requests.iter().enumerate() {
            let class = TrafficClass::new(1 + (i % 2) as u16);
            cluster.submit(ClusterRequest::new(req.clone()).with_class(class));
        }
        cluster.drain()
    };
    for policy in [
        specee_control::ControllerPolicy::pid(),
        specee_control::ControllerPolicy::bandit(),
    ] {
        let a = run(policy.clone());
        let b = run(policy.clone());
        for (wa, wb) in a.workers.iter().zip(&b.workers) {
            assert_eq!(wa.outputs, wb.outputs, "{}", policy.name());
            assert_eq!(wa.report.completions, wb.report.completions);
            assert_eq!(
                wa.classes,
                wb.classes,
                "{}: per-class state (gossip-merged posteriors included) \
                 must be bit-identical across executions",
                policy.name()
            );
            // Gossip genuinely ran: every worker carries both classes.
            assert_eq!(wa.classes.len(), 2, "{}", policy.name());
        }
    }
}

/// Adaptive controller state rides the arrival-frontier protocol: a
/// cluster run with per-worker PID (or bandit) controllers is a pure
/// function of the workload — two identical runs produce identical
/// completions, outputs, and controller operating points, despite real
/// worker threads adapting thresholds mid-flight.
#[test]
fn adaptive_controllers_stay_deterministic_across_runs() {
    let seed = 53;
    let parts = trained(seed);
    let requests = PoissonArrivals::new(18.0, 9).requests(&specs(8, 8));
    let run = |policy: specee_control::ControllerPolicy| {
        let config = ClusterConfig {
            controller: policy,
            ..cluster_config(2, 2)
        };
        let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
            &config,
            RouterPolicy::RoundRobin.build(),
            &parts.0,
            &parts.1,
            &parts.2,
            factory(seed),
        );
        for req in &requests {
            cluster.submit(ClusterRequest::new(req.clone()));
        }
        cluster.drain()
    };
    for policy in [
        specee_control::ControllerPolicy::pid(),
        specee_control::ControllerPolicy::bandit(),
    ] {
        let a = run(policy.clone());
        let b = run(policy.clone());
        assert_eq!(a.completed(), requests.len(), "{}", policy.name());
        for (wa, wb) in a.workers.iter().zip(&b.workers) {
            assert_eq!(
                wa.report.completions,
                wb.report.completions,
                "{}: completions must be identical across runs",
                policy.name()
            );
            assert_eq!(
                wa.outputs,
                wb.outputs,
                "{}: decoded outputs must be identical across runs",
                policy.name()
            );
            let (ca, cb) = (
                wa.controller.as_ref().expect("controller attached"),
                wb.controller.as_ref().expect("controller attached"),
            );
            assert_eq!(ca, cb, "{}: controller trajectories", policy.name());
            assert_eq!(ca.policy, policy.name());
            assert!(
                ca.accepts + ca.rejects > 0,
                "{}: the run should exercise the verifier",
                policy.name()
            );
        }
    }
}

/// Tracing must be a pure observer: a traced 3-worker run is bit-identical
/// to the untraced run (tokens, exit layers, per-worker reports), and the
/// captured stream exports to a Chrome trace that re-parses with one lane
/// per worker plus the coordinator's routing lane.
#[test]
fn traced_cluster_run_is_bit_identical_and_exports() {
    use specee_obs::{EventKind, COORDINATOR_LANE};

    let seed = 61;
    let parts = trained(seed);
    let requests = PoissonArrivals::new(25.0, 17).requests(&specs(9, 8));
    let run = |trace: bool| {
        let config = ClusterConfig {
            trace,
            controller: specee_control::ControllerPolicy::pid(),
            ..cluster_config(3, 2)
        };
        let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
            &config,
            RouterPolicy::ExitAware.build(),
            &parts.0,
            &parts.1,
            &parts.2,
            factory(seed),
        );
        for req in &requests {
            cluster.submit(ClusterRequest::new(req.clone()).with_exit_hint(4.0));
        }
        cluster.drain()
    };

    let plain = run(false);
    let traced = run(true);
    assert!(plain.failures().is_empty() && traced.failures().is_empty());

    // Bit-identity: recording must never feed back into the simulation.
    assert!(plain.events.is_empty(), "untraced runs carry no events");
    assert_eq!(plain.aggregate(), traced.aggregate());
    for (p, t) in plain.workers.iter().zip(&traced.workers) {
        assert_eq!(p.report, t.report, "worker {} timing report", p.worker);
        for (po, to) in p.outputs.iter().zip(&t.outputs) {
            assert_eq!(po.tokens, to.tokens, "request {}", po.id);
            assert_eq!(po.exit_layers, to.exit_layers, "request {}", po.id);
        }
    }

    // The merged stream is clock-ordered and the coordinator logged one
    // routing decision per request, scored over every live worker.
    assert!(traced.events.windows(2).all(|w| w[0].t <= w[1].t));
    let routes: Vec<_> = traced
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Routing {
                policy,
                chosen,
                scores,
                ..
            } => {
                assert_eq!(e.worker, COORDINATOR_LANE);
                assert_eq!(*policy, "exit-aware");
                Some((*chosen, scores.clone()))
            }
            _ => None,
        })
        .collect();
    assert_eq!(routes.len(), requests.len());
    for (chosen, scores) in &routes {
        assert_eq!(scores.len(), 3, "one score per live worker");
        assert!(scores.iter().any(|(w, _)| w == chosen));
    }

    // Every decode token that exited early shows up as an accepted
    // exit-decision instant (prompt slot 0 never exits; layer == N_LAYERS
    // means the token rode the full depth).
    let early_exits: usize = traced
        .outputs()
        .iter()
        .map(|o| {
            o.exit_layers
                .iter()
                .skip(1)
                .filter(|&&l| l < N_LAYERS)
                .count()
        })
        .sum();
    let accepted = traced
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ExitDecision { accepted, .. } if accepted))
        .count();
    assert!(early_exits > 0, "the run should exercise early exit");
    assert_eq!(accepted, early_exits);

    // The Chrome export re-parses with the vendored serde_json and lays
    // out one lane per worker plus the coordinator lane.
    let json = specee_obs::chrome_trace_json(&traced.events);
    let doc: serde::Value = serde_json::from_str(&json).expect("chrome trace re-parses");
    let lanes = specee_obs::lanes_of(&doc).expect("traceEvents present");
    assert_eq!(lanes.len(), 4, "3 worker lanes + coordinator");

    // The metadata records name every lane for Perfetto: pid 0 is the
    // "specee" process, and each tid carries its human-readable name.
    let serde::Value::Seq(records) = doc.get("traceEvents").expect("traceEvents present") else {
        panic!("traceEvents must be an array");
    };
    let metas: Vec<(String, String)> = records
        .iter()
        .filter(|r| matches!(r.get("ph"), Some(serde::Value::Str(ph)) if ph == "M"))
        .filter_map(|r| {
            let (Some(serde::Value::Str(name)), Some(serde::Value::Str(value))) =
                (r.get("name"), r.get("args").and_then(|a| a.get("name")))
            else {
                return None;
            };
            Some((name.clone(), value.clone()))
        })
        .collect();
    assert!(
        metas.contains(&("process_name".to_string(), "specee".to_string())),
        "process_name metadata: {metas:?}"
    );
    for lane in ["worker-0", "worker-1", "worker-2", "coordinator"] {
        assert!(
            metas.contains(&("thread_name".to_string(), lane.to_string())),
            "lane {lane} must be named: {metas:?}"
        );
    }

    // And the metrics snapshot agrees with the report's own counts.
    let reg = traced.metrics(None);
    assert_eq!(
        reg.counter("specee_requests_total") as usize,
        traced.completed()
    );
    assert_eq!(
        reg.counter("specee_steps_total") as u64,
        traced.aggregate().steps
    );
}

/// The memory-plane parity bar: a one-worker cluster running with a page
/// capacity, preemption and priority lanes reproduces
/// `ContinuousBatcher::run_live_laned` on an identically configured
/// engine exactly — same preempt/resume sequence, same token streams,
/// same priced clock — and the run genuinely preempts.
#[test]
fn one_worker_parity_with_lanes_and_preemption() {
    use specee_core::Lane;
    let seed = 103;
    let parts = trained(seed);
    let requests = PoissonArrivals::new(30.0, 21).requests(&specs(6, 20));
    let lanes: Vec<Lane> = (0..requests.len())
        .map(|i| Lane::new((i % 3) as u8))
        .collect();

    let batcher = ContinuousBatcher::new(batcher_config(3));
    let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
        3,
        16,
        N_LAYERS,
        parts.0.clone(),
        parts.1.clone(),
        parts.2.clone(),
    );
    engine.set_page_capacity(Some(4));
    engine.set_preemption_enabled(true);
    let live = batcher.run_live_laned(&requests, &lanes, true, &mut engine, |r| {
        seq_parts(seed, r.id)
    });
    assert!(engine.preemptions() > 0, "the capped run must preempt");

    let config = ClusterConfig {
        page_capacity: Some(4),
        preemption: true,
        ..cluster_config(1, 3)
    };
    let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
        &config,
        RouterPolicy::RoundRobin.build(),
        &parts.0,
        &parts.1,
        &parts.2,
        factory(seed),
    );
    for (req, lane) in requests.iter().zip(&lanes) {
        cluster.submit(ClusterRequest::new(req.clone()).with_lane(*lane));
    }
    let report = cluster.drain();
    assert!(report.failures().is_empty());
    assert_eq!(report.preemptions(), engine.preemptions());
    assert_eq!(report.resumes(), engine.resumes());
    let outputs = report.outputs();
    assert_eq!(outputs.len(), live.outputs.len());
    for (cluster_out, live_out) in outputs.iter().zip(&live.outputs) {
        assert_eq!(cluster_out.id, live_out.id);
        assert_eq!(
            cluster_out.tokens, live_out.tokens,
            "request {}",
            live_out.id
        );
        assert_eq!(
            cluster_out.exit_layers, live_out.exit_layers,
            "request {}",
            live_out.id
        );
    }
    assert_eq!(report.aggregate(), live.report);
    // Page-pressure accounting surfaces in the worker report.
    assert!(report.kv_pages_peak() <= 4, "cap respected");
    assert_eq!(report.workers[0].kv.capacity, Some(4));
}

/// Online SLO tracking and trace sampling are pure observers at the
/// cluster tier too: a run with an (impossibly tight, hence firing) SLO
/// is bit-identical whether its workers record through sampled recorders
/// or not at all, the fired transitions land on the worker lanes, and
/// the sampling drops are counted into the metrics export.
#[test]
fn slo_tracked_sampled_cluster_run_is_bit_identical() {
    use specee_obs::{EventKind, SloSpec};
    let seed = 101;
    let parts = trained(seed);
    let requests = PoissonArrivals::new(60.0, 19).requests(&specs(10, 8));
    let run = |trace: bool| {
        let config = ClusterConfig {
            trace,
            trace_sample: if trace { 2 } else { 1 },
            slo: Some(SloSpec::parse("p99_ttft=0.001").expect("valid spec")),
            controller: specee_control::ControllerPolicy::Static.slo_adaptive(),
            ..cluster_config(2, 2)
        };
        let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
            &config,
            RouterPolicy::RoundRobin.build(),
            &parts.0,
            &parts.1,
            &parts.2,
            factory(seed),
        );
        for req in &requests {
            cluster.submit(ClusterRequest::new(req.clone()));
        }
        cluster.drain()
    };
    let plain = run(false);
    let traced = run(true);
    assert!(plain.failures().is_empty() && traced.failures().is_empty());
    assert_eq!(plain.aggregate(), traced.aggregate());
    for (p, t) in plain.workers.iter().zip(&traced.workers) {
        assert_eq!(p.report, t.report, "worker {} timing report", p.worker);
        assert_eq!(p.outputs, t.outputs, "worker {} outputs", p.worker);
        assert_eq!(p.controller, t.controller, "worker {} controller", p.worker);
        assert_eq!(
            p.controller.as_ref().map(|c| c.policy),
            Some("slo+static"),
            "the SLO wrapper must ride the cluster controller"
        );
    }
    // The impossible target fires on the worker lanes, and the burn bent
    // real behavior: pressure pushed the wrapped static controller off
    // its base operating point at some step boundary.
    assert!(
        traced
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SloFired { .. })),
        "the impossible target must fire in the trace"
    );
    // Sampling genuinely dropped events, only on the traced run, and the
    // drop count surfaces in the Prometheus-facing registry.
    let dropped: u64 = traced.workers.iter().map(|w| w.dropped_events).sum();
    assert!(dropped > 0, "1-in-2 sampling must drop events");
    assert_eq!(
        plain.workers.iter().map(|w| w.dropped_events).sum::<u64>(),
        0,
        "untraced workers drop nothing"
    );
    let reg = traced.metrics(None);
    assert_eq!(
        reg.counter("specee_trace_dropped_events_total") as u64,
        dropped
    );
}
