//! Batch-amortized step pricing.
//!
//! Single-stream runs price a recorded [`specee_metrics::Meter`] trace.
//! A served batch cannot reuse that path directly because the dominant
//! decode cost — streaming layer weights from HBM — is paid **once per
//! step for the whole batch**, not once per sequence. This module prices
//! one decode step analytically from [`CostDims`]: each layer that at
//! least one slot executes charges its weight bytes once, while FLOPs,
//! KV traffic and activations scale with the number of slots running it.

use specee_metrics::{FrameworkProfile, HardwareProfile, Roofline};
use specee_model::CostDims;

/// Bytes per cached element (f16 KV cache and activations).
const F16: f64 = 2.0;

/// What one decode step executed, aggregated over the batch.
#[derive(Debug, Clone, PartialEq)]
pub struct StepSpec {
    /// `layer_runners[l]` = number of slots that executed layer `l`.
    pub layer_runners: Vec<usize>,
    /// Context length (KV positions attended) per active slot.
    pub ctx_lens: Vec<usize>,
    /// Full-LM-head evaluations this step (final logits + verifications).
    pub lm_head_evals: f64,
    /// Slots that ran the speculative draft model this step.
    pub draft_slots: usize,
    /// Slots that self-drafted through the target's own shallow layers
    /// this step. Their shallow runs are already in `layer_runners`
    /// (they share the target's weights — the point of the mode), so a
    /// self-draft slot only adds the tied LM-head expansion reads, never
    /// a second weight stream.
    pub self_draft_slots: usize,
    /// Exit-predictor invocations this step (includes the candidate-slice
    /// GEMV each invocation needs).
    pub predictor_calls: f64,
}

/// Analytic per-step cost model over full-scale dimensions.
///
/// # Examples
///
/// ```
/// use specee_metrics::{FrameworkProfile, HardwareProfile};
/// use specee_model::CostDims;
/// use specee_serve::cost::{StepCostModel, StepSpec};
///
/// let model = StepCostModel::new(
///     CostDims::llama2_7b(),
///     HardwareProfile::a100_80g(),
///     FrameworkProfile::vllm(),
/// );
/// let solo = model.decode_step_latency(&StepSpec {
///     layer_runners: vec![1; 32],
///     ctx_lens: vec![256],
///     lm_head_evals: 1.0,
///     draft_slots: 0,
///     self_draft_slots: 0,
///     predictor_calls: 0.0,
/// });
/// assert!(solo > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct StepCostModel {
    cost: CostDims,
    roofline: Roofline,
    per_step_overhead_s: f64,
    /// Exit-predictor parameter count (paper: 2-layer MLP, 12 → 512 → 1).
    predictor_params: f64,
    /// Draft candidates per proposal (K; columns of the LM-head slice).
    spec_k: usize,
}

impl StepCostModel {
    /// Builds the model for one (dims, device, framework) combination.
    pub fn new(cost: CostDims, hw: HardwareProfile, fw: FrameworkProfile) -> Self {
        let per_step_overhead_s = fw.per_step_overhead_s;
        StepCostModel {
            cost,
            roofline: Roofline::with_framework(hw, fw),
            per_step_overhead_s,
            predictor_params: (12 * 512 + 512 + 512 + 1) as f64,
            spec_k: 4,
        }
    }

    /// Overrides the predictor parameter count (design-space sweeps).
    pub fn with_predictor_params(mut self, params: f64) -> Self {
        self.predictor_params = params;
        self
    }

    /// The cost dimensions being priced.
    pub fn dims(&self) -> &CostDims {
        &self.cost
    }

    /// Weight elements of one decoder layer.
    fn layer_weight_elems(&self) -> f64 {
        let h = self.cost.hidden_dim as f64;
        let kv = self.cost.kv_dim() as f64;
        h * h * 2.0 + h * kv * 2.0 + 3.0 * h * self.cost.ffn_dim as f64 + 2.0 * h
    }

    /// Weight bytes of one decoder layer at the configured precision.
    pub fn layer_weight_bytes(&self) -> f64 {
        self.layer_weight_elems() * self.cost.weight_bytes_per_elem()
    }

    /// LM-head weight bytes (vocab × hidden).
    pub fn lm_head_bytes(&self) -> f64 {
        self.cost.vocab_size as f64
            * self.cost.hidden_dim as f64
            * self.cost.weight_bytes_per_elem()
    }

    /// KV-cache bytes of one token position in one layer.
    fn kv_bytes_per_layer_token(&self) -> f64 {
        2.0 * self.cost.kv_dim() as f64 * F16
    }

    /// Prices one decode step of the batch.
    ///
    /// # Panics
    ///
    /// Panics if `layer_runners` does not cover the model's layers.
    pub fn decode_step_latency(&self, spec: &StepSpec) -> f64 {
        assert_eq!(
            spec.layer_runners.len(),
            self.cost.n_layers,
            "one runner count per layer"
        );
        let h = self.cost.hidden_dim as f64;
        let layer_elems = self.layer_weight_elems();
        let total_ctx: f64 = spec.ctx_lens.iter().map(|&c| c as f64).sum();

        let mut flops = 0.0;
        let mut bytes = 0.0;
        let mut kernels = 0u64;

        for &runners in &spec.layer_runners {
            if runners == 0 {
                continue;
            }
            let b = runners as f64;
            // Weights stream once for the whole batch.
            bytes += self.layer_weight_bytes();
            // GEMV FLOPs and KV traffic scale per slot. Context is averaged
            // over the batch: slots executing this layer attend their own
            // KV, approximated by the batch-mean context.
            let mean_ctx = total_ctx / spec.ctx_lens.len().max(1) as f64;
            flops += b * (2.0 * layer_elems + 4.0 * self.cost.kv_dim() as f64 * mean_ctx);
            bytes += b
                * (mean_ctx * self.kv_bytes_per_layer_token()   // KV read
                    + self.kv_bytes_per_layer_token()           // KV write
                    + 2.0 * h * F16); // hidden-state traffic
            kernels += 7;
        }

        if spec.lm_head_evals > 0.0 {
            bytes += self.lm_head_bytes();
            flops +=
                spec.lm_head_evals * 2.0 * self.lm_head_bytes() / self.cost.weight_bytes_per_elem();
            kernels += 1;
        }

        if spec.draft_slots > 0 {
            // The paper sizes the DLM at roughly one decoder layer (§5.1).
            bytes += self.layer_weight_bytes();
            flops += spec.draft_slots as f64 * 2.0 * layer_elems;
            kernels += 7;
        }

        if spec.self_draft_slots > 0 {
            // Self-draft shares the target's weights: the shallow draft
            // runs are already counted in `layer_runners`, and the
            // LM-head weights stream with the verification reads — so
            // the only marginal cost is the tied-head expansion FLOPs.
            flops += spec.self_draft_slots as f64 * 2.0 * self.lm_head_bytes()
                / self.cost.weight_bytes_per_elem();
            kernels += 1;
        }

        if spec.predictor_calls > 0.0 {
            // MLP weights are shared; candidate-slice GEMV per call.
            bytes += self.predictor_params * F16
                + spec.predictor_calls * self.spec_k as f64 * h * self.cost.weight_bytes_per_elem();
            flops +=
                spec.predictor_calls * (2.0 * self.predictor_params + 2.0 * self.spec_k as f64 * h);
            kernels += 2;
        }

        self.roofline.op_latency(flops, bytes, kernels) + self.per_step_overhead_s
    }

    /// Prices a batched prefill over the admitted prompts.
    ///
    /// Weights stream once; FLOPs and KV writes scale with total prompt
    /// tokens; attention is quadratic per prompt.
    pub fn prefill_latency(&self, prompt_lens: &[usize]) -> f64 {
        if prompt_lens.is_empty() {
            return 0.0;
        }
        let layer_elems = self.layer_weight_elems();
        let total: f64 = prompt_lens.iter().map(|&p| p as f64).sum();
        let quad: f64 = prompt_lens.iter().map(|&p| (p * p) as f64).sum();
        let n_layers = self.cost.n_layers as f64;

        let mut bytes = n_layers * self.layer_weight_bytes() + self.lm_head_bytes();
        bytes += total * self.cost.kv_bytes_per_token();
        let mut flops = n_layers * total * 2.0 * layer_elems;
        flops += n_layers * 2.0 * quad * self.cost.kv_dim() as f64;
        flops += prompt_lens.len() as f64 * 2.0 * self.lm_head_bytes()
            / self.cost.weight_bytes_per_elem();

        let kernels = self.cost.n_layers as u64 * 7 + 1;
        self.roofline.op_latency(flops, bytes, kernels) + self.per_step_overhead_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> StepCostModel {
        StepCostModel::new(
            CostDims::llama2_7b(),
            HardwareProfile::a100_80g(),
            FrameworkProfile::vllm(),
        )
    }

    fn dense_step(batch: usize, ctx: usize) -> StepSpec {
        StepSpec {
            layer_runners: vec![batch; 32],
            ctx_lens: vec![ctx; batch],
            lm_head_evals: batch as f64,
            draft_slots: 0,
            self_draft_slots: 0,
            predictor_calls: 0.0,
        }
    }

    #[test]
    fn batching_amortizes_weight_reads() {
        let m = model();
        let one = m.decode_step_latency(&dense_step(1, 128));
        let eight = m.decode_step_latency(&dense_step(8, 128));
        // 8 sequences in one step cost far less than 8 separate steps...
        assert!(eight < 8.0 * one * 0.5, "eight {eight} vs one {one}");
        // ...but more than a single-sequence step.
        assert!(eight > one);
    }

    #[test]
    fn skipped_layers_save_weight_bytes_only_when_unanimous() {
        let m = model();
        let full = m.decode_step_latency(&dense_step(2, 64));
        // Both slots exit at layer 16: the last 16 layers stream nothing.
        let mut spec = dense_step(2, 64);
        for l in 16..32 {
            spec.layer_runners[l] = 0;
        }
        let both_exit = m.decode_step_latency(&spec);
        // Only one slot exits: weights still stream for all 32 layers.
        let mut spec = dense_step(2, 64);
        for l in 16..32 {
            spec.layer_runners[l] = 1;
        }
        let one_exits = m.decode_step_latency(&spec);
        assert!(both_exit < one_exits);
        assert!(one_exits < full);
        // The unanimous exit saves much more than the solo exit: decode is
        // memory-bound, so halving weight traffic nearly halves the step.
        assert!((full - both_exit) > 3.0 * (full - one_exits));
    }

    #[test]
    fn longer_context_costs_more() {
        let m = model();
        let short = m.decode_step_latency(&dense_step(1, 64));
        let long = m.decode_step_latency(&dense_step(1, 2048));
        assert!(long > short);
    }

    #[test]
    fn specee_overheads_are_priced() {
        let m = model();
        let mut spec = dense_step(1, 64);
        let base = m.decode_step_latency(&spec);
        spec.draft_slots = 1;
        spec.predictor_calls = 10.0;
        spec.lm_head_evals = 2.0; // one failed verification
        let with = m.decode_step_latency(&spec);
        assert!(with > base);
        // Overheads stay a modest fraction of a full step (§7.4.4).
        assert!(with < base * 1.25, "with {with} base {base}");
    }

    #[test]
    fn self_draft_prices_strictly_cheaper_than_a_separate_draft() {
        // The perf claim of the mode, priced: at equal layer work, a
        // self-draft slot (tied-head expansion FLOPs only) must cost
        // strictly less than a separate-draft slot (which streams its
        // own draft-network weights every step).
        let m = model();
        let mut separate = dense_step(4, 256);
        separate.draft_slots = 4;
        let mut selfd = dense_step(4, 256);
        selfd.self_draft_slots = 4;
        let sep = m.decode_step_latency(&separate);
        let slf = m.decode_step_latency(&selfd);
        assert!(slf < sep, "self {slf} vs separate {sep}");
        // And it is not free: the expansion reads are priced.
        let base = m.decode_step_latency(&dense_step(4, 256));
        assert!(slf > base);
    }

    #[test]
    fn prefill_scales_with_prompt_tokens() {
        let m = model();
        let small = m.prefill_latency(&[32]);
        let large = m.prefill_latency(&[512]);
        assert!(large > small);
        assert_eq!(m.prefill_latency(&[]), 0.0);
        // Batched prefill beats sequential prefills.
        let batched = m.prefill_latency(&[128, 128]);
        assert!(batched < 2.0 * m.prefill_latency(&[128]));
    }

    #[test]
    #[should_panic(expected = "one runner count per layer")]
    fn runner_vector_must_match_depth() {
        let m = model();
        let _ = m.decode_step_latency(&StepSpec {
            layer_runners: vec![1; 8],
            ctx_lens: vec![10],
            lm_head_evals: 1.0,
            draft_slots: 0,
            self_draft_slots: 0,
            predictor_calls: 0.0,
        });
    }
}
