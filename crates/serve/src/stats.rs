//! Aggregate serving statistics.

use serde::{Deserialize, Serialize};
use specee_core::TrafficClass;

use crate::batcher::ServeReport;

/// Latency/throughput summary of a served run.
///
/// The time-to-first-token (TTFT) family measures *queue wait*: the gap
/// from a request's arrival to its first available token (queueing plus
/// prefill). Tail behaviour is reported at p50/p95/p99 for both queue
/// wait and end-to-end latency, because mean figures hide exactly the
/// stragglers that batched early exit (the Cannikin effect) and routing
/// policies act on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests completed.
    pub requests: usize,
    /// Total decoded tokens.
    pub tokens: usize,
    /// Decode throughput over the makespan, tokens per second.
    pub throughput_tok_s: f64,
    /// Mean time to first token (queue wait + prefill), seconds.
    pub mean_ttft_s: f64,
    /// Median time to first token, seconds.
    pub p50_ttft_s: f64,
    /// 95th-percentile time to first token, seconds.
    pub p95_ttft_s: f64,
    /// 99th-percentile time to first token, seconds.
    pub p99_ttft_s: f64,
    /// Mean time per output token, seconds.
    pub mean_tpot_s: f64,
    /// Mean end-to-end request latency, seconds.
    pub mean_latency_s: f64,
    /// Median end-to-end latency, seconds.
    pub p50_latency_s: f64,
    /// 95th-percentile end-to-end latency, seconds.
    pub p95_latency_s: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub p99_latency_s: f64,
    /// Mean batch occupancy over decode steps.
    pub avg_occupancy: f64,
}

/// One traffic class's slice of a served run — the per-class breakdown
/// the class-keyed feedback plane reports next to the aggregate
/// [`ServeStats`].
///
/// Rows are produced wherever sequences carry a
/// [`TrafficClass`] (the cluster runtime derives one per request at
/// admission) and merge across workers by exact token-weighted sums, so
/// a cluster-wide breakdown is as trustworthy as a single engine's.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// The traffic class the row describes.
    pub class: TrafficClass,
    /// Requests decoded under the class (completed plus cancelled
    /// partials that produced output).
    pub requests: usize,
    /// Decode tokens emitted for the class (prefill tokens excluded).
    pub tokens: u64,
    /// Total decoder layers those tokens executed (the numerator of
    /// [`ClassStats::mean_layers`], kept so rows merge exactly).
    pub layer_sum: f64,
    /// Mean exit threshold the class's controller held at the end of the
    /// run (`None` without a controller).
    pub mean_threshold: Option<f64>,
}

impl ClassStats {
    /// An empty row for `class`.
    pub fn empty(class: TrafficClass) -> Self {
        ClassStats {
            class,
            requests: 0,
            tokens: 0,
            layer_sum: 0.0,
            mean_threshold: None,
        }
    }

    /// Mean executed layers per decode token (`None` before any token).
    pub fn mean_layers(&self) -> Option<f64> {
        (self.tokens > 0).then(|| self.layer_sum / self.tokens as f64)
    }

    /// Folds `other` (same class) into `self`: counts and layer sums add
    /// exactly; the controller operating point merges token-weighted.
    ///
    /// # Panics
    ///
    /// Panics if the classes differ.
    pub fn merge(&mut self, other: &ClassStats) {
        assert_eq!(self.class, other.class, "merge is per class");
        self.requests += other.requests;
        self.layer_sum += other.layer_sum;
        self.mean_threshold = match (self.mean_threshold, other.mean_threshold) {
            (Some(a), Some(b)) => {
                let (wa, wb) = (self.tokens as f64, other.tokens as f64);
                Some(if wa + wb > 0.0 {
                    (a * wa + b * wb) / (wa + wb)
                } else {
                    (a + b) / 2.0
                })
            }
            (a, b) => a.or(b),
        };
        self.tokens += other.tokens;
    }
}

// One nearest-rank quantile rule for the whole workspace: the ladders
// here and `specee_obs::Histogram::quantile` share `specee_obs`'s
// implementation, so the stats report and the metrics export can never
// disagree about what "p95" means.
pub use specee_obs::{percentile, percentile_sorted};

impl ServeStats {
    /// Summarizes a batcher report.
    pub fn from_report(report: &ServeReport) -> Self {
        let n = report.completions.len();
        let tokens: usize = report.completions.iter().map(|c| c.tokens).sum();
        let mut ttfts: Vec<f64> = report.completions.iter().map(|c| c.ttft_s()).collect();
        let mut latencies: Vec<f64> = report.completions.iter().map(|c| c.latency_s()).collect();
        let tpots: Vec<f64> = report.completions.iter().map(|c| c.tpot_s()).collect();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let (mean_ttft_s, mean_latency_s) = (mean(&ttfts), mean(&latencies));
        // One sort per metric serves its whole percentile ladder.
        ttfts.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN latencies"));
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN latencies"));
        ServeStats {
            requests: n,
            tokens,
            throughput_tok_s: if report.makespan_s > 0.0 {
                tokens as f64 / report.makespan_s
            } else {
                0.0
            },
            mean_ttft_s,
            p50_ttft_s: percentile_sorted(&ttfts, 0.50),
            p95_ttft_s: percentile_sorted(&ttfts, 0.95),
            p99_ttft_s: percentile_sorted(&ttfts, 0.99),
            mean_tpot_s: mean(&tpots),
            mean_latency_s,
            p50_latency_s: percentile_sorted(&latencies, 0.50),
            p95_latency_s: percentile_sorted(&latencies, 0.95),
            p99_latency_s: percentile_sorted(&latencies, 0.99),
            avg_occupancy: report.avg_occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Completion;

    #[test]
    fn percentile_nearest_rank() {
        let v = [4.0, 1.0, 3.0, 2.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.95), 5.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_empty_is_zero_at_every_quantile() {
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[], q), 0.0, "q = {q}");
        }
    }

    #[test]
    fn percentile_single_element_is_that_element() {
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(percentile(&[7.5], q), 7.5, "q = {q}");
        }
    }

    #[test]
    fn percentile_extreme_quantiles_are_min_and_max() {
        // q = 0 clamps to rank 1 (the minimum); q = 1 is the maximum —
        // on any input ordering.
        let v = [9.0, 2.0, 7.0, 2.0, 11.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 2.0);
        assert_eq!(percentile(&v, 1.0), 11.0);
    }

    #[test]
    fn percentile_sorts_unsorted_input() {
        // Reversed, shuffled and sorted inputs must agree everywhere.
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let reversed = [7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        let shuffled = [4.0, 7.0, 1.0, 6.0, 3.0, 5.0, 2.0];
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let expect = percentile(&sorted, q);
            assert_eq!(percentile(&reversed, q), expect, "reversed, q = {q}");
            assert_eq!(percentile(&shuffled, q), expect, "shuffled, q = {q}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn percentile_validates_q_above_one() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn percentile_validates_negative_q() {
        let _ = percentile(&[1.0], -0.01);
    }

    #[test]
    fn class_stats_merge_exactly() {
        let c = TrafficClass::new(2);
        let mut a = ClassStats {
            class: c,
            requests: 2,
            tokens: 10,
            layer_sum: 40.0,
            mean_threshold: Some(0.4),
        };
        let b = ClassStats {
            class: c,
            requests: 1,
            tokens: 30,
            layer_sum: 60.0,
            mean_threshold: Some(0.8),
        };
        a.merge(&b);
        assert_eq!(a.requests, 3);
        assert_eq!(a.tokens, 40);
        assert!((a.mean_layers().unwrap() - 2.5).abs() < 1e-12);
        // Token-weighted operating point: (0.4*10 + 0.8*30) / 40 = 0.7.
        assert!((a.mean_threshold.unwrap() - 0.7).abs() < 1e-12);
        // Missing thresholds fall back to whichever side has one.
        let mut x = ClassStats::empty(c);
        x.merge(&b);
        assert_eq!(x.mean_threshold, Some(0.8));
        assert_eq!(x.mean_layers(), Some(2.0));
        assert_eq!(ClassStats::empty(c).mean_layers(), None);
    }

    #[test]
    #[should_panic(expected = "per class")]
    fn class_stats_merge_rejects_cross_class() {
        let mut a = ClassStats::empty(TrafficClass::new(1));
        a.merge(&ClassStats::empty(TrafficClass::new(2)));
    }

    #[test]
    fn stats_from_report() {
        let report = ServeReport {
            completions: vec![
                Completion {
                    id: 0,
                    arrival_s: 0.0,
                    first_token_s: 0.1,
                    finish_s: 1.1,
                    tokens: 11,
                },
                Completion {
                    id: 1,
                    arrival_s: 0.5,
                    first_token_s: 0.7,
                    finish_s: 1.7,
                    tokens: 11,
                },
            ],
            makespan_s: 2.0,
            steps: 20,
            avg_occupancy: 1.6,
            avg_layers: 32.0,
        };
        let s = report.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.tokens, 22);
        assert!((s.throughput_tok_s - 11.0).abs() < 1e-12);
        assert!((s.mean_ttft_s - 0.15).abs() < 1e-12);
        assert!((s.mean_tpot_s - 0.1).abs() < 1e-12);
        assert!((s.mean_latency_s - ((1.1 + 1.2) / 2.0)).abs() < 1e-12);
        assert_eq!(s.avg_occupancy, 1.6);
        // Tails on a two-sample report: p50 is the lower rank, p95/p99 the
        // upper, and the ladder is monotone.
        assert!((s.p50_ttft_s - 0.1).abs() < 1e-12);
        assert!((s.p99_ttft_s - 0.2).abs() < 1e-12);
        assert!((s.p50_latency_s - 1.1).abs() < 1e-12);
        assert!((s.p99_latency_s - 1.2).abs() < 1e-12);
        assert!(s.p50_latency_s <= s.p95_latency_s);
        assert!(s.p95_latency_s <= s.p99_latency_s);
    }
}
