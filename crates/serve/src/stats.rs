//! Aggregate serving statistics.

use serde::{Deserialize, Serialize};

use crate::batcher::ServeReport;

/// Latency/throughput summary of a served run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests completed.
    pub requests: usize,
    /// Total decoded tokens.
    pub tokens: usize,
    /// Decode throughput over the makespan, tokens per second.
    pub throughput_tok_s: f64,
    /// Mean time to first token, seconds.
    pub mean_ttft_s: f64,
    /// 95th-percentile time to first token, seconds.
    pub p95_ttft_s: f64,
    /// Mean time per output token, seconds.
    pub mean_tpot_s: f64,
    /// Mean end-to-end request latency, seconds.
    pub mean_latency_s: f64,
    /// 95th-percentile end-to-end latency, seconds.
    pub p95_latency_s: f64,
    /// Mean batch occupancy over decode steps.
    pub avg_occupancy: f64,
}

/// Nearest-rank percentile (`q` in `[0, 1]`) of an unsorted sample.
///
/// Returns zero for an empty sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN latencies"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl ServeStats {
    /// Summarizes a batcher report.
    pub fn from_report(report: &ServeReport) -> Self {
        let n = report.completions.len();
        let tokens: usize = report.completions.iter().map(|c| c.tokens).sum();
        let ttfts: Vec<f64> = report.completions.iter().map(|c| c.ttft_s()).collect();
        let latencies: Vec<f64> = report.completions.iter().map(|c| c.latency_s()).collect();
        let tpots: Vec<f64> = report.completions.iter().map(|c| c.tpot_s()).collect();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        ServeStats {
            requests: n,
            tokens,
            throughput_tok_s: if report.makespan_s > 0.0 {
                tokens as f64 / report.makespan_s
            } else {
                0.0
            },
            mean_ttft_s: mean(&ttfts),
            p95_ttft_s: percentile(&ttfts, 0.95),
            mean_tpot_s: mean(&tpots),
            mean_latency_s: mean(&latencies),
            p95_latency_s: percentile(&latencies, 0.95),
            avg_occupancy: report.avg_occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Completion;

    #[test]
    fn percentile_nearest_rank() {
        let v = [4.0, 1.0, 3.0, 2.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.95), 5.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn percentile_validates_q() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    fn stats_from_report() {
        let report = ServeReport {
            completions: vec![
                Completion {
                    id: 0,
                    arrival_s: 0.0,
                    first_token_s: 0.1,
                    finish_s: 1.1,
                    tokens: 11,
                },
                Completion {
                    id: 1,
                    arrival_s: 0.5,
                    first_token_s: 0.7,
                    finish_s: 1.7,
                    tokens: 11,
                },
            ],
            makespan_s: 2.0,
            steps: 20,
            avg_occupancy: 1.6,
            avg_layers: 32.0,
        };
        let s = report.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.tokens, 22);
        assert!((s.throughput_tok_s - 11.0).abs() < 1e-12);
        assert!((s.mean_ttft_s - 0.15).abs() < 1e-12);
        assert!((s.mean_tpot_s - 0.1).abs() < 1e-12);
        assert!((s.mean_latency_s - ((1.1 + 1.2) / 2.0)).abs() < 1e-12);
        assert_eq!(s.avg_occupancy, 1.6);
    }
}
