//! Serving requests, arrivals and completions.

use serde::{Deserialize, Serialize};
use specee_model::TokenId;
use specee_tensor::rng::Pcg;

/// One request entering the serving queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-visible id (position in the submission order).
    pub id: u64,
    /// Prompt tokens.
    pub prompt: Vec<TokenId>,
    /// Tokens to decode.
    pub gen_len: usize,
    /// Arrival time in seconds from simulation start.
    pub arrival_s: f64,
}

/// A finished request with its timing milestones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// Request id.
    pub id: u64,
    /// Arrival time (copied from the request).
    pub arrival_s: f64,
    /// Time the first token was available.
    pub first_token_s: f64,
    /// Time the last token was available.
    pub finish_s: f64,
    /// Number of decoded tokens.
    pub tokens: usize,
}

impl Completion {
    /// Time to first token (queueing + prefill).
    pub fn ttft_s(&self) -> f64 {
        self.first_token_s - self.arrival_s
    }

    /// Mean time per output token over the decode phase.
    pub fn tpot_s(&self) -> f64 {
        if self.tokens <= 1 {
            0.0
        } else {
            (self.finish_s - self.first_token_s) / (self.tokens - 1) as f64
        }
    }

    /// End-to-end request latency.
    pub fn latency_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }
}

/// A deterministic Poisson arrival process.
///
/// # Examples
///
/// ```
/// use specee_serve::PoissonArrivals;
///
/// let times: Vec<f64> = PoissonArrivals::new(10.0, 3).take(100).collect();
/// assert_eq!(times.len(), 100);
/// assert!(times.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_per_s: f64,
    rng: Pcg,
    now: f64,
}

impl PoissonArrivals {
    /// Creates a process with `rate_per_s` expected arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    pub fn new(rate_per_s: f64, seed: u64) -> Self {
        assert!(
            rate_per_s > 0.0 && rate_per_s.is_finite(),
            "arrival rate must be positive"
        );
        PoissonArrivals {
            rate_per_s,
            rng: Pcg::seed_stream(seed, 0xa881),
            now: 0.0,
        }
    }

    /// Stamps arrival times onto `(prompt, gen_len)` pairs in order.
    pub fn requests(mut self, specs: &[(Vec<TokenId>, usize)]) -> Vec<ServeRequest> {
        specs
            .iter()
            .enumerate()
            .map(|(i, (prompt, gen_len))| ServeRequest {
                id: i as u64,
                prompt: prompt.clone(),
                gen_len: *gen_len,
                arrival_s: self.next().expect("infinite process"),
            })
            .collect()
    }
}

impl Iterator for PoissonArrivals {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        // Exponential inter-arrival via inverse CDF; (1 - u) avoids ln(0).
        let u = self.rng.next_f64();
        self.now += -(1.0 - u).ln() / self.rate_per_s;
        Some(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_timings() {
        let c = Completion {
            id: 0,
            arrival_s: 1.0,
            first_token_s: 1.5,
            finish_s: 3.5,
            tokens: 5,
        };
        assert!((c.ttft_s() - 0.5).abs() < 1e-12);
        assert!((c.tpot_s() - 0.5).abs() < 1e-12);
        assert!((c.latency_s() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_token_completion_has_zero_tpot() {
        let c = Completion {
            id: 0,
            arrival_s: 0.0,
            first_token_s: 0.1,
            finish_s: 0.1,
            tokens: 1,
        };
        assert_eq!(c.tpot_s(), 0.0);
    }

    #[test]
    fn poisson_is_deterministic_and_monotone() {
        let a: Vec<f64> = PoissonArrivals::new(5.0, 7).take(50).collect();
        let b: Vec<f64> = PoissonArrivals::new(5.0, 7).take(50).collect();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn poisson_rate_is_approximately_honoured() {
        let n = 4000;
        let times: Vec<f64> = PoissonArrivals::new(8.0, 13).take(n).collect();
        let rate = n as f64 / times.last().unwrap();
        assert!((rate - 8.0).abs() < 0.8, "measured rate {rate}");
    }

    #[test]
    fn requests_are_stamped_in_order() {
        let reqs = PoissonArrivals::new(2.0, 3).requests(&[
            (vec![1, 2], 4),
            (vec![3], 2),
            (vec![4, 5, 6], 1),
        ]);
        assert_eq!(reqs.len(), 3);
        assert!(reqs.windows(2).all(|w| w[0].arrival_s < w[1].arrival_s));
        assert_eq!(reqs[2].id, 2);
        assert_eq!(reqs[0].gen_len, 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = PoissonArrivals::new(0.0, 1);
    }
}
