//! Recorded per-request execution traces.
//!
//! A trace captures everything the batcher needs to replay a request's
//! timing: the decoded tokens, the layer each token exited at, and the
//! SpecEE overhead call counts. Traces are recorded by running the real
//! engines once per request, so a served token is always a genuinely
//! computed token.

use serde::{Deserialize, Serialize};
use specee_core::GenOutput;
use specee_model::TokenId;

/// The replayable execution record of one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Decoded tokens.
    pub tokens: Vec<TokenId>,
    /// Exit layer of each token (`n_layers` when no early exit fired).
    pub exit_layers: Vec<usize>,
    /// Mean predictor invocations per decoded token.
    pub predictor_calls_per_token: f64,
    /// Mean full-LM-head verification calls per decoded token.
    pub verify_calls_per_token: f64,
    /// Whether the trace came from a SpecEE engine (prices draft + predictor
    /// overhead during replay).
    pub speculative: bool,
}

impl RequestTrace {
    /// A dense trace: every token runs all `n_layers` layers, no SpecEE
    /// overhead.
    pub fn dense(tokens: Vec<TokenId>, n_layers: usize) -> Self {
        let exit_layers = vec![n_layers; tokens.len()];
        RequestTrace {
            tokens,
            exit_layers,
            predictor_calls_per_token: 0.0,
            verify_calls_per_token: 0.0,
            speculative: false,
        }
    }

    /// Builds a trace from an engine's [`GenOutput`].
    ///
    /// `speculative` marks SpecEE runs so the replay prices the draft model
    /// and predictor calls the engine actually performed.
    ///
    /// # Panics
    ///
    /// Panics if the output's token and exit-layer streams disagree in
    /// length.
    pub fn from_output(output: &GenOutput, speculative: bool) -> Self {
        assert_eq!(
            output.tokens.len(),
            output.exit_layers.len(),
            "malformed GenOutput"
        );
        let n = output.tokens.len().max(1) as f64;
        RequestTrace {
            tokens: output.tokens.clone(),
            exit_layers: output.exit_layers.clone(),
            predictor_calls_per_token: output.predictor_calls as f64 / n,
            verify_calls_per_token: output.verify_calls as f64 / n,
            speculative,
        }
    }

    /// Number of decoded tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Mean exit layer across the trace.
    pub fn avg_exit_layer(&self) -> f64 {
        if self.exit_layers.is_empty() {
            0.0
        } else {
            self.exit_layers.iter().sum::<usize>() as f64 / self.exit_layers.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_trace_runs_all_layers() {
        let t = RequestTrace::dense(vec![1, 2, 3], 32);
        assert_eq!(t.exit_layers, vec![32, 32, 32]);
        assert_eq!(t.avg_exit_layer(), 32.0);
        assert!(!t.speculative);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn from_output_computes_per_token_rates() {
        let out = GenOutput {
            tokens: vec![4, 5, 6, 7],
            exit_layers: vec![32, 20, 24, 22],
            ce_sum: 0.0,
            meter: specee_metrics::Meter::new(),
            predictor_calls: 8,
            verify_calls: 4,
            rounds: 0,
            draft_calls: 0,
            self_draft_calls: 0,
        };
        let t = RequestTrace::from_output(&out, true);
        assert_eq!(t.predictor_calls_per_token, 2.0);
        assert_eq!(t.verify_calls_per_token, 1.0);
        assert!(t.speculative);
        assert!((t.avg_exit_layer() - 24.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn mismatched_output_rejected() {
        let out = GenOutput {
            tokens: vec![1, 2],
            exit_layers: vec![32],
            ce_sum: 0.0,
            meter: specee_metrics::Meter::new(),
            predictor_calls: 0,
            verify_calls: 0,
            rounds: 0,
            draft_calls: 0,
            self_draft_calls: 0,
        };
        let _ = RequestTrace::from_output(&out, false);
    }

    #[test]
    fn empty_trace() {
        let t = RequestTrace::dense(vec![], 8);
        assert!(t.is_empty());
        assert_eq!(t.avg_exit_layer(), 0.0);
    }
}
