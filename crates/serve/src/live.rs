//! The live execution mode: genuine lock-step batched decoding behind the
//! same admission loop, clock and reporting as the replay simulator.
//!
//! Where [`crate::batcher::ContinuousBatcher::run`] replays recorded
//! traces, [`ContinuousBatcher::run_live`] admits each request into a
//! [`BatchedEngine`] slot and *generates* its tokens: every decode step
//! sweeps the real layer stack once for the whole batch, every sequence
//! runs its own scheduled predictors, and the step's
//! [`specee_batch::BatchStep`]
//! measurements — per-layer runner counts, context lengths, draft /
//! predictor / LM-head calls — are priced with the same
//! [`crate::cost::StepCostModel`] the replay path uses. Both modes
//! produce a [`ServeReport`], so their speedup curves are directly
//! comparable.

use specee_batch::{Admission, BatchedEngine, BatchedOutput};
use specee_draft::SpeculativeSource;
use specee_model::LayeredLm;
use specee_obs::{EventKind, SloTracker};

use crate::batcher::{pick_pending_laned, ContinuousBatcher, ServeReport};
use crate::cost::StepSpec;
use crate::request::{Completion, ServeRequest};

/// Result of a live served run: the shared timing report plus the
/// genuinely decoded per-request outputs (in request order).
#[derive(Debug, Clone)]
pub struct LiveOutcome {
    /// Timing/occupancy report, same shape as the replay simulator's.
    pub report: ServeReport,
    /// Decoded token streams, exit layers and call counts, one entry per
    /// request in request order (empty streams for `gen_len == 0`
    /// requests, which complete at admission without decoding).
    pub outputs: Vec<BatchedOutput>,
}

impl ContinuousBatcher {
    /// Serves `requests` by live batched decoding on `engine`.
    ///
    /// `make_seq` builds the per-sequence model and draft for a request at
    /// admission time (each engine slot owns its sequence's KV state).
    /// Admission follows the batcher's policy exactly as in replay mode;
    /// prefill is priced as one batched forward at admission, decode steps
    /// are priced from the engine's measured [`specee_batch::BatchStep`].
    ///
    /// When a [`specee_obs::Recorder`] is attached to the engine
    /// (`engine.set_recorder(..)`), the loop keeps its simulated clock
    /// stamped on it and records admissions, priced decode steps and
    /// request-completion spans next to the engine's own exit-decision
    /// events; retrieve the stream afterwards with
    /// `engine.take_recorder()`. Recording never feeds back into the
    /// simulation, so a traced run is bit-identical to an untraced one.
    ///
    /// When the batcher carries an SLO specification
    /// ([`with_slo`](ContinuousBatcher::with_slo)), the loop additionally
    /// drives a [`SloTracker`] on the same simulated clock: admission
    /// TTFTs and verifier accept/reject outcomes feed its rolling
    /// windows, burn-rate alerts are evaluated at every clock advance,
    /// fired/cleared transitions are recorded as
    /// [`EventKind::SloFired`]/[`EventKind::SloCleared`] instants (when a
    /// recorder is attached), and the tracker's pressure signal is pushed
    /// into the engine's controller. The tracker runs *independently* of
    /// the recorder, so attaching or detaching tracing never changes the
    /// pressure the controller sees — traced and untraced runs stay
    /// bit-identical even while an SLO burns.
    ///
    /// # Panics
    ///
    /// Panics if the engine's batch cap or layer depth disagrees with the
    /// batcher configuration, the engine is not empty, or arrivals are not
    /// sorted.
    pub fn run_live<M, D, F>(
        &self,
        requests: &[ServeRequest],
        engine: &mut BatchedEngine<M, D>,
        make_seq: F,
    ) -> LiveOutcome
    where
        M: LayeredLm,
        D: SpeculativeSource,
        F: FnMut(&ServeRequest) -> (M, D),
    {
        self.run_live_laned(requests, &[], false, engine, make_seq)
    }

    /// [`run_live`](Self::run_live) with the paged-KV memory plane
    /// engaged: per-request priority lanes and optional preemption under
    /// page pressure.
    ///
    /// `lanes[i]` is request `i`'s priority lane (lower = higher
    /// priority); an empty slice means every request rides the default
    /// lane, which makes this method bit-identical to
    /// [`run_live`](Self::run_live). Admission always drains the
    /// highest-priority lane present first, with the batcher's policy
    /// ordering requests within a lane; each admission is additionally
    /// gated on the engine's page pool covering the prompt. With
    /// `preempt` set (and preemption enabled on the engine), an
    /// admission that does not fit evicts strictly lower-priority
    /// residents via [`BatchedEngine::make_room`]; the engine re-seats
    /// parked sequences, bit-identically, as pages free up.
    ///
    /// # Panics
    ///
    /// Panics like [`run_live`](Self::run_live), if `lanes` is non-empty
    /// but shorter than `requests`, or if a request's prompt can never
    /// fit the engine's page capacity.
    pub fn run_live_laned<M, D, F>(
        &self,
        requests: &[ServeRequest],
        lanes: &[specee_core::Lane],
        preempt: bool,
        engine: &mut BatchedEngine<M, D>,
        mut make_seq: F,
    ) -> LiveOutcome
    where
        M: LayeredLm,
        D: SpeculativeSource,
        F: FnMut(&ServeRequest) -> (M, D),
    {
        assert!(
            lanes.is_empty() || lanes.len() >= requests.len(),
            "one lane per request (or none at all)"
        );
        assert_eq!(
            engine.max_batch(),
            self.config.max_batch,
            "engine batch cap must match the batcher's"
        );
        assert_eq!(
            engine.n_layers(),
            self.config.cost.n_layers,
            "engine depth must match the priced dims"
        );
        assert_eq!(engine.occupancy(), 0, "engine must start empty");
        assert!(
            requests
                .windows(2)
                .all(|w| w[0].arrival_s <= w[1].arrival_s),
            "requests must be sorted by arrival"
        );

        /// Evaluates the burn-rate alerts at a clock advance, records any
        /// fired/cleared transitions, and pushes the pressure signal into
        /// the engine's controller. Measurement is recorder-independent:
        /// only the *transition instants* touch the recorder.
        fn slo_tick<M, D>(slo: &mut Option<SloTracker>, engine: &mut BatchedEngine<M, D>, now: f64)
        where
            M: LayeredLm,
            D: SpeculativeSource,
        {
            let Some(tracker) = slo.as_mut() else {
                return;
            };
            for kind in tracker.evaluate(now) {
                if let Some(rec) = engine.recorder_mut() {
                    rec.record_at(now, None, kind);
                }
            }
            engine.set_slo_pressure(tracker.pressure());
        }

        let mut slo = self.slo.clone().map(SloTracker::new);
        let mut now = 0.0f64;
        let mut next_arrival = 0usize;
        let mut pending: Vec<usize> = Vec::new();
        let mut completions: Vec<Completion> = Vec::with_capacity(requests.len());
        let mut outputs: Vec<BatchedOutput> = Vec::with_capacity(requests.len());
        let mut first_token_s = vec![0.0f64; requests.len()];
        let mut steps = 0u64;
        let mut occupancy_sum = 0.0f64;
        let mut layer_sum = 0.0f64;
        let mut token_sum = 0u64;

        while completions.len() < requests.len() {
            while next_arrival < requests.len() && requests[next_arrival].arrival_s <= now {
                pending.push(next_arrival);
                next_arrival += 1;
            }
            let mut admitted: Vec<usize> = Vec::new();
            let mut pages_left = engine.pool().available_pages();
            while !pending.is_empty() {
                let pick = pick_pending_laned(self.policy, &pending, requests, lanes);
                let i = pending[pick];
                let lane = lanes.get(i).copied().unwrap_or_default();
                let need = if requests[i].gen_len == 0 {
                    0
                } else {
                    engine.pages_for_admit(&requests[i].prompt)
                };
                let fits = engine.occupancy() + admitted.len() < self.config.max_batch
                    && need <= pages_left;
                if !fits {
                    // Slot- or page-gated: evict strictly lower-priority
                    // residents (freeing both), but only before this
                    // round reserved anything of its own.
                    if !(preempt
                        && admitted.is_empty()
                        && engine.make_room(&requests[i].prompt, lane))
                    {
                        assert!(
                            engine.occupancy() > 0 || engine.parked() > 0 || !admitted.is_empty(),
                            "page capacity too small to admit request {}",
                            requests[i].id
                        );
                        break;
                    }
                    pages_left = engine.pool().available_pages();
                }
                pages_left = pages_left.saturating_sub(need);
                admitted.push(pending.remove(pick));
            }
            if !admitted.is_empty() {
                if let Some(rec) = engine.recorder_mut() {
                    let depth = pending.len() as u32;
                    for &i in &admitted {
                        rec.record_at(
                            now,
                            Some(requests[i].id),
                            EventKind::Admission {
                                request: requests[i].id,
                                queue_depth: depth,
                            },
                        );
                    }
                }
                let lens: Vec<usize> = admitted.iter().map(|&i| requests[i].prompt.len()).collect();
                now += self.model.prefill_latency(&lens);
                // Keep the engine's recorder on the simulated clock so the
                // exit decisions its admissions/steps emit are stamped in
                // simulated seconds.
                if let Some(rec) = engine.recorder_mut() {
                    rec.set_clock(now);
                }
                for &i in &admitted {
                    let req = &requests[i];
                    first_token_s[i] = now;
                    if let Some(t) = slo.as_mut() {
                        t.observe_ttft(now, now - req.arrival_s);
                    }
                    if req.gen_len == 0 {
                        completions.push(Completion {
                            id: req.id,
                            arrival_s: req.arrival_s,
                            first_token_s: now,
                            finish_s: now,
                            tokens: 0,
                        });
                        if let Some(rec) = engine.recorder_mut() {
                            rec.record_at(
                                now,
                                Some(req.id),
                                EventKind::Request {
                                    request: req.id,
                                    arrival_s: req.arrival_s,
                                    first_token_s: now,
                                    finish_s: now,
                                    tokens: 0,
                                },
                            );
                        }
                        // Keep one output per request so callers can zip
                        // outputs with requests positionally.
                        outputs.push(BatchedOutput {
                            id: i as u64,
                            class: specee_core::TrafficClass::DEFAULT,
                            tokens: Vec::new(),
                            exit_layers: Vec::new(),
                            ce_sum: 0.0,
                            predictor_calls: 0,
                            verify_calls: 0,
                            draft_calls: 0,
                            self_draft_calls: 0,
                        });
                        continue;
                    }
                    let (model, draft) = make_seq(req);
                    let lane = lanes.get(i).copied().unwrap_or_default();
                    match engine.admit_laned(
                        i as u64,
                        specee_core::TrafficClass::DEFAULT,
                        lane,
                        model,
                        draft,
                        &req.prompt,
                        req.gen_len,
                    ) {
                        Admission::Done(out) => {
                            completions.push(Completion {
                                id: req.id,
                                arrival_s: req.arrival_s,
                                first_token_s: now,
                                finish_s: now,
                                tokens: out.tokens.len(),
                            });
                            if let Some(rec) = engine.recorder_mut() {
                                rec.record_at(
                                    now,
                                    Some(req.id),
                                    EventKind::Request {
                                        request: req.id,
                                        arrival_s: req.arrival_s,
                                        first_token_s: now,
                                        finish_s: now,
                                        tokens: out.tokens.len() as u32,
                                    },
                                );
                            }
                            outputs.push(out);
                        }
                        Admission::Seated { .. } => {}
                    }
                }
                slo_tick(&mut slo, engine, now);
                continue;
            }

            if engine.occupancy() == 0 && engine.parked() == 0 {
                if next_arrival < requests.len() {
                    now = now.max(requests[next_arrival].arrival_s);
                    // Idle time drains the rolling windows, so a burn
                    // can clear between bursts.
                    slo_tick(&mut slo, engine, now);
                    continue;
                }
                break;
            }

            // One genuinely executed, synchronized decode step.
            if let Some(rec) = engine.recorder_mut() {
                rec.set_clock(now);
            }
            let step = engine.step();
            let dur = self.model.decode_step_latency(&StepSpec {
                layer_runners: step.layer_runners.clone(),
                ctx_lens: step.ctx_lens.clone(),
                lm_head_evals: step.lm_head_evals as f64,
                draft_slots: step.draft_slots,
                self_draft_slots: step.self_draft_slots,
                predictor_calls: step.predictor_calls as f64,
            });
            if let Some(rec) = engine.recorder_mut() {
                rec.record_at(
                    now,
                    None,
                    EventKind::Step {
                        step: steps,
                        occupancy: step.ctx_lens.len() as u32,
                        layers: step.rearmost_layer() as u32,
                        dur_s: dur,
                    },
                );
            }
            now += dur;
            steps += 1;
            occupancy_sum += step.ctx_lens.len() as f64;
            layer_sum += step.layer_runners.iter().sum::<usize>() as f64;
            token_sum += step.emitted as u64;
            if let Some(t) = slo.as_mut() {
                for fb in &step.feedback {
                    t.observe_exit(now, fb.accepted);
                }
            }
            for out in step.finished {
                let req = &requests[out.id as usize];
                completions.push(Completion {
                    id: req.id,
                    arrival_s: req.arrival_s,
                    first_token_s: first_token_s[out.id as usize],
                    finish_s: now,
                    tokens: out.tokens.len(),
                });
                if let Some(rec) = engine.recorder_mut() {
                    rec.record_at(
                        now,
                        Some(req.id),
                        EventKind::Request {
                            request: req.id,
                            arrival_s: req.arrival_s,
                            first_token_s: first_token_s[out.id as usize],
                            finish_s: now,
                            tokens: out.tokens.len() as u32,
                        },
                    );
                }
                outputs.push(out);
            }
            slo_tick(&mut slo, engine, now);
        }

        completions.sort_by_key(|c| c.id);
        outputs.sort_by_key(|o| o.id);
        LiveOutcome {
            report: ServeReport {
                completions,
                makespan_s: now,
                steps,
                avg_occupancy: if steps > 0 {
                    occupancy_sum / steps as f64
                } else {
                    0.0
                },
                avg_layers: if token_sum > 0 {
                    layer_sum / token_sum as f64
                } else {
                    0.0
                },
            },
            outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatcherConfig;
    use crate::request::PoissonArrivals;
    use crate::trace::RequestTrace;
    use specee_core::collect::{collect_training_data, train_bank};
    use specee_core::engine::SpecEeEngine;
    use specee_core::predictor::{PredictorBank, PredictorConfig};
    use specee_core::{ScheduleEngine, SpecEeConfig};
    use specee_metrics::{FrameworkProfile, HardwareProfile};
    use specee_model::{CostDims, ModelConfig, TokenId};
    use specee_nn::TrainConfig;
    use specee_synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
    use specee_tensor::rng::Pcg;

    const N_LAYERS: usize = 8;

    fn cfg() -> ModelConfig {
        ModelConfig {
            n_layers: N_LAYERS,
            vocab_size: 256,
            ..ModelConfig::tiny()
        }
    }

    /// Cost dims matching the executed depth so live layer_runners line up.
    fn cost_dims() -> CostDims {
        CostDims {
            n_layers: N_LAYERS,
            ..CostDims::llama2_7b()
        }
    }

    fn batcher(max_batch: usize) -> ContinuousBatcher {
        ContinuousBatcher::new(BatcherConfig {
            max_batch,
            hardware: HardwareProfile::a100_80g(),
            framework: FrameworkProfile::vllm(),
            cost: cost_dims(),
        })
    }

    fn build_lm(seed: u64) -> SyntheticLm {
        SyntheticLmBuilder::new(cfg(), DatasetProfile::qa())
            .seed(seed)
            .build()
    }

    fn trained(seed: u64) -> (PredictorBank, ScheduleEngine, SpecEeConfig) {
        let mut lm = build_lm(seed);
        let mut draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed);
        let prompts: Vec<(Vec<TokenId>, usize)> =
            (0..8u32).map(|i| (vec![1 + i, 2 + i], 8usize)).collect();
        let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
        let pcfg = PredictorConfig {
            hidden_dim: 16,
            ..PredictorConfig::default()
        };
        let mut bank = PredictorBank::new(N_LAYERS, &pcfg, &mut Pcg::seed(seed));
        train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), seed);
        let config = SpecEeConfig {
            predictor: pcfg,
            ..SpecEeConfig::default()
        };
        let schedule = config.build_schedule(N_LAYERS, Some(&data.exit_frequencies));
        (bank, schedule, config)
    }

    fn live_engine(
        max_batch: usize,
        parts: &(PredictorBank, ScheduleEngine, SpecEeConfig),
    ) -> BatchedEngine<SyntheticLm, OracleDraft> {
        BatchedEngine::new(
            max_batch,
            16,
            N_LAYERS,
            parts.0.clone(),
            parts.1.clone(),
            parts.2.clone(),
        )
    }

    fn specs(n: usize, gen: usize) -> Vec<(Vec<TokenId>, usize)> {
        (0..n as u32)
            .map(|i| (vec![2 + i, 5 + i, 1 + i], gen))
            .collect()
    }

    #[test]
    fn live_run_completes_every_request_with_ordered_milestones() {
        let seed = 41;
        let parts = trained(seed);
        let requests = PoissonArrivals::new(20.0, 7).requests(&specs(6, 8));
        let b = batcher(3);
        let mut engine = live_engine(3, &parts);
        let outcome = b.run_live(&requests, &mut engine, |r| {
            let lm = build_lm(seed);
            let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed ^ r.id);
            (lm, draft)
        });
        assert_eq!(outcome.report.completions.len(), 6);
        assert_eq!(outcome.outputs.len(), 6);
        for (c, r) in outcome.report.completions.iter().zip(&requests) {
            assert_eq!(c.id, r.id);
            assert!(c.first_token_s >= r.arrival_s);
            assert!(c.finish_s >= c.first_token_s);
            assert_eq!(c.tokens, 8);
        }
        for (o, r) in outcome.outputs.iter().zip(&requests) {
            assert_eq!(o.id, r.id);
            assert_eq!(o.tokens.len(), 8);
        }
        let stats = outcome.report.stats();
        assert!(stats.throughput_tok_s > 0.0);
        assert!(outcome.report.avg_layers <= N_LAYERS as f64);
        assert_eq!(engine.occupancy(), 0);
        assert_eq!(engine.pool().pages_in_use(), 0);
    }

    #[test]
    fn live_tokens_match_replayed_traces_and_timing_is_close() {
        // Record single-stream runs with per-request fresh engines, replay
        // them, and serve the same requests live with identically seeded
        // sequences: greedy decoding is batch-invariant, so the token
        // streams must be identical and the priced curves close (the only
        // differences are per-step vs per-token-average overhead charges).
        let seed = 43;
        let parts = trained(seed);
        let specs = specs(5, 8);
        let mut traces = Vec::new();
        for (i, (p, g)) in specs.iter().enumerate() {
            let lm = build_lm(seed);
            let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed ^ i as u64);
            let mut engine =
                SpecEeEngine::new(lm, draft, parts.0.clone(), parts.1.clone(), parts.2.clone());
            traces.push(RequestTrace::from_output(&engine.generate(p, *g), true));
        }
        let requests = PoissonArrivals::new(30.0, 5).requests(&specs);
        let b = batcher(2);
        let replay = b.run(&requests, &traces);
        let mut engine = live_engine(2, &parts);
        let live = b.run_live(&requests, &mut engine, |r| {
            let lm = build_lm(seed);
            let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed ^ r.id);
            (lm, draft)
        });
        for (out, trace) in live.outputs.iter().zip(&traces) {
            assert_eq!(out.tokens, trace.tokens, "request {}", out.id);
            assert_eq!(out.exit_layers, trace.exit_layers, "request {}", out.id);
        }
        let rel = (live.report.makespan_s - replay.makespan_s).abs() / replay.makespan_s;
        assert!(
            rel < 0.15,
            "live {} vs replay {} ({}%)",
            live.report.makespan_s,
            replay.makespan_s,
            rel * 100.0
        );
        assert!((live.report.avg_layers - replay.avg_layers).abs() < 1e-9);
    }

    #[test]
    fn traced_live_run_is_bit_identical_and_stamps_simulated_seconds() {
        let seed = 59;
        let parts = trained(seed);
        let requests = PoissonArrivals::new(20.0, 11).requests(&specs(6, 8));
        let b = batcher(3);
        let run = |engine: &mut BatchedEngine<SyntheticLm, OracleDraft>| {
            b.run_live(&requests, engine, |r| {
                let lm = build_lm(seed);
                let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed ^ r.id);
                (lm, draft)
            })
        };
        let mut plain_engine = live_engine(3, &parts);
        let plain = run(&mut plain_engine);
        let mut traced_engine = live_engine(3, &parts);
        traced_engine.set_recorder(Some(specee_obs::Recorder::for_worker(0)));
        let traced = run(&mut traced_engine);

        // Tracing must not perturb the simulation in any way.
        assert_eq!(plain.report, traced.report);
        for (a, t) in plain.outputs.iter().zip(&traced.outputs) {
            assert_eq!(a.tokens, t.tokens);
            assert_eq!(a.exit_layers, t.exit_layers);
        }

        let events = traced_engine
            .take_recorder()
            .expect("recorder survives the run")
            .into_events();
        let count =
            |f: fn(&specee_obs::EventKind) -> bool| events.iter().filter(|e| f(&e.kind)).count();
        assert_eq!(count(|k| matches!(k, EventKind::Admission { .. })), 6);
        assert_eq!(count(|k| matches!(k, EventKind::Request { .. })), 6);
        assert_eq!(
            count(|k| matches!(k, EventKind::Step { .. })) as u64,
            traced.report.steps
        );
        // Exit decisions ride the simulated clock the batcher stamps: every
        // accepted decision matches one decoded early exit (the prefill
        // token is emitted without a predictor scan).
        let early: usize = traced
            .outputs
            .iter()
            .map(|o| {
                o.exit_layers
                    .iter()
                    .skip(1)
                    .filter(|&&l| l < N_LAYERS)
                    .count()
            })
            .sum();
        assert_eq!(
            count(|k| matches!(k, EventKind::ExitDecision { accepted: true, .. })),
            early
        );
        assert!(early > 0, "workload must exercise early exits");
        for e in &events {
            assert!(e.t >= 0.0 && e.t <= traced.report.makespan_s + 1e-9);
            assert_eq!(e.worker, 0);
        }
    }

    #[test]
    fn slo_tracked_live_run_is_bit_identical_with_sampling_and_budget() {
        // An impossible TTFT target fires mid-run and pushes real
        // pressure into an slo+static controller — and even then a run
        // traced through a sampled, ring-bounded recorder must match an
        // untraced run bit for bit, because the tracker (and hence the
        // pressure the controller sees) never touches the recorder.
        use specee_control::ControllerPolicy;
        use specee_obs::{Recorder, SloSpec};
        let seed = 61;
        let parts = trained(seed);
        let requests = PoissonArrivals::new(60.0, 13).requests(&specs(8, 10));
        let slo = SloSpec::parse("p99_ttft=0.001").expect("valid spec");
        let b = batcher(2).with_slo(slo);
        let run = |rec: Option<Recorder>| {
            let mut engine = live_engine(2, &parts);
            engine.set_controller(
                ControllerPolicy::Static
                    .slo_adaptive()
                    .build_classed(N_LAYERS, parts.2.predictor.threshold),
            );
            engine.set_recorder(rec);
            let outcome = b.run_live(&requests, &mut engine, |r| {
                let lm = build_lm(seed);
                let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed ^ r.id);
                (lm, draft)
            });
            let summary = engine.controller_summary().expect("controller attached");
            (outcome, engine.take_recorder(), summary)
        };
        let (plain, _, plain_sum) = run(None);
        let (traced, rec, traced_sum) = run(Some(
            Recorder::for_worker(0).with_sample_every(3).with_budget(64),
        ));
        assert_eq!(plain.report, traced.report);
        for (a, t) in plain.outputs.iter().zip(&traced.outputs) {
            assert_eq!(a.tokens, t.tokens);
            assert_eq!(a.exit_layers, t.exit_layers);
        }
        assert_eq!(plain_sum, traced_sum);
        assert_eq!(plain_sum.policy, "slo+static");
        let rec = rec.expect("recorder survives the run");
        assert!(rec.dropped_events() > 0, "sampling+budget must drop");
        let events = rec.into_events();
        assert!(events.len() <= 64, "budget holds");
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::SloFired { .. })),
            "the impossible target must fire in the trace"
        );
    }

    #[test]
    fn slo_fired_and_cleared_transitions_land_in_the_trace() {
        // One dense burst against an impossible target, then a long idle
        // gap before a final trickle request: the burn must fire during
        // the burst and clear once the windows drain over the gap.
        use specee_obs::{Recorder, SloSpec};
        let seed = 67;
        let parts = trained(seed);
        let mut requests = PoissonArrivals::new(80.0, 17).requests(&specs(8, 8));
        let mut straggler = requests[7].clone();
        straggler.id = 8;
        straggler.arrival_s = requests[7].arrival_s + 30.0;
        requests.push(straggler);
        let b = batcher(2).with_slo(SloSpec::parse("p99_ttft=0.001").expect("valid spec"));
        let mut engine = live_engine(2, &parts);
        engine.set_recorder(Some(Recorder::for_worker(0)));
        let outcome = b.run_live(&requests, &mut engine, |r| {
            let lm = build_lm(seed);
            let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed ^ r.id);
            (lm, draft)
        });
        assert_eq!(outcome.report.completions.len(), requests.len());
        let events = engine
            .take_recorder()
            .expect("recorder survives")
            .into_events();
        let fired: Vec<f64> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SloFired { .. }))
            .map(|e| e.t)
            .collect();
        let cleared: Vec<f64> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SloCleared { .. }))
            .map(|e| e.t)
            .collect();
        assert!(!fired.is_empty(), "burst must fire the alert");
        assert!(!cleared.is_empty(), "idle gap must clear the alert");
        assert!(fired[0] < cleared[0], "fire precedes clear");
        // Transitions alternate: no double-fire without a clear between.
        let mut transitions: Vec<(f64, bool)> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::SloFired { .. } => Some((e.t, true)),
                EventKind::SloCleared { .. } => Some((e.t, false)),
                _ => None,
            })
            .collect();
        transitions.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for w in transitions.windows(2) {
            assert_ne!(w[0].1, w[1].1, "fired/cleared must alternate");
        }
    }

    #[test]
    fn live_gen_len_one_finishes_at_prefill() {
        let seed = 47;
        let parts = trained(seed);
        let requests = PoissonArrivals::new(10.0, 3).requests(&[(vec![1, 2, 3], 1)]);
        let b = batcher(2);
        let mut engine = live_engine(2, &parts);
        let outcome = b.run_live(&requests, &mut engine, |r| {
            let lm = build_lm(seed);
            let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed ^ r.id);
            (lm, draft)
        });
        assert_eq!(outcome.report.completions.len(), 1);
        assert_eq!(outcome.report.steps, 0);
        assert_eq!(
            outcome.report.completions[0].finish_s,
            outcome.report.completions[0].first_token_s
        );
        assert_eq!(outcome.outputs[0].tokens.len(), 1);
    }

    #[test]
    fn live_zero_gen_len_keeps_output_alignment() {
        // A zero-length request in the middle of the burst must still get
        // an (empty) outputs entry so positional zips stay aligned.
        let seed = 53;
        let parts = trained(seed);
        let mut requests = PoissonArrivals::new(10.0, 3).requests(&specs(3, 6));
        requests[1].gen_len = 0;
        let b = batcher(2);
        let mut engine = live_engine(2, &parts);
        let outcome = b.run_live(&requests, &mut engine, |r| {
            let lm = build_lm(seed);
            let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed ^ r.id);
            (lm, draft)
        });
        assert_eq!(outcome.report.completions.len(), 3);
        assert_eq!(outcome.outputs.len(), 3);
        for (k, out) in outcome.outputs.iter().enumerate() {
            assert_eq!(out.id, k as u64);
        }
        assert!(outcome.outputs[1].tokens.is_empty());
        assert_eq!(outcome.outputs[0].tokens.len(), 6);
        assert_eq!(outcome.report.completions[1].tokens, 0);
    }

    #[test]
    fn laned_run_with_default_lanes_is_bit_identical_to_run_live() {
        // The memory plane disengaged must be invisible: explicit
        // all-default lanes, no capacity, no preemption ≡ plain run_live.
        let seed = 71;
        let parts = trained(seed);
        let requests = PoissonArrivals::new(20.0, 19).requests(&specs(6, 8));
        let lanes = vec![specee_core::Lane::DEFAULT; requests.len()];
        let b = batcher(3);
        let make = |r: &ServeRequest| {
            let lm = build_lm(seed);
            let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed ^ r.id);
            (lm, draft)
        };
        let mut plain_engine = live_engine(3, &parts);
        let plain = b.run_live(&requests, &mut plain_engine, make);
        let mut laned_engine = live_engine(3, &parts);
        let laned = b.run_live_laned(&requests, &lanes, false, &mut laned_engine, make);
        assert_eq!(plain.report, laned.report);
        for (a, l) in plain.outputs.iter().zip(&laned.outputs) {
            assert_eq!(a.tokens, l.tokens);
            assert_eq!(a.exit_layers, l.exit_layers);
        }
        assert_eq!(laned_engine.preemptions(), 0);
    }

    #[test]
    fn preempting_capped_run_decodes_the_same_tokens() {
        // Page pressure reorders *when* sequences decode, never *what*
        // they decode: a capacity-capped, preempting run must produce
        // the exact token streams of an uncapped one.
        let seed = 73;
        let parts = trained(seed);
        let requests = PoissonArrivals::new(40.0, 23).requests(&specs(6, 20));
        let lanes: Vec<specee_core::Lane> = (0..requests.len())
            .map(|i| specee_core::Lane::new((i % 3) as u8))
            .collect();
        let b = batcher(3);
        let make = |r: &ServeRequest| {
            let lm = build_lm(seed);
            let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed ^ r.id);
            (lm, draft)
        };
        let mut free_engine = live_engine(3, &parts);
        let free = b.run_live_laned(&requests, &lanes, false, &mut free_engine, make);
        let mut capped_engine = live_engine(3, &parts);
        // Final KV per sequence: 3 + 19 = 22 tokens → 2 pages of 16; a
        // cap of 4 cannot hold three such sequences.
        capped_engine.set_page_capacity(Some(4));
        capped_engine.set_preemption_enabled(true);
        let capped = b.run_live_laned(&requests, &lanes, true, &mut capped_engine, make);
        assert!(
            capped_engine.preemptions() > 0,
            "the cap must force evictions"
        );
        assert_eq!(capped_engine.preemptions(), capped_engine.resumes());
        assert_eq!(free.outputs.len(), capped.outputs.len());
        for (a, c) in free.outputs.iter().zip(&capped.outputs) {
            assert_eq!(a.tokens, c.tokens, "request {}", a.id);
            assert_eq!(a.exit_layers, c.exit_layers, "request {}", a.id);
        }
        assert_eq!(capped.report.completions.len(), requests.len());
        assert!(capped_engine.pool().pages_peak() <= 4, "cap honoured");
    }

    #[test]
    fn lanes_with_preemption_hold_high_priority_ttft_under_page_starvation() {
        // Two low-priority hogs fill every slot and page; a high-priority
        // request arrives mid-decode. Without preemption it waits for a
        // hog to finish; with lanes + preemption a hog is evicted and the
        // request admits immediately.
        let seed = 79;
        let parts = trained(seed);
        let mut requests = vec![
            ServeRequest {
                id: 0,
                prompt: vec![2, 5, 1],
                gen_len: 12,
                arrival_s: 0.0,
            },
            ServeRequest {
                id: 1,
                prompt: vec![3, 6, 2],
                gen_len: 12,
                arrival_s: 0.0,
            },
        ];
        // Arrives once both hogs are seated and decoding.
        requests.push(ServeRequest {
            id: 2,
            prompt: vec![4, 7, 3],
            gen_len: 4,
            arrival_s: 0.002,
        });
        let lanes = vec![
            specee_core::Lane::new(2),
            specee_core::Lane::new(2),
            specee_core::Lane::new(0),
        ];
        let b = batcher(2);
        let make = |r: &ServeRequest| {
            let lm = build_lm(seed);
            let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed ^ r.id);
            (lm, draft)
        };
        let run = |preempt: bool| {
            let mut engine = live_engine(2, &parts);
            engine.set_page_capacity(Some(2));
            engine.set_preemption_enabled(preempt);
            let outcome = b.run_live_laned(&requests, &lanes, preempt, &mut engine, make);
            let ttft = outcome
                .report
                .completions
                .iter()
                .find(|c| c.id == 2)
                .expect("high-priority completion")
                .ttft_s();
            (outcome, ttft, engine.preemptions())
        };
        let (stalled_run, stalled_ttft, p0) = run(false);
        let (preempt_run, preempt_ttft, p1) = run(true);
        assert_eq!(p0, 0);
        assert!(p1 > 0, "the high-priority arrival must evict a hog");
        assert!(
            preempt_ttft < stalled_ttft * 0.5,
            "preemption must hold the high-priority TTFT: {preempt_ttft} vs {stalled_ttft}"
        );
        // Work conservation: every request still finishes in both runs.
        assert_eq!(stalled_run.report.completions.len(), 3);
        assert_eq!(preempt_run.report.completions.len(), 3);
        for (a, b) in stalled_run.outputs.iter().zip(&preempt_run.outputs) {
            assert_eq!(a.tokens, b.tokens, "request {}", a.id);
        }
    }

    #[test]
    #[should_panic(expected = "engine batch cap")]
    fn live_validates_batch_cap() {
        let parts = trained(49);
        let requests = PoissonArrivals::new(10.0, 3).requests(&specs(1, 4));
        let mut engine = live_engine(3, &parts);
        let _ = batcher(2).run_live(&requests, &mut engine, |_| {
            let lm = build_lm(49);
            let draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), 49);
            (lm, draft)
        });
    }
}
