//! Continuous-batching serving simulation for SpecEE.
//!
//! The paper evaluates SpecEE at batch size 1 (one stream per GPU). This
//! crate extends the reproduction to the *serving* regime the cloud
//! scenario motivates: many requests, Poisson arrivals, a continuous
//! batcher that admits a request as soon as a slot frees, and a cost model
//! in which each decode step reads every executed layer's weights **once
//! for the whole batch** (how real batched GEMV kernels behave).
//!
//! That amortization is exactly what erodes early exiting at scale: a
//! layer's weight read is saved only when *every* sequence in the batch
//! exits below it, so SpecEE's advantage decays from the full single-stream
//! speedup at batch 1 toward the compute-only savings at large batches.
//! The `ablation_batch_serving` bench quantifies the decay curve.
//!
//! # Three execution modes: replay, live and cluster
//!
//! **Replay** ([`batcher`], [`ContinuousBatcher::run`]): under greedy
//! decoding a sequence's tokens and exit layers do not depend on what else
//! shares the batch — batching changes *timing*, not values. The simulator
//! records each request's trace (tokens, per-token exit layers,
//! predictor/verify call counts) by running the real engines once per
//! request ([`trace`]), then replays the traces through the
//! admission/batching/pricing loop. Every token in a served run is a
//! genuinely computed token; only the clock is modelled. Replay is cheap
//! (one engine pass per request, then arbitrarily many batch-cap sweeps)
//! and exact *as long as* the replayed per-token overhead averages stand
//! in faithfully for what a real batch would execute per step.
//!
//! **Live** ([`live`], [`ContinuousBatcher::run_live`]): requests are
//! admitted into the slots of a `specee_batch::BatchedEngine` and decoded
//! for real — N sequences in lock-step through the layer stack, scheduled
//! predictors evaluated per sequence, the step ending at the rearmost
//! layer any sequence still needs. The step cost is priced from *measured*
//! per-layer runner counts and call totals, not per-request averages.
//! Live is the trustworthy mode whenever batch composition matters: it
//! measures the Cannikin batch-size decay instead of assuming trace
//! independence, at the price of re-decoding the workload for every
//! configuration swept. Use replay for broad sweeps, live to validate the
//! points that matter; both share [`ServeReport`]/[`ServeStats`], so the
//! curves overlay directly (`ablation_live_batch` does exactly that).
//!
//! **Cluster** (the `specee-cluster` crate, `specee serve --mode
//! cluster`): N live workers — one OS thread and one batched engine each
//! — behind a shared admission queue and a routing policy. Each worker
//! prices its measured steps with the same [`StepCostModel`] and reports
//! the same [`ServeReport`] shape, merged across workers into one
//! aggregate. Cluster numbers are trustworthy exactly where live numbers
//! are (every step is genuinely executed and priced), *plus* they are the
//! only mode in which routing-policy effects — queue-wait tails, the
//! many-small-batches counter to the Cannikin decay — are real rather
//! than extrapolated. A one-worker round-robin cluster reproduces
//! [`ContinuousBatcher::run_live`] token-for-token and
//! completion-for-completion (asserted in `specee-cluster`'s parity
//! tests), so cluster sweeps can be anchored against single-engine runs.
//! Simulated worker clocks all start at zero; aggregate throughput is
//! total tokens over the rearmost worker's makespan.
//!
//! # Examples
//!
//! ```
//! use specee_metrics::{FrameworkProfile, HardwareProfile};
//! use specee_model::CostDims;
//! use specee_serve::{BatcherConfig, ContinuousBatcher, PoissonArrivals, RequestTrace, ServeRequest};
//!
//! // Two synthetic traces standing in for recorded engine runs.
//! let traces = vec![
//!     RequestTrace::dense(vec![5, 6, 7, 8], 32),
//!     RequestTrace::dense(vec![9, 10, 11], 32),
//! ];
//! let requests: Vec<ServeRequest> = PoissonArrivals::new(4.0, 11)
//!     .requests(&[(vec![1, 2, 3], 4), (vec![4, 5], 3)]);
//!
//! let config = BatcherConfig {
//!     max_batch: 2,
//!     hardware: HardwareProfile::a100_80g(),
//!     framework: FrameworkProfile::vllm(),
//!     cost: CostDims::llama2_7b(),
//! };
//! let report = ContinuousBatcher::new(config).run(&requests, &traces);
//! assert_eq!(report.completions.len(), 2);
//! assert!(report.stats().throughput_tok_s > 0.0);
//! ```

#![deny(missing_docs)]

pub mod batcher;
pub mod cost;
pub mod live;
pub mod request;
pub mod stats;
pub mod trace;

pub use batcher::{AdmissionPolicy, BatcherConfig, ContinuousBatcher, ServeReport};
pub use cost::StepCostModel;
pub use live::LiveOutcome;
pub use request::{Completion, PoissonArrivals, ServeRequest};
pub use stats::{ClassStats, ServeStats};
pub use trace::RequestTrace;
