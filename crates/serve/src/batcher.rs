//! The continuous batcher: admission, step loop and clock.

use serde::{Deserialize, Serialize};
use specee_metrics::{FrameworkProfile, HardwareProfile};
use specee_model::CostDims;
use specee_obs::{EventKind, Recorder, SloSpec};

use crate::cost::{StepCostModel, StepSpec};
use crate::request::{Completion, ServeRequest};
use crate::stats::ServeStats;
use crate::trace::RequestTrace;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    /// Maximum concurrent sequences.
    pub max_batch: usize,
    /// Device being modelled.
    pub hardware: HardwareProfile,
    /// Host framework overhead profile.
    pub framework: FrameworkProfile,
    /// Full-scale dimensions to price.
    pub cost: CostDims,
}

/// How arrived requests are chosen when a slot frees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// First come, first served (the default; no starvation).
    #[default]
    Fcfs,
    /// Shortest job first by requested decode length: lowers mean latency
    /// on mixed workloads, can starve long requests under sustained load.
    ShortestJobFirst,
}

impl AdmissionPolicy {
    /// Picks the index of the next pending request to admit.
    ///
    /// `keys[i]` is `(gen_len, id)` for the `i`-th pending request, listed
    /// in arrival order; ties under shortest-job-first break toward the
    /// lower id. Shared by the replay/live loops here and the per-worker
    /// admission loop in `specee-cluster`, so every execution mode admits
    /// identically.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty.
    pub fn pick_by_key(self, keys: &[(usize, u64)]) -> usize {
        assert!(!keys.is_empty(), "pending non-empty");
        match self {
            AdmissionPolicy::Fcfs => 0,
            AdmissionPolicy::ShortestJobFirst => keys
                .iter()
                .enumerate()
                .min_by_key(|(_, &k)| k)
                .map(|(i, _)| i)
                .expect("pending non-empty"),
        }
    }
}

/// One in-flight sequence.
#[derive(Debug, Clone)]
struct Slot {
    req: usize,
    next_token: usize,
    ctx_len: usize,
}

/// Outcome of a served run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Per-request completions, in request-id order.
    pub completions: Vec<Completion>,
    /// Simulated wall-clock at the last completion, seconds.
    pub makespan_s: f64,
    /// Decode steps executed.
    pub steps: u64,
    /// Mean batch occupancy over decode steps.
    pub avg_occupancy: f64,
    /// Mean executed layers per (slot, token) pair.
    pub avg_layers: f64,
}

impl ServeReport {
    /// Aggregate latency/throughput statistics.
    pub fn stats(&self) -> ServeStats {
        ServeStats::from_report(self)
    }
}

/// A continuous batcher over recorded request traces.
///
/// Requests are admitted in arrival order as soon as a slot frees
/// (first-come-first-served; no preemption). Prefill is modelled as a
/// dedicated batched forward at admission time, decode as synchronized
/// steps in which every active slot emits one token.
#[derive(Debug, Clone)]
pub struct ContinuousBatcher {
    pub(crate) config: BatcherConfig,
    pub(crate) model: StepCostModel,
    pub(crate) policy: AdmissionPolicy,
    pub(crate) slo: Option<SloSpec>,
}

/// Picks the index *within `pending`* of the next request to admit under
/// `policy` (shared by the replay and live loops).
pub(crate) fn pick_pending(
    policy: AdmissionPolicy,
    pending: &[usize],
    requests: &[ServeRequest],
) -> usize {
    let keys: Vec<(usize, u64)> = pending
        .iter()
        .map(|&r| (requests[r].gen_len, r as u64))
        .collect();
    policy.pick_by_key(&keys)
}

/// Lane-aware admission pick: the highest-priority (lowest) lane present
/// in `pending` wins, and `policy` orders requests within that lane
/// exactly as [`pick_pending`] does. With uniform lanes (including the
/// empty slice, meaning all-default) the pick reduces to [`pick_pending`]
/// bit for bit, so un-laned runs are untouched.
pub(crate) fn pick_pending_laned(
    policy: AdmissionPolicy,
    pending: &[usize],
    requests: &[ServeRequest],
    lanes: &[specee_core::Lane],
) -> usize {
    let lane_of = |r: usize| lanes.get(r).copied().unwrap_or_default();
    let best = pending
        .iter()
        .map(|&r| lane_of(r))
        .min()
        .expect("pending non-empty");
    if pending.iter().all(|&r| lane_of(r) == best) {
        return pick_pending(policy, pending, requests);
    }
    let subset: Vec<usize> = pending
        .iter()
        .copied()
        .filter(|&r| lane_of(r) == best)
        .collect();
    let chosen = subset[pick_pending(policy, &subset, requests)];
    pending
        .iter()
        .position(|&r| r == chosen)
        .expect("subset member of pending")
}

impl ContinuousBatcher {
    /// Creates an FCFS batcher for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(config: BatcherConfig) -> Self {
        Self::with_policy(config, AdmissionPolicy::Fcfs)
    }

    /// Creates a batcher with an explicit admission policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn with_policy(config: BatcherConfig, policy: AdmissionPolicy) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        let model = StepCostModel::new(
            config.cost,
            config.hardware.clone(),
            config.framework.clone(),
        );
        ContinuousBatcher {
            config,
            model,
            policy,
            slo: None,
        }
    }

    /// Attaches an online SLO specification to the *live* serving loop.
    ///
    /// [`run_live`](Self::run_live) then drives a
    /// [`specee_obs::SloTracker`] on the simulated clock: admission TTFTs
    /// and verifier accept/reject outcomes feed its rolling windows, the
    /// multi-window burn-rate alerts are evaluated at every clock
    /// advance, `SloFired`/`SloCleared` transitions land in the engine's
    /// trace stream (when a recorder is attached), and the tracker's
    /// pressure signal is pushed into the engine's controller via
    /// `set_slo_pressure` — so an `slo+*` controller policy bends its
    /// operating point while an objective burns. The tracker runs whether
    /// or not a recorder is attached, so traced and untraced runs stay
    /// bit-identical.
    ///
    /// Replay mode ([`run`](Self::run)) ignores the specification: its
    /// traces were recorded elsewhere and cannot react to pressure.
    pub fn with_slo(mut self, slo: SloSpec) -> Self {
        self.slo = Some(slo);
        self
    }

    /// The attached SLO specification, if any.
    pub fn slo(&self) -> Option<&SloSpec> {
        self.slo.as_ref()
    }

    /// The step cost model in use.
    pub fn cost_model(&self) -> &StepCostModel {
        &self.model
    }

    /// Replays `traces` under the arrival schedule in `requests`.
    ///
    /// `traces[i]` must be the recorded run of `requests[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length, a trace is shorter than
    /// its request's `gen_len`, or arrivals are not sorted.
    pub fn run(&self, requests: &[ServeRequest], traces: &[RequestTrace]) -> ServeReport {
        self.run_recorded(requests, traces, None)
    }

    /// [`run`](Self::run) with an optional trace [`Recorder`]: when one is
    /// supplied, every admission, decode step and request completion is
    /// recorded as a typed event stamped with the simulated clock. The
    /// event stream never feeds back into the simulation, so a recorded
    /// run produces a bit-identical [`ServeReport`] to an unrecorded one.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run`](Self::run).
    pub fn run_recorded(
        &self,
        requests: &[ServeRequest],
        traces: &[RequestTrace],
        mut rec: Option<&mut Recorder>,
    ) -> ServeReport {
        assert_eq!(requests.len(), traces.len(), "one trace per request");
        assert!(
            requests
                .windows(2)
                .all(|w| w[0].arrival_s <= w[1].arrival_s),
            "requests must be sorted by arrival"
        );
        for (r, t) in requests.iter().zip(traces) {
            assert!(
                t.len() >= r.gen_len,
                "trace for request {} shorter than gen_len",
                r.id
            );
        }

        let n_layers = self.config.cost.n_layers;
        let mut now = 0.0f64;
        let mut next_arrival = 0usize;
        let mut pending: Vec<usize> = Vec::new();
        let mut active: Vec<Slot> = Vec::new();
        let mut completions: Vec<Completion> = Vec::with_capacity(requests.len());
        let mut first_token_s = vec![0.0f64; requests.len()];
        let mut steps = 0u64;
        let mut occupancy_sum = 0.0f64;
        let mut layer_sum = 0.0f64;
        let mut token_sum = 0u64;

        while completions.len() < requests.len() {
            // Move arrivals into the pending pool, then admit by policy —
            // as one batched prefill.
            while next_arrival < requests.len() && requests[next_arrival].arrival_s <= now {
                pending.push(next_arrival);
                next_arrival += 1;
            }
            let mut admitted: Vec<usize> = Vec::new();
            while !pending.is_empty() && active.len() + admitted.len() < self.config.max_batch {
                let pick = pick_pending(self.policy, &pending, requests);
                admitted.push(pending.remove(pick));
            }
            if !admitted.is_empty() {
                if let Some(r) = rec.as_deref_mut() {
                    let depth = pending.len() as u32;
                    for &i in &admitted {
                        r.record_at(
                            now,
                            Some(requests[i].id),
                            EventKind::Admission {
                                request: requests[i].id,
                                queue_depth: depth,
                            },
                        );
                    }
                }
                let lens: Vec<usize> = admitted.iter().map(|&i| requests[i].prompt.len()).collect();
                now += self.model.prefill_latency(&lens);
                for &i in &admitted {
                    // The prefill produces the first token (the engines
                    // count it the same way).
                    first_token_s[i] = now;
                    if requests[i].gen_len <= 1 {
                        completions.push(Completion {
                            id: requests[i].id,
                            arrival_s: requests[i].arrival_s,
                            first_token_s: now,
                            finish_s: now,
                            tokens: requests[i].gen_len,
                        });
                        if let Some(r) = rec.as_deref_mut() {
                            r.record_at(
                                now,
                                Some(requests[i].id),
                                EventKind::Request {
                                    request: requests[i].id,
                                    arrival_s: requests[i].arrival_s,
                                    first_token_s: now,
                                    finish_s: now,
                                    tokens: requests[i].gen_len as u32,
                                },
                            );
                        }
                    } else {
                        active.push(Slot {
                            req: i,
                            next_token: 1,
                            ctx_len: requests[i].prompt.len() + 1,
                        });
                    }
                }
                continue;
            }

            if active.is_empty() {
                // Idle: jump to the next arrival.
                if next_arrival < requests.len() {
                    now = now.max(requests[next_arrival].arrival_s);
                    continue;
                }
                break;
            }

            // One synchronized decode step.
            let mut spec = StepSpec {
                layer_runners: vec![0; n_layers],
                ctx_lens: Vec::with_capacity(active.len()),
                lm_head_evals: 0.0,
                draft_slots: 0,
                self_draft_slots: 0,
                predictor_calls: 0.0,
            };
            for slot in &active {
                let trace = &traces[slot.req];
                let exit = trace.exit_layers[slot.next_token].min(n_layers);
                for runner in spec.layer_runners.iter_mut().take(exit) {
                    *runner += 1;
                }
                spec.ctx_lens.push(slot.ctx_len);
                // Final logits (dense) or exit verification (SpecEE); extra
                // failed verifications are charged via the per-token rate.
                spec.lm_head_evals += 1.0_f64.max(trace.verify_calls_per_token);
                if trace.speculative {
                    spec.draft_slots += 1;
                    spec.predictor_calls += trace.predictor_calls_per_token;
                }
                layer_sum += exit as f64;
                token_sum += 1;
            }
            let dur = self.model.decode_step_latency(&spec);
            if let Some(r) = rec.as_deref_mut() {
                let layers = spec.layer_runners.iter().rposition(|&c| c > 0);
                r.record_at(
                    now,
                    None,
                    EventKind::Step {
                        step: steps,
                        occupancy: active.len() as u32,
                        layers: layers.map_or(0, |l| l + 1) as u32,
                        dur_s: dur,
                    },
                );
            }
            now += dur;
            steps += 1;
            occupancy_sum += active.len() as f64;

            // Advance slots; retire the finished.
            let mut still_active = Vec::with_capacity(active.len());
            for mut slot in active {
                slot.next_token += 1;
                slot.ctx_len += 1;
                let req = &requests[slot.req];
                if slot.next_token >= req.gen_len {
                    completions.push(Completion {
                        id: req.id,
                        arrival_s: req.arrival_s,
                        first_token_s: first_token_s[slot.req],
                        finish_s: now,
                        tokens: req.gen_len,
                    });
                    if let Some(r) = rec.as_deref_mut() {
                        r.record_at(
                            now,
                            Some(req.id),
                            EventKind::Request {
                                request: req.id,
                                arrival_s: req.arrival_s,
                                first_token_s: first_token_s[slot.req],
                                finish_s: now,
                                tokens: req.gen_len as u32,
                            },
                        );
                    }
                } else {
                    still_active.push(slot);
                }
            }
            active = still_active;
        }

        completions.sort_by_key(|c| c.id);
        ServeReport {
            completions,
            makespan_s: now,
            steps,
            avg_occupancy: if steps > 0 {
                occupancy_sum / steps as f64
            } else {
                0.0
            },
            avg_layers: if token_sum > 0 {
                layer_sum / token_sum as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PoissonArrivals;

    fn config(max_batch: usize) -> BatcherConfig {
        BatcherConfig {
            max_batch,
            hardware: HardwareProfile::a100_80g(),
            framework: FrameworkProfile::vllm(),
            cost: CostDims::llama2_7b(),
        }
    }

    fn dense_traces(n: usize, gen: usize) -> Vec<RequestTrace> {
        (0..n)
            .map(|i| RequestTrace::dense(vec![i as u32; gen], 32))
            .collect()
    }

    fn specee_traces(n: usize, gen: usize, exit: usize) -> Vec<RequestTrace> {
        (0..n)
            .map(|i| RequestTrace {
                tokens: vec![i as u32; gen],
                exit_layers: vec![exit; gen],
                predictor_calls_per_token: 3.0,
                verify_calls_per_token: 1.0,
                speculative: true,
            })
            .collect()
    }

    fn requests(n: usize, gen: usize) -> Vec<ServeRequest> {
        PoissonArrivals::new(50.0, 5).requests(
            &(0..n)
                .map(|_| (vec![1u32, 2, 3, 4], gen))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn all_requests_complete_with_sane_timings() {
        let reqs = requests(6, 12);
        let report = ContinuousBatcher::new(config(3)).run(&reqs, &dense_traces(6, 12));
        assert_eq!(report.completions.len(), 6);
        for (c, r) in report.completions.iter().zip(&reqs) {
            assert_eq!(c.id, r.id);
            assert!(c.first_token_s >= r.arrival_s);
            assert!(c.finish_s >= c.first_token_s);
            assert_eq!(c.tokens, 12);
        }
        assert!(report.avg_occupancy > 1.0);
        assert!(report.avg_occupancy <= 3.0);
        assert_eq!(report.avg_layers, 32.0);
    }

    #[test]
    fn larger_batches_raise_throughput() {
        let reqs = requests(16, 16);
        let traces = dense_traces(16, 16);
        let b1 = ContinuousBatcher::new(config(1)).run(&reqs, &traces);
        let b8 = ContinuousBatcher::new(config(8)).run(&reqs, &traces);
        assert!(
            b8.stats().throughput_tok_s > 1.5 * b1.stats().throughput_tok_s,
            "b8 {} vs b1 {}",
            b8.stats().throughput_tok_s,
            b1.stats().throughput_tok_s
        );
    }

    #[test]
    fn early_exit_advantage_shrinks_with_batch() {
        let reqs = requests(16, 16);
        let dense = dense_traces(16, 16);
        let spec = specee_traces(16, 16, 20);
        let speedup = |mb: usize| {
            let d = ContinuousBatcher::new(config(mb)).run(&reqs, &dense);
            let s = ContinuousBatcher::new(config(mb)).run(&reqs, &spec);
            s.stats().throughput_tok_s / d.stats().throughput_tok_s
        };
        let at1 = speedup(1);
        let at8 = speedup(8);
        assert!(at1 > 1.05, "batch-1 speedup {at1}");
        assert!(at8 < at1, "batch-8 {at8} vs batch-1 {at1}");
    }

    #[test]
    fn unanimous_exits_still_win_at_large_batch() {
        // When every sequence exits at the same layer the weight savings
        // survive batching.
        let reqs = requests(8, 16);
        let d = ContinuousBatcher::new(config(8)).run(&reqs, &dense_traces(8, 16));
        let s = ContinuousBatcher::new(config(8)).run(&reqs, &specee_traces(8, 16, 16));
        assert!(s.makespan_s < d.makespan_s);
    }

    #[test]
    fn batch_cap_respected() {
        let reqs = requests(10, 8);
        let report = ContinuousBatcher::new(config(2)).run(&reqs, &dense_traces(10, 8));
        assert!(report.avg_occupancy <= 2.0);
    }

    #[test]
    fn gen_len_one_finishes_at_prefill() {
        let reqs = PoissonArrivals::new(10.0, 3).requests(&[(vec![1, 2, 3], 1)]);
        let report = ContinuousBatcher::new(config(2)).run(&reqs, &dense_traces(1, 1));
        assert_eq!(report.completions.len(), 1);
        assert_eq!(
            report.completions[0].finish_s,
            report.completions[0].first_token_s
        );
        assert_eq!(report.steps, 0);
    }

    #[test]
    fn sjf_lowers_mean_latency_on_mixed_lengths() {
        // One long job submitted ahead of many short ones, all arriving
        // together; at cap 1 FCFS makes every short job wait behind it
        // (no preemption — admission order is the only lever).
        let mut requests = vec![ServeRequest {
            id: 0,
            prompt: vec![1, 2, 3],
            gen_len: 64,
            arrival_s: 0.0,
        }];
        for i in 1..6u64 {
            requests.push(ServeRequest {
                id: i,
                prompt: vec![1, 2, 3],
                gen_len: 4,
                arrival_s: 0.0,
            });
        }
        let traces: Vec<RequestTrace> = requests
            .iter()
            .map(|r| RequestTrace::dense(vec![7; r.gen_len], 32))
            .collect();
        let fcfs = ContinuousBatcher::new(config(1)).run(&requests, &traces);
        let sjf = ContinuousBatcher::with_policy(config(1), AdmissionPolicy::ShortestJobFirst)
            .run(&requests, &traces);
        assert!(
            sjf.stats().mean_latency_s < fcfs.stats().mean_latency_s * 0.8,
            "sjf {} vs fcfs {}",
            sjf.stats().mean_latency_s,
            fcfs.stats().mean_latency_s
        );
        // Same total work: makespan unchanged (work-conserving policies).
        assert!((sjf.makespan_s - fcfs.makespan_s).abs() < 1e-9);
        assert_eq!(sjf.completions.len(), 6);
    }

    #[test]
    fn fcfs_admits_in_arrival_order() {
        let reqs = requests(6, 8);
        let traces = dense_traces(6, 8);
        let report = ContinuousBatcher::new(config(1)).run(&reqs, &traces);
        // At cap 1, FCFS finishes strictly in arrival (= id) order.
        let mut finishes: Vec<(u64, f64)> = report
            .completions
            .iter()
            .map(|c| (c.id, c.finish_s))
            .collect();
        finishes.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        let order: Vec<u64> = finishes.iter().map(|(id, _)| *id).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn recorded_replay_is_bit_identical_and_captures_the_run() {
        let reqs = requests(6, 8);
        let traces = specee_traces(6, 8, 20);
        let b = ContinuousBatcher::new(config(2));
        let plain = b.run(&reqs, &traces);
        let mut rec = Recorder::new();
        let recorded = b.run_recorded(&reqs, &traces, Some(&mut rec));
        assert_eq!(plain, recorded, "recording must not perturb the run");
        let events = rec.into_events();
        let count = |f: fn(&EventKind) -> bool| events.iter().filter(|e| f(&e.kind)).count();
        assert_eq!(count(|k| matches!(k, EventKind::Admission { .. })), 6);
        assert_eq!(count(|k| matches!(k, EventKind::Request { .. })), 6);
        assert_eq!(
            count(|k| matches!(k, EventKind::Step { .. })) as u64,
            plain.steps
        );
        // The batcher records in clock order, so the stream is already a
        // valid timeline without merging.
        assert!(events.windows(2).all(|w| w[0].t <= w[1].t));
        for e in &events {
            if let EventKind::Step { layers, dur_s, .. } = e.kind {
                assert_eq!(layers, 20, "every replay trace exits at layer 20");
                assert!(dur_s > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one trace per request")]
    fn trace_count_validated() {
        let reqs = requests(2, 4);
        let _ = ContinuousBatcher::new(config(2)).run(&reqs, &dense_traces(1, 4));
    }

    #[test]
    #[should_panic(expected = "shorter than gen_len")]
    fn trace_length_validated() {
        let reqs = requests(1, 8);
        let _ = ContinuousBatcher::new(config(2)).run(&reqs, &dense_traces(1, 4));
    }
}
