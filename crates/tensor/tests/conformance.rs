//! Cross-backend differential conformance suite.
//!
//! Every [`Backend`] implementation must honour the same shape contracts
//! (identical panic messages included) and sit inside a stated numerical
//! envelope relative to the scalar oracle:
//!
//! * `Blocked` preserves the reference f32 summation order for `matvec`,
//!   `matvec_into`, and `gemm`, so those are checked for **bit identity**
//!   (`f32::to_bits`), not closeness. `matvec_t` and `matvec_q` fuse rows
//!   / unroll lanes and therefore re-associate; those get explicit
//!   tolerance bounds.
//! * `QuantizedI8` rounds to i8 codes; its error is bounded analytically
//!   from the per-group half-step (`scale / 2`) and the bound is computed
//!   per instance and asserted.
//!
//! The suite is instantiated for all of [`BackendKind::ALL`] and backed by
//! differential proptests over random shapes, including degenerate
//! `0 x N` / `N x 0` matrices.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;
use specee_tensor::backend::{quantize_i8, I8_GROUP};
use specee_tensor::{
    grouped_matvec, AwqCalibration, AwqMatrix, BackendKind, GroupedGemm, GroupedGemmSpec, Matrix,
    Pcg, QuantBits, QuantizedMatrix,
};

/// Shapes exercised by every deterministic test: degenerate, tiny,
/// unaligned (prime), and larger-than-one-SIMD-block.
const SHAPES: &[(usize, usize)] = &[
    (0, 0),
    (0, 5),
    (5, 0),
    (1, 1),
    (1, 64),
    (3, 7),
    (4, 4),
    (5, 33),
    (7, 96),
    (13, 1),
    (16, 16),
    (17, 129),
    (33, 64),
];

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::random(rows, cols, 1.0, &mut Pcg::seed(seed))
}

fn vec_in(len: usize, seed: u64) -> Vec<f32> {
    let mut v = vec![0.0f32; len];
    Pcg::seed(seed ^ 0x9e37).fill_uniform(&mut v, 1.0);
    v
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Captures a panic message from `f` (shape-contract pinning across
/// backends without one `#[should_panic]` test per backend).
fn panic_msg<F: FnOnce()>(f: F) -> String {
    let payload = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a panic");
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        String::from("<non-string panic payload>")
    }
}

/// Per-group i8 scales exactly as the `QuantizedI8` kernel derives them
/// (ragged tail becomes its own smaller group).
fn group_scales(v: &[f32], group: usize) -> Vec<f32> {
    v.chunks(group).map(|c| quantize_i8(c).0).collect()
}

/// Analytic error bound for `QuantizedI8::matvec` against the dense f32
/// product: per element, `|w·x − (s_w w_q)(s_x x_q)|` is at most
/// `(s_w/2)|x| + (|w| + s_w/2)(s_x/2)` — rounding moves each operand by
/// at most half a quantization step.
fn quant_matvec_bound(m: &Matrix, x: &[f32]) -> Vec<f64> {
    let xs = group_scales(x, I8_GROUP);
    let cols = m.cols();
    (0..m.rows())
        .map(|r| {
            let row = &m.as_slice()[r * cols..(r + 1) * cols];
            let ws = group_scales(row, I8_GROUP);
            let mut bound = 0.0f64;
            for (j, (&w, &xv)) in row.iter().zip(x.iter()).enumerate() {
                let sw = f64::from(ws[j / I8_GROUP]);
                let sx = f64::from(xs[j / I8_GROUP]);
                bound +=
                    (sw / 2.0) * f64::from(xv.abs()) + (f64::from(w.abs()) + sw / 2.0) * (sx / 2.0);
            }
            bound
        })
        .collect()
}

/// Analytic bound for `QuantizedI8::matvec_q` against the reference
/// dequantizing kernel: the weights' codes are shared, so the only new
/// error is activation rounding, `Σ_g s_g (s_x/2) Σ |w_q|`.
fn quant_matvec_q_bound(q: &QuantizedMatrix, x: &[f32]) -> Vec<f64> {
    let gs = q.group_size();
    let xs = group_scales(x, gs);
    let cols = q.cols();
    let groups_per_row = cols.checked_div(gs).unwrap_or(0);
    (0..q.rows())
        .map(|r| {
            let mut bound = 0.0f64;
            for (g, &sx) in xs.iter().enumerate().take(groups_per_row) {
                let base = r * cols + g * gs;
                let abs_codes: f64 = q.codes()[base..base + gs]
                    .iter()
                    .map(|&c| f64::from(c.unsigned_abs()))
                    .sum();
                bound += f64::from(q.scales()[r * groups_per_row + g])
                    * (f64::from(sx) / 2.0)
                    * abs_codes;
            }
            bound
        })
        .collect()
}

fn assert_within(got: &[f32], want: &[f32], bound: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        let err = f64::from(g - w).abs();
        // Generous slack for the f32 evaluation of the kernels themselves
        // (the analytic bound covers rounding, not accumulation order).
        let tol = bound[i] * (1.0 + 1e-5) + 1e-4;
        assert!(
            err <= tol,
            "{what}: row {i} error {err:e} exceeds bound {tol:e} (got {g}, want {w})"
        );
    }
}

fn assert_close(got: &[f32], want: &[f32], tol: f32, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        let scale = 1.0 + w.abs();
        assert!(
            (g - w).abs() <= tol * scale,
            "{what}: element {i} differs (got {g}, want {w})"
        );
    }
}

// ---------------------------------------------------------------------------
// Backend registry basics
// ---------------------------------------------------------------------------

#[test]
fn kinds_round_trip_and_report_exactness() {
    for kind in BackendKind::ALL {
        assert_eq!(kind.to_string(), kind.get().name());
        assert_eq!(kind.to_string().parse::<BackendKind>().unwrap(), kind);
    }
    assert_eq!(BackendKind::default(), BackendKind::Reference);
    assert_eq!(
        "quantized".parse::<BackendKind>().unwrap(),
        BackendKind::QuantizedI8
    );
    assert_eq!(
        "i8".parse::<BackendKind>().unwrap(),
        BackendKind::QuantizedI8
    );
    assert!(BackendKind::Reference.is_exact());
    assert!(BackendKind::Blocked.is_exact());
    assert!(!BackendKind::QuantizedI8.is_exact());
    let err = "metal".parse::<BackendKind>().unwrap_err();
    assert_eq!(err, "unknown backend `metal` (reference, blocked, quant)");
}

// ---------------------------------------------------------------------------
// Shared shape-contract suite, instantiated for every backend
// ---------------------------------------------------------------------------

/// `matvec` output length, finiteness, and degenerate shapes for one
/// backend.
fn check_shape_contract(kind: BackendKind) {
    let b = kind.get();
    for (i, &(rows, cols)) in SHAPES.iter().enumerate() {
        let m = mat(rows, cols, 100 + i as u64);
        let x = vec_in(cols, 200 + i as u64);
        let y = b.matvec(&m, &x);
        assert_eq!(y.len(), rows, "{}: matvec rows", b.name());
        assert!(y.iter().all(|v| v.is_finite()), "{}: finite", b.name());
        if cols == 0 {
            // An N x 0 product is an empty dot: exactly zero on every
            // backend, including the integer one.
            assert!(y.iter().all(|&v| v == 0.0), "{}: N x 0 is zero", b.name());
        }
        let xt = vec_in(rows, 300 + i as u64);
        let yt = b.matvec_t(&m, &xt);
        assert_eq!(yt.len(), cols, "{}: matvec_t cols", b.name());
        if rows == 0 {
            assert!(
                yt.iter().all(|&v| v == 0.0),
                "{}: 0 x N transpose",
                b.name()
            );
        }
        // matvec_into overwrites (it must not accumulate into stale y).
        let mut out = vec![7.25f32; rows];
        b.matvec_into(&m, &x, &mut out);
        assert_eq!(bits(&out), bits(&y), "{}: matvec_into == matvec", b.name());
    }
}

#[test]
fn shape_contract_reference() {
    check_shape_contract(BackendKind::Reference);
}

#[test]
fn shape_contract_blocked() {
    check_shape_contract(BackendKind::Blocked);
}

#[test]
fn shape_contract_quantized() {
    check_shape_contract(BackendKind::QuantizedI8);
}

/// Every backend panics with the same message on every shape violation.
#[test]
fn shape_violations_panic_identically_across_backends() {
    let m = mat(4, 6, 1);
    let q = QuantizedMatrix::quantize(&mat(4, 6, 2), QuantBits::Int8, 3).unwrap();
    for kind in BackendKind::ALL {
        let b = kind.get();
        let name = b.name();
        let msg = panic_msg(|| drop(b.matvec(&m, &[0.0; 5])));
        assert!(msg.contains("matvec input length"), "{name}: {msg}");
        let msg = panic_msg(|| b.matvec_into(&m, &[0.0; 6], &mut [0.0; 3]));
        assert!(msg.contains("matvec output length"), "{name}: {msg}");
        let msg = panic_msg(|| drop(b.matvec_t(&m, &[0.0; 3])));
        assert!(msg.contains("matvec_t input length"), "{name}: {msg}");
        let msg = panic_msg(|| drop(b.matvec_q(&q, &[0.0; 5])));
        assert!(
            msg.contains("quantized matvec input length"),
            "{name}: {msg}"
        );
        let msg = panic_msg(|| b.matvec_q_into(&q, &[0.0; 6], &mut [0.0; 5]));
        assert!(
            msg.contains("quantized matvec output length"),
            "{name}: {msg}"
        );
        let msg = panic_msg(|| drop(b.gemm(&m, &[vec![0]], &[])));
        assert!(msg.contains("group count mismatch"), "{name}: {msg}");
        let msg = panic_msg(|| drop(b.gemm(&m, &[vec![0]], &[vec![0.0; 5]])));
        assert!(msg.contains("input dimension mismatch"), "{name}: {msg}");
        let msg = panic_msg(|| drop(b.gemm(&m, &[vec![9]], &[vec![0.0; 6]])));
        assert!(msg.contains("row 9 out of bounds (4)"), "{name}: {msg}");
    }
}

// ---------------------------------------------------------------------------
// Matrix-level edge cases (satellite: empty shapes + pinned panics)
// ---------------------------------------------------------------------------

#[test]
fn matrix_matvec_into_handles_empty_shapes() {
    // 0 x N: nothing to write.
    let m = Matrix::zeros(0, 5);
    let mut y: Vec<f32> = vec![];
    m.matvec_into(&[1.0; 5], &mut y);
    assert!(y.is_empty());
    assert!(m.matvec(&[1.0; 5]).is_empty());
    // N x 0: every row is an empty dot, and stale output is overwritten.
    let m = Matrix::zeros(4, 0);
    let mut y = vec![3.5f32; 4];
    m.matvec_into(&[], &mut y);
    assert_eq!(y, vec![0.0; 4]);
    // 0 x 0 round trip.
    let m = Matrix::zeros(0, 0);
    assert!(m.matvec(&[]).is_empty());
}

#[test]
fn matrix_matvec_t_handles_empty_shapes() {
    // 0 x N transpose: zero vector of length N.
    assert_eq!(Matrix::zeros(0, 3).matvec_t(&[]), vec![0.0; 3]);
    // N x 0 transpose: empty output.
    assert!(Matrix::zeros(3, 0).matvec_t(&[1.0; 3]).is_empty());
    assert!(Matrix::zeros(0, 0).matvec_t(&[]).is_empty());
}

#[test]
#[should_panic(expected = "matvec input length")]
fn matrix_matvec_into_rejects_bad_input_length() {
    let mut y = vec![0.0; 2];
    Matrix::zeros(2, 3).matvec_into(&[0.0; 4], &mut y);
}

#[test]
#[should_panic(expected = "matvec output length")]
fn matrix_matvec_into_rejects_bad_output_length() {
    let mut y = vec![0.0; 1];
    Matrix::zeros(2, 3).matvec_into(&[0.0; 3], &mut y);
}

#[test]
#[should_panic(expected = "matvec_t input length")]
fn matrix_matvec_t_rejects_bad_input_length() {
    let _ = Matrix::zeros(2, 3).matvec_t(&[0.0; 3]);
}

// ---------------------------------------------------------------------------
// Blocked vs Reference: bit identity where summation order is preserved
// ---------------------------------------------------------------------------

#[test]
fn blocked_matvec_bit_identical_to_reference() {
    let (reference, blocked) = (BackendKind::Reference.get(), BackendKind::Blocked.get());
    for (i, &(rows, cols)) in SHAPES.iter().enumerate() {
        let m = mat(rows, cols, 400 + i as u64);
        let x = vec_in(cols, 500 + i as u64);
        assert_eq!(
            bits(&blocked.matvec(&m, &x)),
            bits(&reference.matvec(&m, &x)),
            "matvec {rows}x{cols}"
        );
    }
}

#[test]
fn blocked_gemm_bit_identical_to_reference() {
    let weight = mat(11, 37, 42);
    let groups = vec![vec![0, 3, 7], vec![], vec![10, 10, 1, 5, 2]];
    let inputs: Vec<Vec<f32>> = (0..3).map(|i| vec_in(37, 600 + i)).collect();
    let a = BackendKind::Reference.get().gemm(&weight, &groups, &inputs);
    let b = BackendKind::Blocked.get().gemm(&weight, &groups, &inputs);
    assert_eq!(a.len(), b.len());
    for (ya, yb) in a.iter().zip(&b) {
        assert_eq!(bits(ya), bits(yb));
    }
}

#[test]
fn blocked_matvec_t_within_tolerance_of_reference() {
    // Row-fused saxpy re-associates the sum over rows: close, not equal.
    for (i, &(rows, cols)) in SHAPES.iter().enumerate() {
        let m = mat(rows, cols, 700 + i as u64);
        let x = vec_in(rows, 800 + i as u64);
        let a = BackendKind::Reference.get().matvec_t(&m, &x);
        let b = BackendKind::Blocked.get().matvec_t(&m, &x);
        assert_close(&b, &a, 1e-4, &format!("matvec_t {rows}x{cols}"));
    }
}

#[test]
fn blocked_matvec_q_within_tolerance_of_reference() {
    // The blocked dequantizing kernel unrolls lanes inside each group:
    // the group sums re-associate, so this path is tolerance-bounded.
    for &(rows, cols, group) in &[(3usize, 8usize, 4usize), (7, 32, 8), (16, 64, 16)] {
        let q = QuantizedMatrix::quantize(&mat(rows, cols, 900), QuantBits::Int8, group).unwrap();
        let x = vec_in(cols, 901);
        let a = BackendKind::Reference.get().matvec_q(&q, &x);
        let b = BackendKind::Blocked.get().matvec_q(&q, &x);
        assert_close(&b, &a, 1e-4, &format!("matvec_q {rows}x{cols}/{group}"));
    }
}

// ---------------------------------------------------------------------------
// QuantizedI8: analytic error bounds
// ---------------------------------------------------------------------------

#[test]
fn quantized_matvec_within_analytic_bound() {
    let reference = BackendKind::Reference.get();
    let quant = BackendKind::QuantizedI8.get();
    for (i, &(rows, cols)) in SHAPES.iter().enumerate() {
        let m = mat(rows, cols, 1000 + i as u64);
        let x = vec_in(cols, 1100 + i as u64);
        let dense = reference.matvec(&m, &x);
        let approx = quant.matvec(&m, &x);
        let bound = quant_matvec_bound(&m, &x);
        assert_within(&approx, &dense, &bound, &format!("i8 matvec {rows}x{cols}"));
    }
}

#[test]
fn quantized_matvec_q_within_activation_rounding_bound() {
    for &(rows, cols, group) in &[(4usize, 16usize, 8usize), (9, 48, 16), (5, 64, 32)] {
        let q = QuantizedMatrix::quantize(&mat(rows, cols, 1200), QuantBits::Int8, group).unwrap();
        let x = vec_in(cols, 1201);
        let dequant = BackendKind::Reference.get().matvec_q(&q, &x);
        let integer = BackendKind::QuantizedI8.get().matvec_q(&q, &x);
        let bound = quant_matvec_q_bound(&q, &x);
        assert_within(
            &integer,
            &dequant,
            &bound,
            &format!("i8 matvec_q {rows}x{cols}/{group}"),
        );
    }
}

#[test]
fn quantized_round_trips_exactly_representable_inputs() {
    // A matrix already on an exact i8 grid — integers scaled by a power
    // of two, with each group's absmax pinned at 127 so the derived scale
    // (absmax / 127 = 2^-7) is exact — survives quantization losslessly,
    // and both the integer and the f32 accumulations are exact for these
    // small products. The two backends must then agree to the bit.
    let grid = |k: i64| k as f32 / 128.0;
    let m = Matrix::from_fn(6, I8_GROUP, |r, c| {
        if c == 0 {
            grid(127)
        } else {
            grid(((r * 31 + c * 7) % 255) as i64 - 127)
        }
    });
    let x: Vec<f32> = (0..I8_GROUP)
        .map(|j| {
            if j == 0 {
                grid(-127)
            } else {
                grid(((j * 5) % 255) as i64 - 127)
            }
        })
        .collect();
    let dense = BackendKind::Reference.get().matvec(&m, &x);
    let approx = BackendKind::QuantizedI8.get().matvec(&m, &x);
    assert_eq!(bits(&approx), bits(&dense), "grid-aligned i8 matvec");
}

// ---------------------------------------------------------------------------
// Grouped GEMM (satellite: Backend::gemm vs per-row grouped_matvec)
// ---------------------------------------------------------------------------

#[test]
fn grouped_gemm_run_with_matches_run_and_grouped_matvec() {
    let weight = mat(12, 24, 1300);
    let specs = vec![
        GroupedGemmSpec::new(vec![0, 2, 11]),
        GroupedGemmSpec::new(vec![]),
        GroupedGemmSpec::new(vec![5, 5, 7, 1]),
    ];
    let inputs: Vec<Vec<f32>> = (0..3).map(|i| vec_in(24, 1400 + i)).collect();
    let plan = GroupedGemm::plan(&weight, &specs);

    let baseline = plan.run(&inputs);
    let per_row = grouped_matvec(&weight, &specs, &inputs);
    for kind in [BackendKind::Reference, BackendKind::Blocked] {
        let via_backend = plan.run_with(kind.get(), &inputs);
        assert_eq!(via_backend.len(), baseline.len(), "{kind}");
        for (i, (a, b)) in via_backend.iter().zip(&baseline).enumerate() {
            assert_eq!(bits(a), bits(b), "{kind}: run_with vs run, group {i}");
        }
        for (i, (a, b)) in via_backend.iter().zip(&per_row).enumerate() {
            assert_eq!(
                bits(a),
                bits(b),
                "{kind}: run_with vs grouped_matvec, group {i}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Differential proptests over random shapes (incl. 0 x N / N x 0)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn prop_blocked_matvec_bit_identical(seed in 0u64..10_000, rows in 0usize..40, cols in 0usize..70) {
        let m = mat(rows, cols, seed);
        let x = vec_in(cols, seed.wrapping_add(1));
        let a = BackendKind::Reference.get().matvec(&m, &x);
        let b = BackendKind::Blocked.get().matvec(&m, &x);
        prop_assert_eq!(bits(&a), bits(&b));
        let mut into = vec![f32::NAN; rows];
        BackendKind::Blocked.get().matvec_into(&m, &x, &mut into);
        prop_assert_eq!(bits(&a), bits(&into));
    }

    #[test]
    fn prop_blocked_matvec_t_close(seed in 0u64..10_000, rows in 0usize..40, cols in 0usize..40) {
        let m = mat(rows, cols, seed);
        let x = vec_in(rows, seed.wrapping_add(2));
        let a = BackendKind::Reference.get().matvec_t(&m, &x);
        let b = BackendKind::Blocked.get().matvec_t(&m, &x);
        prop_assert_eq!(a.len(), b.len());
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((p - q).abs() <= 1e-4 * (1.0 + p.abs()), "{} vs {}", p, q);
        }
    }

    #[test]
    fn prop_quantized_matvec_within_bound(seed in 0u64..10_000, rows in 0usize..24, cols in 0usize..70) {
        let m = mat(rows, cols, seed);
        let x = vec_in(cols, seed.wrapping_add(3));
        let dense = BackendKind::Reference.get().matvec(&m, &x);
        let approx = BackendKind::QuantizedI8.get().matvec(&m, &x);
        let bound = quant_matvec_bound(&m, &x);
        for (i, (g, w)) in approx.iter().zip(&dense).enumerate() {
            let err = f64::from(g - w).abs();
            prop_assert!(err <= bound[i] * (1.0 + 1e-5) + 1e-4, "row {}: {} > {}", i, err, bound[i]);
        }
    }

    #[test]
    fn prop_gemm_backends_agree(seed in 0u64..10_000, rows in 1usize..16, cols in 0usize..40, n_groups in 0usize..5) {
        let weight = mat(rows, cols, seed);
        let mut rng = Pcg::seed(seed.wrapping_add(4));
        let groups: Vec<Vec<usize>> = (0..n_groups)
            .map(|g| (0..(g + seed as usize) % 4).map(|_| rng.next_u64() as usize % rows).collect())
            .collect();
        let inputs: Vec<Vec<f32>> = (0..n_groups).map(|g| vec_in(cols, seed.wrapping_add(5 + g as u64))).collect();
        let a = BackendKind::Reference.get().gemm(&weight, &groups, &inputs);
        let b = BackendKind::Blocked.get().gemm(&weight, &groups, &inputs);
        prop_assert_eq!(a.len(), b.len());
        for (ya, yb) in a.iter().zip(&b) {
            prop_assert_eq!(bits(ya), bits(yb));
        }
    }

    // Satellite: AWQ quantize -> matvec error against the dense product
    // stays within the (normalized) bound `mse_on` reports, over random
    // calibration samples and alphas.
    #[test]
    fn prop_awq_error_within_mse_on_bound(seed in 0u64..10_000, alpha_step in 0usize..9) {
        let rows = 4 + (seed as usize % 5);
        let cols = 16;
        let w = mat(rows, cols, seed.wrapping_add(6));
        let samples: Vec<Vec<f32>> = (0..6).map(|i| vec_in(cols, seed.wrapping_add(7 + i))).collect();
        let calib = AwqCalibration::from_activations(&samples);
        let alpha = alpha_step as f32 / 8.0;
        let awq = AwqMatrix::quantize_with_alpha(&w, &calib, QuantBits::Int8, 8, alpha).unwrap();

        // Recompute the mean squared matvec error independently and check
        // the reported figure covers it.
        let reported = awq.mse_on(&w, &samples);
        let mut sq = 0.0f64;
        let mut n = 0usize;
        for x in &samples {
            let dense = w.matvec(x);
            let quant = awq.matvec(x);
            for (a, b) in dense.iter().zip(&quant) {
                sq += f64::from(a - b) * f64::from(a - b);
                n += 1;
            }
        }
        let measured = sq / n.max(1) as f64;
        prop_assert!(measured <= reported * (1.0 + 1e-9) + 1e-12, "{} vs {}", measured, reported);

        // The grid search can never do worse than this fixed alpha.
        let searched = AwqMatrix::quantize(&w, &calib, QuantBits::Int8, 8, &samples).unwrap();
        prop_assert!(searched.mse_on(&w, &samples) <= reported + 1e-12);

        // And the backend-routed quantized product agrees bit-for-bit with
        // the AwqMatrix's own kernel when routed through the oracle.
        for x in &samples {
            let own = awq.matvec(x);
            let routed = awq.matvec_with(BackendKind::Reference.get(), x);
            prop_assert_eq!(bits(&own), bits(&routed));
        }
    }
}
