//! Vector kernels used by the transformer decoder and the SpecEE predictor.

/// In-place numerically-stable softmax.
///
/// An empty slice is left unchanged.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

/// Returns the softmax of `x` without mutating it.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let mut out = x.to_vec();
    softmax_inplace(&mut out);
    out
}

/// Log-softmax (stable); used for perplexity accounting.
pub fn log_softmax(x: &[f32]) -> Vec<f32> {
    if x.is_empty() {
        return Vec::new();
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = x.iter().map(|v| (v - max).exp()).sum::<f32>().ln();
    x.iter().map(|v| v - max - log_sum).collect()
}

/// Index of the maximum element (first on ties).
///
/// Returns `None` for an empty slice.
pub fn argmax(x: &[f32]) -> Option<usize> {
    x.iter()
        .enumerate()
        .fold(None, |best: Option<(usize, f32)>, (i, &v)| match best {
            Some((_, bv)) if bv >= v => best,
            _ => Some((i, v)),
        })
        .map(|(i, _)| i)
}

/// Indices of the `k` largest elements, in descending value order.
///
/// Returns all indices if `k >= x.len()`.
pub fn top_k(x: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    let k = k.min(x.len());
    idx.select_nth_unstable_by(
        k.saturating_sub(1).min(x.len().saturating_sub(1)),
        |&a, &b| x[b].partial_cmp(&x[a]).unwrap_or(std::cmp::Ordering::Equal),
    );
    idx.truncate(k);
    idx.sort_by(|&a, &b| x[b].partial_cmp(&x[a]).unwrap_or(std::cmp::Ordering::Equal));
    idx
}

/// RMS normalization: `x_i * g_i / rms(x)` as used by Llama-family models.
///
/// # Panics
///
/// Panics if `x.len() != gain.len()`.
pub fn rmsnorm(x: &[f32], gain: &[f32], eps: f32) -> Vec<f32> {
    assert_eq!(x.len(), gain.len(), "rmsnorm shape");
    let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len().max(1) as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    x.iter()
        .zip(gain.iter())
        .map(|(v, g)| v * inv * g)
        .collect()
}

/// SiLU activation `x * sigmoid(x)` (Llama FFN gate).
#[inline]
pub fn silu(x: f32) -> f32 {
    x * sigmoid(x)
}

/// ReLU activation.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Elementwise `a += b`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn add_inplace(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "add_inplace shape");
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x += y;
    }
}

/// Elementwise `a = a * (1 - t) + b * t` (linear interpolation toward `b`).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn lerp_inplace(a: &mut [f32], b: &[f32], t: f32) {
    assert_eq!(a.len(), b.len(), "lerp_inplace shape");
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x = *x * (1.0 - t) + y * t;
    }
}

/// Euclidean norm.
pub fn l2_norm(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Normalizes a vector to unit L2 norm in place (no-op on zero vectors).
pub fn l2_normalize(x: &mut [f32]) {
    let n = l2_norm(x);
    if n > 0.0 {
        for v in x {
            *v /= n;
        }
    }
}

/// Cosine similarity; zero if either vector is zero.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine shape");
    let (na, nb) = (l2_norm(a), l2_norm(b));
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    crate::matrix::dot(a, b) / (na * nb)
}

/// Mean of a slice (0 for empty input).
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f32>() / x.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert_close(p.iter().sum::<f32>(), 1.0);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_close(*x, *y);
        }
    }

    #[test]
    fn softmax_handles_extremes() {
        let p = softmax(&[1000.0, -1000.0]);
        assert_close(p[0], 1.0);
        assert_close(p[1], 0.0);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = [0.5, -1.0, 2.0, 0.0];
        let ls = log_softmax(&x);
        let p = softmax(&x);
        for (l, q) in ls.iter().zip(p.iter()) {
            assert_close(l.exp(), *q);
        }
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn top_k_descending() {
        let x = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k(&x, 2), vec![1, 3]);
        assert_eq!(top_k(&x, 10), vec![1, 3, 2, 0]);
    }

    #[test]
    fn top_k_of_one() {
        assert_eq!(top_k(&[2.0], 1), vec![0]);
    }

    #[test]
    fn rmsnorm_produces_unit_rms() {
        let x = [3.0, 4.0];
        let g = [1.0, 1.0];
        let y = rmsnorm(&x, &g, 0.0);
        let rms = (y.iter().map(|v| v * v).sum::<f32>() / 2.0).sqrt();
        assert_close(rms, 1.0);
    }

    #[test]
    fn silu_known_values() {
        assert_close(silu(0.0), 0.0);
        assert!(silu(10.0) > 9.9);
    }

    #[test]
    fn sigmoid_bounds() {
        assert_close(sigmoid(0.0), 0.5);
        assert!(sigmoid(20.0) > 0.999);
        assert!(sigmoid(-20.0) < 0.001);
    }

    #[test]
    fn lerp_midpoint() {
        let mut a = vec![0.0, 2.0];
        lerp_inplace(&mut a, &[2.0, 0.0], 0.5);
        assert_eq!(a, vec![1.0, 1.0]);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert_close(cosine(&[1.0, 0.0], &[2.0, 0.0]), 1.0);
        assert_close(cosine(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn l2_normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        l2_normalize(&mut v);
        assert_close(l2_norm(&v), 1.0);
    }
}
