//! Dense and quantized linear-algebra kernels for the SpecEE simulator.
//!
//! This crate is the numerical substrate of the reproduction: row-major
//! [`Matrix`] with mat-vec/mat-mat products, the vector kernels used by a
//! transformer decoder ([`ops`]), group-quantized int8/int4 matrices
//! ([`quant`]) standing in for AWQ-style weight quantization, the block-wise
//! grouped GEMM used by SpecEE's hyper-token feature extraction
//! ([`grouped`]), a pluggable compute-backend seam ([`backend`]) with a
//! scalar oracle, a cache-blocked kernel set, and an i8 integer kernel set,
//! and a deterministic PRNG ([`rng`]) so every experiment is
//! bit-reproducible.
//!
//! # Examples
//!
//! ```
//! use specee_tensor::{Matrix, rng::Pcg};
//!
//! let mut rng = Pcg::seed(7);
//! let w = Matrix::random(4, 3, 0.5, &mut rng);
//! let y = w.matvec(&[1.0, 2.0, 3.0]);
//! assert_eq!(y.len(), 4);
//! ```

#![deny(missing_docs)]

pub mod awq;
pub mod backend;
pub mod grouped;
pub mod matrix;
pub mod ops;
pub mod quant;
pub mod rng;

pub use awq::{AwqCalibration, AwqMatrix};
pub use backend::{Backend, BackendKind, Blocked, QuantizedI8, Reference};
pub use grouped::{grouped_matvec, GroupedGemm, GroupedGemmSpec};
pub use matrix::Matrix;
pub use quant::{QuantBits, QuantError, QuantizedMatrix};
pub use rng::Pcg;
