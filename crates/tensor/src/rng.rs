//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-reproducible across runs and platforms, so all
//! library code draws randomness from this small PCG-XSH-RR generator
//! (seeded explicitly everywhere) instead of an external RNG whose stream
//! may change between crate versions.

/// A deterministic PCG-XSH-RR 64/32 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use specee_tensor::rng::Pcg;
///
/// let mut a = Pcg::seed(42);
/// let mut b = Pcg::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Pcg {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg {
    /// Creates a generator from a 64-bit seed with the default stream.
    pub fn seed(seed: u64) -> Self {
        Self::seed_stream(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Creates a generator from a seed and an explicit stream id, so
    /// independent subsystems can derive uncorrelated streams from one seed.
    pub fn seed_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derives a child generator; useful for splitting one experiment seed
    /// into per-component seeds.
    pub fn split(&mut self, stream: u64) -> Pcg {
        Pcg::seed_stream(self.next_u64(), stream)
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free mapping is fine for simulation use.
        (self.next_f64() * bound as f64) as usize % bound
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo + (self.next_f64() * (hi - lo) as f64) as i64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Log-normal sample with the given parameters of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples an index from an (unnormalized) non-negative weight slice.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Samples from a Zipf distribution over `n` ranks with exponent `s`,
    /// returning a rank in `[0, n)`. Used for synthetic vocabulary draws.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        debug_assert!(n > 0);
        // Inverse-CDF over precomputable harmonic mass would need state; a
        // simple rejection-free approximation via the inverse power method
        // keeps the generator stateless.
        let u = self.next_f64().max(1e-12);
        let x = u.powf(-1.0 / (s - 1.0).max(1e-9));
        ((x - 1.0) as usize).min(n - 1)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Fills a slice with scaled uniform noise in `[-scale, scale)`.
    pub fn fill_uniform(&mut self, out: &mut [f32], scale: f32) {
        for v in out {
            *v = (self.next_f32() * 2.0 - 1.0) * scale;
        }
    }
}

impl Default for Pcg {
    fn default() -> Self {
        Pcg::seed(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg::seed(123);
        let mut b = Pcg::seed(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg::seed(1);
        let mut b = Pcg::seed(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg::seed(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Pcg::seed(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Pcg::seed(17);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn weighted_prefers_heavy_bucket() {
        let mut rng = Pcg::seed(3);
        let w = [0.05, 0.9, 0.05];
        let hits = (0..5000).filter(|_| rng.weighted(&w) == 1).count();
        assert!(hits > 4000, "hits {hits}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = Pcg::seed(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut rng = Pcg::seed(23);
        let head = (0..5000).filter(|_| rng.zipf(1000, 1.2) < 10).count();
        let tail = (0..5000).filter(|_| rng.zipf(1000, 1.2) >= 500).count();
        assert!(head > tail, "head {head} tail {tail}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg::seed(31);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = Pcg::seed(77);
        let mut a = root.split(1);
        let mut b = root.split(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }
}
