//! Activation-aware weight quantization (the actual AWQ mechanism).
//!
//! Plain round-to-nearest group quantization ([`crate::QuantizedMatrix`])
//! treats every weight column equally. AWQ's observation is that the
//! *salient* weight channels — the ones multiplied by large activations —
//! dominate output error, and that scaling them up before quantization
//! (and the activations down by the same factor at runtime) protects them
//! at zero extra memory cost because the inverse scales fold into the
//! preceding normalization in a real deployment.
//!
//! The per-channel scale is `s_c = stat_c^α`, where `stat_c` is the mean
//! absolute activation of channel `c` over a calibration set and `α` is
//! grid-searched to minimize the quantized layer's output MSE on those
//! same activations — exactly the search the AWQ paper describes. `α = 0`
//! degenerates to plain RTN, so the search can never lose to the baseline.

use serde::{Deserialize, Serialize};

use crate::backend::Backend;
use crate::matrix::Matrix;
use crate::quant::{QuantBits, QuantError, QuantizedMatrix};

/// Per-channel activation statistics collected on calibration inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AwqCalibration {
    mean_abs: Vec<f32>,
}

impl AwqCalibration {
    /// Computes mean absolute activation per channel.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or rows disagree in length.
    pub fn from_activations(samples: &[Vec<f32>]) -> Self {
        assert!(!samples.is_empty(), "need calibration activations");
        let dim = samples[0].len();
        let mut mean_abs = vec![0.0f32; dim];
        for s in samples {
            assert_eq!(s.len(), dim, "ragged calibration activations");
            for (acc, v) in mean_abs.iter_mut().zip(s) {
                *acc += v.abs();
            }
        }
        let n = samples.len() as f32;
        for v in &mut mean_abs {
            *v /= n;
        }
        AwqCalibration { mean_abs }
    }

    /// Number of channels.
    pub fn dim(&self) -> usize {
        self.mean_abs.len()
    }

    /// Scales `s_c = stat_c^α`, normalized to geometric mean 1 so the
    /// overall weight magnitude (and the group absmax dynamic range) stays
    /// centred.
    pub fn scales(&self, alpha: f32) -> Vec<f32> {
        let powed: Vec<f32> = self
            .mean_abs
            .iter()
            .map(|&m| m.max(1e-6).powf(alpha))
            .collect();
        let log_mean = powed.iter().map(|&s| f64::from(s.ln())).sum::<f64>() / powed.len() as f64;
        let norm = (log_mean.exp()) as f32;
        powed.iter().map(|&s| (s / norm).clamp(1e-4, 1e4)).collect()
    }
}

/// An AWQ-quantized matrix: per-channel scales folded into the weights,
/// inverse scales applied to activations at runtime.
///
/// # Examples
///
/// ```
/// use specee_tensor::awq::{AwqCalibration, AwqMatrix};
/// use specee_tensor::{Matrix, QuantBits, rng::Pcg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = Pcg::seed(5);
/// let w = Matrix::random(8, 64, 1.0, &mut rng);
/// // Channel 3 carries 20x-larger activations: AWQ should protect it.
/// let acts: Vec<Vec<f32>> = (0..32)
///     .map(|i| (0..64).map(|c| {
///         let base = ((i * 7 + c) % 13) as f32 * 0.05 - 0.3;
///         if c == 3 { base * 20.0 } else { base }
///     }).collect())
///     .collect();
/// let calib = AwqCalibration::from_activations(&acts);
/// let q = AwqMatrix::quantize(&w, &calib, QuantBits::Int4, 32, &acts)?;
/// assert!(q.alpha() >= 0.0);
/// let y = q.matvec(&acts[0]);
/// assert_eq!(y.len(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AwqMatrix {
    q: QuantizedMatrix,
    inv_scales: Vec<f32>,
    alpha: f32,
}

/// Mean squared error between a quantized candidate and the dense layer
/// output over calibration activations.
fn output_mse(w: &Matrix, q: &AwqMatrix, samples: &[Vec<f32>]) -> f64 {
    let mut err = 0.0f64;
    let mut n = 0usize;
    for x in samples {
        let dense = w.matvec(x);
        let quant = q.matvec(x);
        for (a, b) in dense.iter().zip(&quant) {
            let d = f64::from(a - b);
            err += d * d;
        }
        n += dense.len();
    }
    err / n.max(1) as f64
}

impl AwqMatrix {
    /// Quantizes with a fixed `alpha` (no search).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError`] if the group size is invalid.
    ///
    /// # Panics
    ///
    /// Panics if the calibration dimension does not match the columns.
    pub fn quantize_with_alpha(
        w: &Matrix,
        calib: &AwqCalibration,
        bits: QuantBits,
        group_size: usize,
        alpha: f32,
    ) -> Result<Self, QuantError> {
        assert_eq!(calib.dim(), w.cols(), "calibration dim");
        let scales = calib.scales(alpha);
        let scaled = Matrix::from_fn(w.rows(), w.cols(), |r, c| w.get(r, c) * scales[c]);
        let q = QuantizedMatrix::quantize(&scaled, bits, group_size)?;
        Ok(AwqMatrix {
            q,
            inv_scales: scales.iter().map(|&s| 1.0 / s).collect(),
            alpha,
        })
    }

    /// Quantizes with the AWQ grid search over `α ∈ {0, 1/8, …, 1}`,
    /// keeping the candidate with the lowest output MSE on `samples`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError`] if the group size is invalid.
    ///
    /// # Panics
    ///
    /// Panics if the calibration dimension does not match the columns.
    pub fn quantize(
        w: &Matrix,
        calib: &AwqCalibration,
        bits: QuantBits,
        group_size: usize,
        samples: &[Vec<f32>],
    ) -> Result<Self, QuantError> {
        let mut best: Option<(f64, AwqMatrix)> = None;
        for step in 0..=8 {
            let alpha = step as f32 / 8.0;
            let cand = Self::quantize_with_alpha(w, calib, bits, group_size, alpha)?;
            let mse = output_mse(w, &cand, samples);
            if best.as_ref().is_none_or(|(m, _)| mse < *m) {
                best = Some((mse, cand));
            }
        }
        Ok(best.expect("grid is non-empty").1)
    }

    /// The α the search selected (0 means plain RTN won).
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.q.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.q.cols()
    }

    /// `y = W̃ (x ∘ s⁻¹)` — the runtime kernel. The activation scaling is
    /// free in a real deployment (folded into the preceding RMSNorm gain);
    /// here it is one multiply per input element.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols(), "awq matvec input length");
        let scaled: Vec<f32> = x.iter().zip(&self.inv_scales).map(|(v, s)| v * s).collect();
        self.q.matvec(&scaled)
    }

    /// [`Self::matvec`] with the inner quantized product routed through a
    /// compute backend's [`Backend::matvec_q`] kernel. The activation
    /// pre-scaling is identical to [`Self::matvec`], so with the reference
    /// backend this is bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec_with(&self, backend: &dyn Backend, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols(), "awq matvec input length");
        let scaled: Vec<f32> = x.iter().zip(&self.inv_scales).map(|(v, s)| v * s).collect();
        backend.matvec_q(&self.q, &scaled)
    }

    /// Borrows the underlying group-quantized matrix (scaled weights).
    pub fn quantized(&self) -> &QuantizedMatrix {
        &self.q
    }

    /// Product against a subset of rows (the speculative LM-head slice).
    ///
    /// # Panics
    ///
    /// Panics if a row index is out of bounds or `x.len() != cols`.
    pub fn matvec_rows(&self, rows: &[usize], x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols(), "awq matvec input length");
        let scaled: Vec<f32> = x.iter().zip(&self.inv_scales).map(|(v, s)| v * s).collect();
        let dense = self.q.dequantize();
        rows.iter()
            .map(|&r| dense.row(r).iter().zip(&scaled).map(|(w, v)| w * v).sum())
            .collect()
    }

    /// Packed payload bytes (codes + group scales; the per-channel scales
    /// fold into the previous op and cost nothing at rest).
    pub fn bytes(&self) -> usize {
        self.q.bytes()
    }

    /// Output MSE of this candidate on a sample set (error analysis).
    pub fn mse_on(&self, w: &Matrix, samples: &[Vec<f32>]) -> f64 {
        output_mse(w, self, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg;

    /// Calibration activations where a handful of channels dominate —
    /// the regime AWQ is built for.
    fn skewed_activations(dim: usize, n: usize, hot: &[usize], factor: f32) -> Vec<Vec<f32>> {
        let mut rng = Pcg::seed(11);
        (0..n)
            .map(|_| {
                (0..dim)
                    .map(|c| {
                        let v = (rng.next_f32() - 0.5) * 0.4;
                        if hot.contains(&c) {
                            v * factor
                        } else {
                            v
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn calibration_reflects_channel_magnitudes() {
        let acts = skewed_activations(16, 64, &[2, 5], 10.0);
        let calib = AwqCalibration::from_activations(&acts);
        let stats = calib.scales(1.0);
        assert!(stats[2] > stats[0] * 3.0, "{} vs {}", stats[2], stats[0]);
        assert!(stats[5] > stats[1] * 3.0);
    }

    #[test]
    fn scales_normalized_to_geometric_mean_one() {
        let acts = skewed_activations(32, 64, &[7], 20.0);
        let calib = AwqCalibration::from_activations(&acts);
        for alpha in [0.0f32, 0.5, 1.0] {
            let s = calib.scales(alpha);
            let log_mean: f64 = s.iter().map(|&v| f64::from(v.ln())).sum::<f64>() / s.len() as f64;
            assert!(log_mean.abs() < 1e-3, "alpha {alpha} log-mean {log_mean}");
        }
    }

    #[test]
    fn alpha_zero_is_plain_rtn() {
        let mut rng = Pcg::seed(21);
        let w = Matrix::random(8, 64, 1.0, &mut rng);
        let acts = skewed_activations(64, 32, &[3], 15.0);
        let calib = AwqCalibration::from_activations(&acts);
        let awq0 = AwqMatrix::quantize_with_alpha(&w, &calib, QuantBits::Int4, 32, 0.0).unwrap();
        let rtn = QuantizedMatrix::quantize(&w, QuantBits::Int4, 32).unwrap();
        let x = &acts[0];
        let ya = awq0.matvec(x);
        let yr = rtn.matvec(x);
        for (a, b) in ya.iter().zip(&yr) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn search_beats_plain_rtn_on_skewed_activations() {
        let mut rng = Pcg::seed(23);
        let w = Matrix::random(16, 128, 1.0, &mut rng);
        let acts = skewed_activations(128, 48, &[3, 17, 64], 25.0);
        let calib = AwqCalibration::from_activations(&acts);
        let searched = AwqMatrix::quantize(&w, &calib, QuantBits::Int4, 32, &acts).unwrap();
        let rtn = AwqMatrix::quantize_with_alpha(&w, &calib, QuantBits::Int4, 32, 0.0).unwrap();
        let mse_awq = searched.mse_on(&w, &acts);
        let mse_rtn = rtn.mse_on(&w, &acts);
        assert!(searched.alpha() > 0.0, "search picked α = 0");
        assert!(
            mse_awq < mse_rtn * 0.8,
            "awq {mse_awq} not clearly better than rtn {mse_rtn}"
        );
    }

    #[test]
    fn search_never_loses_to_rtn() {
        // Uniform activations: no saliency to exploit; search may pick any
        // α but must not do worse than α = 0.
        let mut rng = Pcg::seed(25);
        let w = Matrix::random(8, 64, 1.0, &mut rng);
        let acts = skewed_activations(64, 32, &[], 1.0);
        let calib = AwqCalibration::from_activations(&acts);
        let searched = AwqMatrix::quantize(&w, &calib, QuantBits::Int8, 32, &acts).unwrap();
        let rtn = AwqMatrix::quantize_with_alpha(&w, &calib, QuantBits::Int8, 32, 0.0).unwrap();
        assert!(searched.mse_on(&w, &acts) <= rtn.mse_on(&w, &acts) + 1e-12);
    }

    #[test]
    fn payload_identical_to_plain_quantization() {
        let mut rng = Pcg::seed(27);
        let w = Matrix::random(8, 64, 1.0, &mut rng);
        let acts = skewed_activations(64, 16, &[1], 10.0);
        let calib = AwqCalibration::from_activations(&acts);
        let awq = AwqMatrix::quantize(&w, &calib, QuantBits::Int4, 32, &acts).unwrap();
        let rtn = QuantizedMatrix::quantize(&w, QuantBits::Int4, 32).unwrap();
        assert_eq!(awq.bytes(), rtn.bytes());
    }

    #[test]
    #[should_panic(expected = "calibration dim")]
    fn dim_mismatch_rejected() {
        let w = Matrix::zeros(4, 32);
        let calib = AwqCalibration::from_activations(&[vec![1.0; 16]]);
        let _ = AwqMatrix::quantize_with_alpha(&w, &calib, QuantBits::Int8, 16, 0.5);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_activations_rejected() {
        let _ = AwqCalibration::from_activations(&[vec![1.0; 4], vec![1.0; 5]]);
    }
}
