//! Block-wise grouped GEMM for hyper-token feature extraction (SpecEE T3).
//!
//! In tree-based speculative decoding every node of the token tree needs the
//! logits of *its own* small candidate set against the LM head. Computing
//! those one node at a time re-reads the shared weight rows once per node.
//! The paper's custom GPU operator (cutlass group GEMM / MegaBlocks
//! block-wise matmul, Fig. 13) batches the whole tree into one kernel. This
//! module is the CPU equivalent: a [`GroupedGemm`] plan gathers the union of
//! candidate rows once and then evaluates every (node, candidate) product in
//! a single pass.

use serde::{Deserialize, Serialize};

use crate::backend::Backend;
use crate::matrix::{dot, Matrix};

/// Candidate weight-row ids for one group (one token-tree node).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupedGemmSpec {
    /// Row indices of the weight matrix this group multiplies against.
    pub row_ids: Vec<usize>,
}

impl GroupedGemmSpec {
    /// Creates a spec from candidate row ids.
    pub fn new(row_ids: Vec<usize>) -> Self {
        GroupedGemmSpec { row_ids }
    }
}

/// A planned block-wise grouped mat-vec against a shared weight matrix.
///
/// # Examples
///
/// ```
/// use specee_tensor::{GroupedGemm, GroupedGemmSpec, Matrix, rng::Pcg};
///
/// let mut rng = Pcg::seed(4);
/// let head = Matrix::random(100, 8, 1.0, &mut rng);
/// let specs = vec![
///     GroupedGemmSpec::new(vec![3, 17]),
///     GroupedGemmSpec::new(vec![17, 42, 5]),
/// ];
/// let plan = GroupedGemm::plan(&head, &specs);
/// let inputs = vec![vec![0.5; 8], vec![-0.25; 8]];
/// let out = plan.run(&inputs);
/// assert_eq!(out[1].len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct GroupedGemm {
    /// Sorted union of all requested rows.
    unique_rows: Vec<usize>,
    /// Gathered copies of the unique rows (read once at plan time).
    compact: Matrix,
    /// For each group, indices into `unique_rows`.
    group_indices: Vec<Vec<usize>>,
}

impl GroupedGemm {
    /// Builds a plan by gathering the union of candidate rows once.
    ///
    /// # Panics
    ///
    /// Panics if any row id is out of bounds for `weight`.
    pub fn plan(weight: &Matrix, specs: &[GroupedGemmSpec]) -> Self {
        let mut unique_rows: Vec<usize> = specs
            .iter()
            .flat_map(|s| s.row_ids.iter().copied())
            .collect();
        unique_rows.sort_unstable();
        unique_rows.dedup();
        for &r in &unique_rows {
            assert!(
                r < weight.rows(),
                "row {r} out of bounds ({})",
                weight.rows()
            );
        }
        let mut compact = Matrix::zeros(unique_rows.len(), weight.cols());
        for (i, &r) in unique_rows.iter().enumerate() {
            compact.row_mut(i).copy_from_slice(weight.row(r));
        }
        let group_indices = specs
            .iter()
            .map(|s| {
                s.row_ids
                    .iter()
                    .map(|r| unique_rows.binary_search(r).expect("row gathered above"))
                    .collect()
            })
            .collect();
        GroupedGemm {
            unique_rows,
            compact,
            group_indices,
        }
    }

    /// Number of groups in the plan.
    pub fn group_count(&self) -> usize {
        self.group_indices.len()
    }

    /// Number of distinct weight rows gathered by the plan.
    pub fn unique_row_count(&self) -> usize {
        self.unique_rows.len()
    }

    /// Runs the plan: `out[g][i] = weight[specs[g].row_ids[i]] · inputs[g]`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the group count or any input
    /// has the wrong dimension.
    pub fn run(&self, inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(
            inputs.len(),
            self.group_indices.len(),
            "group count mismatch"
        );
        inputs
            .iter()
            .zip(self.group_indices.iter())
            .map(|(x, idx)| {
                assert_eq!(x.len(), self.compact.cols(), "input dimension mismatch");
                idx.iter().map(|&i| dot(self.compact.row(i), x)).collect()
            })
            .collect()
    }

    /// Runs the plan through a compute backend's batched
    /// [`Backend::gemm`] kernel instead of the built-in scalar loop.
    /// With the reference backend this is bit-identical to [`Self::run`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the group count or any input
    /// has the wrong dimension.
    pub fn run_with(&self, backend: &dyn Backend, inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        backend.gemm(&self.compact, &self.group_indices, inputs)
    }

    /// Bytes of weight data read at plan time (the shared-read win: each
    /// unique row is touched once regardless of how many groups request it).
    pub fn gathered_bytes(&self) -> usize {
        self.compact.bytes()
    }
}

/// The unbatched reference implementation: every group gathers its own rows
/// (re-reading duplicates). Used by the microbenchmarks and tests as the
/// baseline the grouped plan is compared against.
///
/// # Panics
///
/// Panics if shapes disagree or row ids are out of bounds.
pub fn grouped_matvec(
    weight: &Matrix,
    specs: &[GroupedGemmSpec],
    inputs: &[Vec<f32>],
) -> Vec<Vec<f32>> {
    assert_eq!(specs.len(), inputs.len(), "group count mismatch");
    specs
        .iter()
        .zip(inputs.iter())
        .map(|(s, x)| weight.matvec_rows(&s.row_ids, x))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg;

    fn setup() -> (Matrix, Vec<GroupedGemmSpec>, Vec<Vec<f32>>) {
        let mut rng = Pcg::seed(8);
        let weight = Matrix::random(64, 16, 1.0, &mut rng);
        let specs = vec![
            GroupedGemmSpec::new(vec![1, 5, 9]),
            GroupedGemmSpec::new(vec![5, 9, 33]),
            GroupedGemmSpec::new(vec![0]),
        ];
        let inputs = (0..3)
            .map(|g| (0..16).map(|i| (g * 16 + i) as f32 * 0.01).collect())
            .collect();
        (weight, specs, inputs)
    }

    #[test]
    fn plan_matches_naive() {
        let (w, specs, inputs) = setup();
        let plan = GroupedGemm::plan(&w, &specs);
        let fast = plan.run(&inputs);
        let slow = grouped_matvec(&w, &specs, &inputs);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(slow.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn dedup_reduces_gathered_rows() {
        let (w, specs, _) = setup();
        let plan = GroupedGemm::plan(&w, &specs);
        let requested: usize = specs.iter().map(|s| s.row_ids.len()).sum();
        assert_eq!(plan.unique_row_count(), 5);
        assert!(plan.unique_row_count() < requested);
        assert_eq!(plan.group_count(), 3);
    }

    #[test]
    fn preserves_requested_order_within_group() {
        let mut rng = Pcg::seed(9);
        let w = Matrix::random(10, 4, 1.0, &mut rng);
        let specs = vec![GroupedGemmSpec::new(vec![7, 2])];
        let x = vec![vec![1.0, 0.0, 0.0, 0.0]];
        let out = GroupedGemm::plan(&w, &specs).run(&x);
        assert!((out[0][0] - w.get(7, 0)).abs() < 1e-6);
        assert!((out[0][1] - w.get(2, 0)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn plan_validates_rows() {
        let w = Matrix::zeros(4, 4);
        GroupedGemm::plan(&w, &[GroupedGemmSpec::new(vec![4])]);
    }

    #[test]
    fn empty_specs_produce_empty_output() {
        let w = Matrix::zeros(4, 4);
        let plan = GroupedGemm::plan(&w, &[]);
        assert!(plan.run(&[]).is_empty());
    }
}
