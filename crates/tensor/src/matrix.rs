//! Row-major dense matrices.

use serde::{Deserialize, Serialize};

use crate::rng::Pcg;

/// A row-major dense `f32` matrix.
///
/// The decoder weights, LM head, embeddings, and MLP predictor weights of
/// the simulator are all `Matrix` values. The layout is row-major so that
/// `matvec` (the dominant decode-phase operation) walks memory linearly.
///
/// # Examples
///
/// ```
/// use specee_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix with uniform noise in `[-scale, scale)`.
    pub fn random(rows: usize, cols: usize, scale: f32, rng: &mut Pcg) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        rng.fill_uniform(&mut m.data, scale);
        m
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Computes `y = M x` where `x.len() == cols`, producing `rows` outputs.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `matvec` into a caller-provided buffer (avoids allocation in the
    /// decode hot loop).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec input length");
        assert_eq!(y.len(), self.rows, "matvec output length");
        for (r, out) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *out = dot(row, x);
        }
    }

    /// Computes `y = Mᵀ x` where `x.len() == rows`, producing `cols` outputs.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t input length");
        let mut y = vec![0.0; self.cols];
        for (r, &xv) in x.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, &w) in row.iter().enumerate() {
                y[c] += w * xv;
            }
        }
        y
    }

    /// Computes the logits of a *subset* of rows: `y_i = M[rows[i]] · x`.
    ///
    /// This is the speculative LM-head slice of SpecEE T1: instead of a full
    /// `vocab × hidden` product, only the candidate token rows are touched.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or `x.len() != cols`.
    pub fn matvec_rows(&self, row_ids: &[usize], x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec_rows input length");
        row_ids
            .iter()
            .map(|&r| {
                assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
                dot(self.row(r), x)
            })
            .collect()
    }

    /// Dense matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(r);
                for (c, &b) in orow.iter().enumerate() {
                    out_row[c] += a * b;
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Scales every element in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// In-place `self += other * s`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled(&mut self, other: &Matrix, s: f32) {
        assert_eq!(self.rows, other.rows, "add_scaled rows");
        assert_eq!(self.cols, other.cols, "add_scaled cols");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * s;
        }
    }

    /// Memory footprint of the payload in bytes (f32 storage).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics in debug builds if lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // 4-lane unrolling: the optimizer vectorizes this reliably.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut sum = s0 + s1 + s2 + s3;
    for j in chunks * 4..a.len() {
        sum += a[j] * b[j];
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let mut rng = Pcg::seed(1);
        let m = Matrix::random(5, 7, 1.0, &mut rng);
        let x: Vec<f32> = (0..5).map(|i| i as f32 - 2.0).collect();
        let direct = m.matvec_t(&x);
        let via_t = m.transpose().matvec(&x);
        for (a, b) in direct.iter().zip(via_t.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn matvec_rows_is_slice_of_full() {
        let mut rng = Pcg::seed(2);
        let m = Matrix::random(10, 6, 1.0, &mut rng);
        let x: Vec<f32> = (0..6).map(|i| 0.3 * i as f32).collect();
        let full = m.matvec(&x);
        let sel = m.matvec_rows(&[7, 0, 3], &x);
        assert_eq!(sel, vec![full[7], full[0], full[3]]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = Pcg::seed(3);
        let m = Matrix::random(4, 4, 1.0, &mut rng);
        let i = Matrix::identity(4);
        assert_eq!(m.matmul(&i), m);
    }

    #[test]
    fn matmul_matches_matvec_per_column() {
        let mut rng = Pcg::seed(4);
        let a = Matrix::random(3, 5, 1.0, &mut rng);
        let b = Matrix::random(5, 2, 1.0, &mut rng);
        let c = a.matmul(&b);
        for col in 0..2 {
            let bcol: Vec<f32> = (0..5).map(|r| b.get(r, col)).collect();
            let expect = a.matvec(&bcol);
            for (r, &e) in expect.iter().enumerate() {
                assert!((c.get(r, col) - e).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let mut rng = Pcg::seed(5);
        let m = Matrix::random(6, 3, 1.0, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    #[should_panic(expected = "matvec input length")]
    fn matvec_validates_shape() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::identity(2);
        a.add_scaled(&b, 2.5);
        assert_eq!(a.get(0, 0), 2.5);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn bytes_counts_f32_payload() {
        assert_eq!(Matrix::zeros(3, 4).bytes(), 48);
    }
}
