//! Group-quantized weight matrices (AWQ-style int8/int4 substitution).
//!
//! The paper composes SpecEE with AWQ weight quantization. This module
//! provides the mechanism that name stands for in the simulator: per-group
//! absmax quantization of each weight row, with dequantize-on-the-fly
//! mat-vec. Memory accounting reflects the packed payload so the roofline
//! model sees the bandwidth reduction that makes AWQ fast at decode time.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// Quantization precision for [`QuantizedMatrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantBits {
    /// 8-bit signed integers, one scale per group.
    Int8,
    /// 4-bit signed integers packed two per byte, one scale per group.
    Int4,
}

impl QuantBits {
    /// Bits per weight element.
    pub fn bits(self) -> usize {
        match self {
            QuantBits::Int8 => 8,
            QuantBits::Int4 => 4,
        }
    }

    /// The maximum representable magnitude of the integer code.
    fn qmax(self) -> f32 {
        match self {
            QuantBits::Int8 => 127.0,
            QuantBits::Int4 => 7.0,
        }
    }
}

impl fmt::Display for QuantBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantBits::Int8 => write!(f, "int8"),
            QuantBits::Int4 => write!(f, "int4"),
        }
    }
}

/// Error produced when constructing a quantized matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// The group size must be positive and divide the column count.
    BadGroupSize {
        /// Requested group size.
        group_size: usize,
        /// Number of matrix columns.
        cols: usize,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::BadGroupSize { group_size, cols } => write!(
                f,
                "group size {group_size} must be positive and divide column count {cols}"
            ),
        }
    }
}

impl std::error::Error for QuantError {}

/// A row-major weight matrix quantized with per-group absmax scales.
///
/// # Examples
///
/// ```
/// use specee_tensor::{Matrix, QuantBits, QuantizedMatrix, rng::Pcg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = Pcg::seed(1);
/// let w = Matrix::random(8, 32, 1.0, &mut rng);
/// let q = QuantizedMatrix::quantize(&w, QuantBits::Int8, 16)?;
/// let x = vec![0.1; 32];
/// let dense = w.matvec(&x);
/// let quant = q.matvec(&x);
/// assert!((dense[0] - quant[0]).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    group_size: usize,
    bits: QuantBits,
    /// Integer codes, one i8 per element even for int4 (packing is modelled
    /// in `bytes()`, not in storage, to keep the kernel simple).
    codes: Vec<i8>,
    /// One scale per (row, group).
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes a dense matrix with the given precision and group size.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadGroupSize`] if `group_size` is zero or does
    /// not divide the column count.
    pub fn quantize(m: &Matrix, bits: QuantBits, group_size: usize) -> Result<Self, QuantError> {
        if group_size == 0 || m.cols() % group_size != 0 {
            return Err(QuantError::BadGroupSize {
                group_size,
                cols: m.cols(),
            });
        }
        let groups_per_row = m.cols() / group_size;
        let mut codes = Vec::with_capacity(m.len());
        let mut scales = Vec::with_capacity(m.rows() * groups_per_row);
        let qmax = bits.qmax();
        for r in 0..m.rows() {
            let row = m.row(r);
            for g in 0..groups_per_row {
                let chunk = &row[g * group_size..(g + 1) * group_size];
                let absmax = chunk.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
                let scale = if absmax > 0.0 { absmax / qmax } else { 1.0 };
                scales.push(scale);
                for &v in chunk {
                    let q = (v / scale).round().clamp(-qmax, qmax);
                    codes.push(q as i8);
                }
            }
        }
        Ok(QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            group_size,
            bits,
            codes,
            scales,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Quantization precision.
    pub fn bits(&self) -> QuantBits {
        self.bits
    }

    /// Group size used at quantization time.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The raw integer codes, row-major, one i8 per element (backends read
    /// these directly for integer inner loops).
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// The per-(row, group) scales, row-major.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Dequantize-on-the-fly mat-vec `y = Q x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `matvec` into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "quantized matvec input length");
        assert_eq!(y.len(), self.rows, "quantized matvec output length");
        let groups_per_row = self.cols / self.group_size;
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for g in 0..groups_per_row {
                let scale = self.scales[r * groups_per_row + g];
                let base = r * self.cols + g * self.group_size;
                let mut gsum = 0.0f32;
                for i in 0..self.group_size {
                    gsum += f32::from(self.codes[base + i]) * x[g * self.group_size + i];
                }
                acc += gsum * scale;
            }
            *out = acc;
        }
    }

    /// Reconstructs the dense approximation (testing / error analysis).
    pub fn dequantize(&self) -> Matrix {
        let groups_per_row = self.cols / self.group_size;
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            let g = c / self.group_size;
            f32::from(self.codes[r * self.cols + c]) * self.scales[r * groups_per_row + g]
        })
    }

    /// Packed payload size in bytes: codes at `bits()` bits each plus one
    /// f16-equivalent scale (2 bytes) per group.
    pub fn bytes(&self) -> usize {
        let code_bits = self.codes.len() * self.bits.bits();
        code_bits.div_ceil(8) + self.scales.len() * 2
    }

    /// Worst-case elementwise reconstruction error bound: half a quantization
    /// step for the largest group scale.
    pub fn max_step(&self) -> f32 {
        self.scales.iter().fold(0.0f32, |a, &s| a.max(s)) * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg;

    #[test]
    fn roundtrip_error_within_step() {
        let mut rng = Pcg::seed(1);
        let m = Matrix::random(6, 64, 2.0, &mut rng);
        let q = QuantizedMatrix::quantize(&m, QuantBits::Int8, 32).unwrap();
        let d = q.dequantize();
        let step = q.max_step();
        for (a, b) in m.as_slice().iter().zip(d.as_slice().iter()) {
            assert!((a - b).abs() <= step + 1e-6, "{a} vs {b} step {step}");
        }
    }

    #[test]
    fn int4_coarser_than_int8() {
        let mut rng = Pcg::seed(2);
        let m = Matrix::random(4, 32, 1.0, &mut rng);
        let q8 = QuantizedMatrix::quantize(&m, QuantBits::Int8, 16).unwrap();
        let q4 = QuantizedMatrix::quantize(&m, QuantBits::Int4, 16).unwrap();
        let err = |q: &QuantizedMatrix| {
            let d = q.dequantize();
            m.as_slice()
                .iter()
                .zip(d.as_slice().iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        assert!(err(&q4) >= err(&q8));
    }

    #[test]
    fn matvec_close_to_dense() {
        let mut rng = Pcg::seed(3);
        let m = Matrix::random(16, 128, 0.5, &mut rng);
        let q = QuantizedMatrix::quantize(&m, QuantBits::Int8, 64).unwrap();
        let x: Vec<f32> = (0..128).map(|i| ((i % 7) as f32 - 3.0) * 0.1).collect();
        let yd = m.matvec(&x);
        let yq = q.matvec(&x);
        for (a, b) in yd.iter().zip(yq.iter()) {
            assert!((a - b).abs() < 0.1, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_bad_group_size() {
        let m = Matrix::zeros(2, 10);
        assert!(QuantizedMatrix::quantize(&m, QuantBits::Int8, 3).is_err());
        assert!(QuantizedMatrix::quantize(&m, QuantBits::Int8, 0).is_err());
    }

    #[test]
    fn bytes_reflect_precision() {
        let m = Matrix::zeros(4, 64);
        let q8 = QuantizedMatrix::quantize(&m, QuantBits::Int8, 32).unwrap();
        let q4 = QuantizedMatrix::quantize(&m, QuantBits::Int4, 32).unwrap();
        assert!(q4.bytes() < q8.bytes());
        assert!(q8.bytes() < m.bytes());
    }

    #[test]
    fn zero_matrix_quantizes_to_zero() {
        let m = Matrix::zeros(3, 16);
        let q = QuantizedMatrix::quantize(&m, QuantBits::Int4, 16).unwrap();
        assert!(q.matvec(&[1.0; 16]).iter().all(|&v| v == 0.0));
    }
}
