//! Pluggable compute backends for the dense and quantized kernels.
//!
//! Every mat-vec this workspace executes — decoder projections, LM-head
//! reads, predictor MLPs, the grouped hyper-token GEMM — funnels through
//! the [`Backend`] trait, so a single switch retargets the whole engine
//! stack (the candle `Device` idea, specialised to this repo's CPU-only
//! op set). Three backends ship:
//!
//! * [`Reference`] — the original scalar loops of [`Matrix`] and
//!   [`QuantizedMatrix`], kept verbatim. This is the *oracle*: the
//!   conformance suite (`tests/conformance.rs`) pins every other backend
//!   to it, bit-exactly where the f32 summation order is preserved and
//!   within explicit error bounds where it is not.
//! * [`Blocked`] — cache-blocked and unrolled with `chunks_exact` so the
//!   autovectorizer can keep several independent accumulator chains in
//!   flight. `matvec`/`matvec_into`/`gemm` reduce each row in *exactly*
//!   the reference order (four lanes, `s0+s1+s2+s3`, sequential tail), so
//!   they are bit-identical to [`Reference`]; `matvec_t` and the
//!   quantized kernel re-associate across rows/lanes and are only
//!   tolerance-equal.
//! * [`QuantizedI8`] — i8 weights with per-group scales and an integer
//!   (`i32`-accumulating) inner loop. On pre-quantized weights
//!   ([`Backend::matvec_q_into`]) only the *activations* are quantized on
//!   the fly; on f32 operands the weights are group-quantized per call as
//!   well, making every f32 op approximate. The error is strictly bounded
//!   by the round-to-nearest step of each group — the conformance suite
//!   computes that bound per instance and asserts it, so quantized
//!   numbers are trustworthy exactly as far as the reported bound.
//!
//! # Examples
//!
//! ```
//! use specee_tensor::{BackendKind, Matrix, rng::Pcg};
//!
//! let mut rng = Pcg::seed(3);
//! let m = Matrix::random(16, 64, 1.0, &mut rng);
//! let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.1).sin()).collect();
//! let reference = BackendKind::Reference.get().matvec(&m, &x);
//! let blocked = BackendKind::Blocked.get().matvec(&m, &x);
//! assert_eq!(reference, blocked); // bit-identical, not merely close
//! ```

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::matrix::{dot, Matrix};
use crate::quant::QuantizedMatrix;

/// Group width used when [`QuantizedI8`] quantizes f32 operands on the
/// fly (pre-quantized [`QuantizedMatrix`] weights keep their own group
/// size). Ragged tails shorter than this are quantized as their own
/// (smaller) group, so arbitrary shapes are accepted.
pub const I8_GROUP: usize = 32;

/// A CPU compute backend: the complete kernel set the decoder stack needs.
///
/// Implementations must honour the same shape contracts (and panic
/// messages) as the [`Matrix`] methods they retarget; the conformance
/// suite instantiates one shared test body per backend to enforce this.
pub trait Backend: fmt::Debug + Send + Sync {
    /// Short stable name (`"reference"`, `"blocked"`, `"quant"`).
    fn name(&self) -> &'static str;

    /// Computes `y = M x` into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != m.cols()` or `y.len() != m.rows()`, with the
    /// same messages as [`Matrix::matvec_into`].
    fn matvec_into(&self, m: &Matrix, x: &[f32], y: &mut [f32]);

    /// Computes `y = M x`, allocating the output.
    fn matvec(&self, m: &Matrix, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0; m.rows()];
        self.matvec_into(m, x, &mut y);
        y
    }

    /// Computes `y = Mᵀ x` where `x.len() == m.rows()`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != m.rows()`, with the same message as
    /// [`Matrix::matvec_t`].
    fn matvec_t(&self, m: &Matrix, x: &[f32]) -> Vec<f32>;

    /// Batched grouped mat-vec (the hyper-token / tree-verification
    /// kernel): `out[g][i] = weight[groups[g][i]] · inputs[g]`.
    ///
    /// # Panics
    ///
    /// Panics if `groups.len() != inputs.len()`, an input's length differs
    /// from `weight.cols()`, or a row index is out of bounds.
    fn gemm(&self, weight: &Matrix, groups: &[Vec<usize>], inputs: &[Vec<f32>]) -> Vec<Vec<f32>>;

    /// Quantized mat-vec `y = Q x` over pre-quantized i8 weights.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch with the same messages as
    /// [`QuantizedMatrix::matvec_into`].
    fn matvec_q_into(&self, q: &QuantizedMatrix, x: &[f32], y: &mut [f32]);

    /// Quantized mat-vec, allocating the output.
    fn matvec_q(&self, q: &QuantizedMatrix, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0; q.rows()];
        self.matvec_q_into(q, x, &mut y);
        y
    }
}

/// Copyable backend selector: what engine configs, CLIs and model structs
/// store instead of a trait object.
///
/// The default is [`BackendKind::Reference`], so every existing
/// construction path keeps its seed-era bit-exact numerics unless a
/// caller opts into a faster backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BackendKind {
    /// The scalar oracle ([`Reference`]).
    #[default]
    Reference,
    /// Cache-blocked, unroll-friendly kernels ([`Blocked`]).
    Blocked,
    /// i8-quantizing integer kernels ([`QuantizedI8`]).
    QuantizedI8,
}

impl BackendKind {
    /// Every backend, in oracle-first order (what the conformance suite
    /// and the microbenchmarks iterate over).
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Reference,
        BackendKind::Blocked,
        BackendKind::QuantizedI8,
    ];

    /// The backend implementation this kind selects.
    pub fn get(self) -> &'static dyn Backend {
        match self {
            BackendKind::Reference => &Reference,
            BackendKind::Blocked => &Blocked,
            BackendKind::QuantizedI8 => &QuantizedI8,
        }
    }

    /// Whether f32 ops through this backend are exact (`false` means
    /// outputs carry a bounded quantization error).
    pub fn is_exact(self) -> bool {
        !matches!(self, BackendKind::QuantizedI8)
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.get().name())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reference" => Ok(BackendKind::Reference),
            "blocked" => Ok(BackendKind::Blocked),
            "quant" | "quantized" | "i8" => Ok(BackendKind::QuantizedI8),
            other => Err(format!(
                "unknown backend `{other}` (reference, blocked, quant)"
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Reference
// ---------------------------------------------------------------------------

/// The oracle backend: delegates to the original scalar loops of
/// [`Matrix`] and [`QuantizedMatrix`], unchanged from the seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Reference;

impl Backend for Reference {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn matvec_into(&self, m: &Matrix, x: &[f32], y: &mut [f32]) {
        m.matvec_into(x, y);
    }

    fn matvec_t(&self, m: &Matrix, x: &[f32]) -> Vec<f32> {
        m.matvec_t(x)
    }

    fn gemm(&self, weight: &Matrix, groups: &[Vec<usize>], inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(groups.len(), inputs.len(), "group count mismatch");
        groups
            .iter()
            .zip(inputs.iter())
            .map(|(rows, x)| {
                assert_eq!(x.len(), weight.cols(), "input dimension mismatch");
                rows.iter()
                    .map(|&r| {
                        assert!(
                            r < weight.rows(),
                            "row {r} out of bounds ({})",
                            weight.rows()
                        );
                        dot(weight.row(r), x)
                    })
                    .collect()
            })
            .collect()
    }

    fn matvec_q_into(&self, q: &QuantizedMatrix, x: &[f32], y: &mut [f32]) {
        q.matvec_into(x, y);
    }
}

// ---------------------------------------------------------------------------
// Blocked
// ---------------------------------------------------------------------------

/// Cache-blocked, `chunks_exact`-unrolled kernels.
///
/// `matvec`/`gemm` walk four rows at a time, each row carrying the same
/// four-lane accumulator pattern (and reduction order) as
/// [`crate::matrix::dot`] — bounds checks vanish, the x-chunk load is
/// shared across the row block, and the independent accumulator chains
/// keep the multiply pipes busy, while every row's result stays
/// bit-identical to [`Reference`]. On x86-64 the mat-vec additionally
/// dispatches (at runtime, via `is_x86_feature_detected!`) to an AVX
/// kernel that packs the four rows' four-lane accumulators into two
/// 256-bit registers — the per-lane addition chains are untouched, so
/// that path is *also* bit-identical to the scalar oracle, just ~2x
/// faster. `matvec_t` re-associates across the row block (four
/// saxpys fused per pass over `y`) and is only tolerance-equal.
#[derive(Debug, Clone, Copy, Default)]
pub struct Blocked;

/// Wide-register x86-64 mat-vec kernel used by [`Blocked`].
///
/// The kernel replicates the reference reduction exactly: each weight
/// row keeps four f32 accumulator lanes updated in column order, lanes
/// are combined `s0+s1+s2+s3`, and the ragged column tail is added
/// sequentially — only the *packing* of independent lanes into 256-bit
/// registers differs, which IEEE-754 addition cannot observe.
/// (An AVX-512 variant measured no faster — the kernel is memory-bound —
/// and its intrinsics would raise the workspace MSRV, so AVX is the
/// widest path shipped.)
#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    use crate::matrix::{dot, Matrix};

    /// Ordered horizontal sum `v0 + v1 + v2 + v3` (the reference lane
    /// reduction; deliberately not a tree reduction).
    #[inline]
    unsafe fn hsum_ordered(v: __m128) -> f32 {
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), v);
        lanes[0] + lanes[1] + lanes[2] + lanes[3]
    }

    /// AVX kernel: two 256-bit accumulators, two rows each.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX is available and shapes already validated
    /// (`x.len() == m.cols()`, `y.len() == m.rows()`).
    #[target_feature(enable = "avx")]
    pub unsafe fn matvec_avx(m: &Matrix, x: &[f32], y: &mut [f32]) {
        let cols = m.cols();
        let data = m.as_slice();
        let chunks = cols / 4;
        let tail = chunks * 4;
        let blocks = m.rows() / 4;
        for b in 0..blocks {
            let r = b * 4;
            let p0 = data.as_ptr().add(r * cols);
            let p1 = data.as_ptr().add((r + 1) * cols);
            let p2 = data.as_ptr().add((r + 2) * cols);
            let p3 = data.as_ptr().add((r + 3) * cols);
            let mut acc01 = _mm256_setzero_ps();
            let mut acc23 = _mm256_setzero_ps();
            for c in 0..chunks {
                let j = c * 4;
                let xv = _mm_loadu_ps(x.as_ptr().add(j));
                let xx = _mm256_set_m128(xv, xv);
                let w01 = _mm256_set_m128(_mm_loadu_ps(p1.add(j)), _mm_loadu_ps(p0.add(j)));
                let w23 = _mm256_set_m128(_mm_loadu_ps(p3.add(j)), _mm_loadu_ps(p2.add(j)));
                acc01 = _mm256_add_ps(acc01, _mm256_mul_ps(w01, xx));
                acc23 = _mm256_add_ps(acc23, _mm256_mul_ps(w23, xx));
            }
            let mut out = [
                hsum_ordered(_mm256_castps256_ps128(acc01)),
                hsum_ordered(_mm256_extractf128_ps(acc01, 1)),
                hsum_ordered(_mm256_castps256_ps128(acc23)),
                hsum_ordered(_mm256_extractf128_ps(acc23, 1)),
            ];
            for (k, &xv) in x[tail..cols].iter().enumerate() {
                let j = tail + k;
                out[0] += *p0.add(j) * xv;
                out[1] += *p1.add(j) * xv;
                out[2] += *p2.add(j) * xv;
                out[3] += *p3.add(j) * xv;
            }
            y[r..r + 4].copy_from_slice(&out);
        }
        for r in blocks * 4..m.rows() {
            y[r] = dot(&data[r * cols..(r + 1) * cols], x);
        }
    }
}

/// Rows processed per block by the blocked mat-vec.
const ROW_BLOCK: usize = 4;

/// `chunks_exact` dot with the exact reduction tree of
/// [`crate::matrix::dot`]: four lanes, `s0+s1+s2+s3`, sequential tail.
#[inline]
fn dot_blocked(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (pa, pb) in ca.zip(cb) {
        s0 += pa[0] * pb[0];
        s1 += pa[1] * pb[1];
        s2 += pa[2] * pb[2];
        s3 += pa[3] * pb[3];
    }
    let mut sum = s0 + s1 + s2 + s3;
    for (x, y) in ra.iter().zip(rb) {
        sum += x * y;
    }
    sum
}

/// Four simultaneous row dots sharing each `x` chunk load. Each row's
/// accumulation order is identical to [`dot_blocked`] (hence to the
/// reference `dot`).
#[inline]
fn dot4_rows(r0: &[f32], r1: &[f32], r2: &[f32], r3: &[f32], x: &[f32]) -> [f32; 4] {
    let mut acc = [[0.0f32; 4]; ROW_BLOCK];
    let cx = x.chunks_exact(4);
    let tail_start = x.len() - cx.remainder().len();
    let it = cx
        .zip(r0.chunks_exact(4))
        .zip(r1.chunks_exact(4))
        .zip(r2.chunks_exact(4))
        .zip(r3.chunks_exact(4));
    for ((((xc, c0), c1), c2), c3) in it {
        for lane in 0..4 {
            acc[0][lane] += c0[lane] * xc[lane];
            acc[1][lane] += c1[lane] * xc[lane];
            acc[2][lane] += c2[lane] * xc[lane];
            acc[3][lane] += c3[lane] * xc[lane];
        }
    }
    let mut out = [0.0f32; ROW_BLOCK];
    for (o, lanes) in out.iter_mut().zip(acc.iter()) {
        *o = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    }
    for j in tail_start..x.len() {
        out[0] += r0[j] * x[j];
        out[1] += r1[j] * x[j];
        out[2] += r2[j] * x[j];
        out[3] += r3[j] * x[j];
    }
    out
}

/// Portable blocked mat-vec (the non-x86 / pre-AVX path): four rows per
/// block through [`dot4_rows`], remainder rows through [`dot_blocked`].
/// Bit-identical to [`Reference`] by the same reduction-order argument as
/// the wide kernels.
fn matvec_blocked_portable(m: &Matrix, x: &[f32], y: &mut [f32]) {
    let cols = m.cols();
    let data = m.as_slice();
    let blocks = m.rows() / ROW_BLOCK;
    for b in 0..blocks {
        let r = b * ROW_BLOCK;
        let out = dot4_rows(
            &data[r * cols..(r + 1) * cols],
            &data[(r + 1) * cols..(r + 2) * cols],
            &data[(r + 2) * cols..(r + 3) * cols],
            &data[(r + 3) * cols..(r + 4) * cols],
            x,
        );
        y[r..r + ROW_BLOCK].copy_from_slice(&out);
    }
    for r in blocks * ROW_BLOCK..m.rows() {
        y[r] = dot_blocked(&data[r * cols..(r + 1) * cols], x);
    }
}

impl Backend for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn matvec_into(&self, m: &Matrix, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), m.cols(), "matvec input length");
        assert_eq!(y.len(), m.rows(), "matvec output length");
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx") {
                // SAFETY: feature presence checked above; shapes validated.
                unsafe { x86::matvec_avx(m, x, y) };
                return;
            }
        }
        matvec_blocked_portable(m, x, y);
    }

    fn matvec_t(&self, m: &Matrix, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), m.rows(), "matvec_t input length");
        let cols = m.cols();
        let data = m.as_slice();
        let mut y = vec![0.0f32; cols];
        let blocks = m.rows() / ROW_BLOCK;
        for b in 0..blocks {
            let r = b * ROW_BLOCK;
            let (x0, x1, x2, x3) = (x[r], x[r + 1], x[r + 2], x[r + 3]);
            let r0 = &data[r * cols..(r + 1) * cols];
            let r1 = &data[(r + 1) * cols..(r + 2) * cols];
            let r2 = &data[(r + 2) * cols..(r + 3) * cols];
            let r3 = &data[(r + 3) * cols..(r + 4) * cols];
            let it = y
                .iter_mut()
                .zip(r0.iter())
                .zip(r1.iter())
                .zip(r2.iter())
                .zip(r3.iter());
            for ((((v, &w0), &w1), &w2), &w3) in it {
                *v += w0 * x0 + w1 * x1 + w2 * x2 + w3 * x3;
            }
        }
        for r in blocks * ROW_BLOCK..m.rows() {
            let xv = x[r];
            let row = &data[r * cols..(r + 1) * cols];
            for (v, &w) in y.iter_mut().zip(row.iter()) {
                *v += w * xv;
            }
        }
        y
    }

    fn gemm(&self, weight: &Matrix, groups: &[Vec<usize>], inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(groups.len(), inputs.len(), "group count mismatch");
        groups
            .iter()
            .zip(inputs.iter())
            .map(|(rows, x)| {
                assert_eq!(x.len(), weight.cols(), "input dimension mismatch");
                rows.iter()
                    .map(|&r| {
                        assert!(
                            r < weight.rows(),
                            "row {r} out of bounds ({})",
                            weight.rows()
                        );
                        dot_blocked(weight.row(r), x)
                    })
                    .collect()
            })
            .collect()
    }

    fn matvec_q_into(&self, q: &QuantizedMatrix, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), q.cols(), "quantized matvec input length");
        assert_eq!(y.len(), q.rows(), "quantized matvec output length");
        let gs = q.group_size();
        let cols = q.cols();
        let codes = q.codes();
        let scales = q.scales();
        let groups_per_row = cols / gs;
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for g in 0..groups_per_row {
                let base = r * cols + g * gs;
                let wchunk = &codes[base..base + gs];
                let xchunk = &x[g * gs..(g + 1) * gs];
                // 4-lane unrolled dequantizing dot; the within-group
                // reduction order differs from Reference, so conformance
                // holds this kernel to a tolerance, not bit-equality.
                let cw = wchunk.chunks_exact(4);
                let cx = xchunk.chunks_exact(4);
                let (rw, rx) = (cw.remainder(), cx.remainder());
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (pw, px) in cw.zip(cx) {
                    s0 += f32::from(pw[0]) * px[0];
                    s1 += f32::from(pw[1]) * px[1];
                    s2 += f32::from(pw[2]) * px[2];
                    s3 += f32::from(pw[3]) * px[3];
                }
                let mut gsum = s0 + s1 + s2 + s3;
                for (&w, &xv) in rw.iter().zip(rx) {
                    gsum += f32::from(w) * xv;
                }
                acc += gsum * scales[r * groups_per_row + g];
            }
            *out = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// QuantizedI8
// ---------------------------------------------------------------------------

/// i8 integer backend: per-group symmetric round-to-nearest quantization
/// with an `i32`-accumulating inner loop.
///
/// On [`Backend::matvec_q_into`] (pre-quantized weights) only the
/// activations are quantized — one absmax scale per weight group — and
/// the inner loop is pure integer MACs. On f32 operands the weights are
/// additionally group-quantized per call ([`I8_GROUP`]-wide groups), so
/// every f32 op is approximate with a per-instance computable bound (see
/// [`quantize_i8`]). `matvec_t` quantizes weights only (activations stay
/// f32), since its accumulation runs across rows, not within groups.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantizedI8;

/// Symmetric round-to-nearest i8 quantization of one group, exactly as
/// the [`QuantizedI8`] kernels perform it: `scale = absmax / 127`
/// (`1.0` for an all-zero group) and `code = round(v / scale)` clamped
/// to `[-127, 127]`.
///
/// Public so the conformance suite can rebuild the kernel's exact codes
/// and derive tight error bounds from them.
pub fn quantize_i8(values: &[f32]) -> (f32, Vec<i8>) {
    let mut codes = vec![0i8; values.len()];
    let scale = quantize_i8_into(values, &mut codes);
    (scale, codes)
}

#[inline]
fn quantize_i8_into(src: &[f32], codes: &mut [i8]) -> f32 {
    debug_assert_eq!(src.len(), codes.len());
    let absmax = src.iter().fold(0.0f32, |a, v| a.max(v.abs()));
    let scale = if absmax > 0.0 { absmax / 127.0 } else { 1.0 };
    for (c, &v) in codes.iter_mut().zip(src) {
        *c = (v / scale).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// Quantizes `x` in groups of `group` (ragged tail allowed), returning
/// per-group scales and the code vector.
fn quantize_groups(x: &[f32], group: usize) -> (Vec<f32>, Vec<i8>) {
    let mut codes = vec![0i8; x.len()];
    let mut scales = Vec::with_capacity(x.len().div_ceil(group.max(1)));
    for (vals, chunk) in x.chunks(group).zip(codes.chunks_mut(group)) {
        scales.push(quantize_i8_into(vals, chunk));
    }
    (scales, codes)
}

/// Integer dot of two i8 code slices, accumulated in `i32` (exact for
/// any group this crate produces: `|code| ≤ 127`, group lengths far
/// below the `i32` overflow threshold of ~133k elements).
#[inline]
fn idot(a: &[i8], b: &[i8]) -> i32 {
    let mut s: i32 = 0;
    for (&w, &x) in a.iter().zip(b) {
        s += i32::from(w) * i32::from(x);
    }
    s
}

impl QuantizedI8 {
    /// One quantized row dot over on-the-fly-quantized weights, given the
    /// activations' pre-computed group codes/scales.
    #[inline]
    fn row_dot(row: &[f32], xq: &[i8], xs: &[f32], wq_scratch: &mut [i8]) -> f32 {
        let mut acc = 0.0f32;
        for (g, (wvals, xchunk)) in row.chunks(I8_GROUP).zip(xq.chunks(I8_GROUP)).enumerate() {
            let codes = &mut wq_scratch[..wvals.len()];
            let sw = quantize_i8_into(wvals, codes);
            acc += idot(codes, xchunk) as f32 * (sw * xs[g]);
        }
        acc
    }
}

impl Backend for QuantizedI8 {
    fn name(&self) -> &'static str {
        "quant"
    }

    fn matvec_into(&self, m: &Matrix, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), m.cols(), "matvec input length");
        assert_eq!(y.len(), m.rows(), "matvec output length");
        let cols = m.cols();
        let data = m.as_slice();
        let (xs, xq) = quantize_groups(x, I8_GROUP);
        let mut scratch = vec![0i8; I8_GROUP.min(cols.max(1))];
        for (r, out) in y.iter_mut().enumerate() {
            *out = Self::row_dot(&data[r * cols..(r + 1) * cols], &xq, &xs, &mut scratch);
        }
    }

    fn matvec_t(&self, m: &Matrix, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), m.rows(), "matvec_t input length");
        let cols = m.cols();
        let data = m.as_slice();
        let mut y = vec![0.0f32; cols];
        let mut scratch = vec![0i8; I8_GROUP.min(cols.max(1))];
        for (r, &xv) in x.iter().enumerate() {
            let row = &data[r * cols..(r + 1) * cols];
            for (g, wvals) in row.chunks(I8_GROUP).enumerate() {
                let codes = &mut scratch[..wvals.len()];
                let sw = quantize_i8_into(wvals, codes);
                let ys = &mut y[g * I8_GROUP..g * I8_GROUP + wvals.len()];
                for (v, &c) in ys.iter_mut().zip(codes.iter()) {
                    *v += f32::from(c) * sw * xv;
                }
            }
        }
        y
    }

    fn gemm(&self, weight: &Matrix, groups: &[Vec<usize>], inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(groups.len(), inputs.len(), "group count mismatch");
        let cols = weight.cols();
        let data = weight.as_slice();
        let mut scratch = vec![0i8; I8_GROUP.min(cols.max(1))];
        groups
            .iter()
            .zip(inputs.iter())
            .map(|(rows, x)| {
                assert_eq!(x.len(), cols, "input dimension mismatch");
                let (xs, xq) = quantize_groups(x, I8_GROUP);
                rows.iter()
                    .map(|&r| {
                        assert!(
                            r < weight.rows(),
                            "row {r} out of bounds ({})",
                            weight.rows()
                        );
                        Self::row_dot(&data[r * cols..(r + 1) * cols], &xq, &xs, &mut scratch)
                    })
                    .collect()
            })
            .collect()
    }

    fn matvec_q_into(&self, q: &QuantizedMatrix, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), q.cols(), "quantized matvec input length");
        assert_eq!(y.len(), q.rows(), "quantized matvec output length");
        let gs = q.group_size();
        let cols = q.cols();
        let codes = q.codes();
        let scales = q.scales();
        let groups_per_row = cols / gs;
        let (xs, xq) = quantize_groups(x, gs);
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for g in 0..groups_per_row {
                let base = r * cols + g * gs;
                let isum = idot(&codes[base..base + gs], &xq[g * gs..(g + 1) * gs]);
                acc += isum as f32 * (scales[r * groups_per_row + g] * xs[g]);
            }
            *out = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg;

    #[test]
    fn kind_roundtrips_through_display_and_fromstr() {
        for kind in BackendKind::ALL {
            let name = kind.to_string();
            assert_eq!(name.parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.get().name(), name);
        }
        assert!("metal".parse::<BackendKind>().is_err());
    }

    #[test]
    fn default_kind_is_the_oracle() {
        assert_eq!(BackendKind::default(), BackendKind::Reference);
        assert!(BackendKind::Reference.is_exact());
        assert!(BackendKind::Blocked.is_exact());
        assert!(!BackendKind::QuantizedI8.is_exact());
    }

    #[test]
    fn blocked_matvec_bit_identical_to_reference() {
        let mut rng = Pcg::seed(7);
        for (rows, cols) in [(1, 1), (3, 5), (4, 16), (17, 33), (64, 128)] {
            let m = Matrix::random(rows, cols, 1.0, &mut rng);
            let mut x = vec![0.0f32; cols];
            rng.fill_uniform(&mut x, 1.0);
            assert_eq!(
                BackendKind::Reference.get().matvec(&m, &x),
                BackendKind::Blocked.get().matvec(&m, &x),
                "{rows}x{cols}"
            );
        }
    }

    #[test]
    fn every_blocked_matvec_path_bit_identical_to_reference() {
        // The public `Blocked` entry point dispatches to the widest
        // available kernel; this pins *each* path (portable, AVX,
        // AVX-512 where present) to the oracle independently.
        let mut rng = Pcg::seed(11);
        for (rows, cols) in [(1, 7), (4, 4), (5, 19), (32, 64), (33, 65)] {
            let m = Matrix::random(rows, cols, 1.0, &mut rng);
            let mut x = vec![0.0f32; cols];
            rng.fill_uniform(&mut x, 1.0);
            let reference = BackendKind::Reference.get().matvec(&m, &x);

            let mut y = vec![0.0f32; rows];
            matvec_blocked_portable(&m, &x, &mut y);
            assert_eq!(y, reference, "portable {rows}x{cols}");

            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx") {
                    let mut y = vec![0.0f32; rows];
                    // SAFETY: feature presence checked; shapes match.
                    unsafe { x86::matvec_avx(&m, &x, &mut y) };
                    assert_eq!(y, reference, "avx {rows}x{cols}");
                }
            }
        }
    }

    #[test]
    fn quantize_i8_matches_quantized_matrix_rule() {
        // Same rule as QuantizedMatrix::quantize for an int8 group.
        let vals = [0.5f32, -1.0, 0.25, 0.75];
        let (scale, codes) = quantize_i8(&vals);
        assert!((scale - 1.0 / 127.0).abs() < 1e-9);
        assert_eq!(codes[1], -127);
        let (zscale, zcodes) = quantize_i8(&[0.0, 0.0]);
        assert_eq!(zscale, 1.0);
        assert_eq!(zcodes, vec![0, 0]);
    }

    #[test]
    fn integer_dot_is_exact() {
        let a: Vec<i8> = (-64..64).collect();
        let b: Vec<i8> = (0..128).map(|i| (i % 127) as i8 - 63).collect();
        let expect: i32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        assert_eq!(idot(&a, &b), expect);
    }
}
