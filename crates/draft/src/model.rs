//! A real single-layer transformer draft model (EAGLE stand-in).

use specee_metrics::Meter;
use specee_model::{prefill, LayeredLm, ModelConfig, OpScale, TokenId, Transformer};
use specee_tensor::{ops, rng::Pcg};

use crate::source::SpeculativeSource;
use crate::tree::{TokenTree, TreeShape};

/// A single-decoder-layer draft model over the target vocabulary.
///
/// Executes real transformer math on its own weights and KV cache while
/// metering each proposal round as one EAGLE-style draft forward at the
/// *target* model's scale (the paper observes the DLM costs roughly one
/// target decoder layer per round, §5.1).
///
/// # Examples
///
/// ```
/// use specee_draft::{DraftModel, SpeculativeSource};
/// use specee_model::ModelConfig;
/// use specee_metrics::Meter;
/// use specee_tensor::rng::Pcg;
///
/// let target = ModelConfig::tiny();
/// let mut draft = DraftModel::new(&target, &mut Pcg::seed(3));
/// let mut meter = Meter::new();
/// let candidates = draft.propose(&[1, 2, 3], 4, &mut meter);
/// assert_eq!(candidates.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DraftModel {
    inner: Transformer,
    mirror: Vec<TokenId>,
    last_hidden: Vec<f32>,
    target_scale: OpScale,
    modelled_bytes: f64,
    /// Node-forwards executed through the draft network (one per token
    /// synced, plus one per tree node per expanded level).
    forward_calls: u64,
}

impl DraftModel {
    /// Builds a draft model for the given target configuration.
    pub fn new(target: &ModelConfig, rng: &mut Pcg) -> Self {
        let cfg = ModelConfig {
            name: format!("{}-draft", target.name),
            hidden_dim: target.hidden_dim,
            n_heads: target.n_heads,
            n_layers: 1,
            ffn_dim: target.ffn_dim,
            vocab_size: target.vocab_size,
            context_len: target.context_len,
            rope_theta: target.rope_theta,
            cost: None,
        };
        let inner = Transformer::random(cfg, rng);
        let target_scale = OpScale::of(target);
        // EAGLE head ≈ one target layer + embeddings + LM head at the
        // target precision (~0.9 GB for Llama2-7B, Fig. 17).
        let modelled_bytes = match &target.cost {
            Some(c) => {
                let h = c.hidden_dim as f64;
                let layer =
                    4.0 * h * h + 3.0 * h * c.ffn_dim as f64 + 2.0 * c.vocab_size as f64 * h;
                layer * c.weight_bytes_per_elem()
            }
            None => inner.weights().bytes() as f64,
        };
        DraftModel {
            inner,
            mirror: Vec::new(),
            last_hidden: Vec::new(),
            target_scale,
            modelled_bytes,
            forward_calls: 0,
        }
    }

    /// Feeds any new suffix of `context` through the draft layer, resetting
    /// first if the context diverged from the mirror.
    fn sync(&mut self, context: &[TokenId], meter: &mut Meter) {
        let keep = self
            .mirror
            .iter()
            .zip(context.iter())
            .take_while(|(a, b)| a == b)
            .count();
        if keep < self.mirror.len() {
            self.inner.reset();
            self.mirror.clear();
            self.last_hidden.clear();
            return self.sync(context, meter);
        }
        if keep == context.len() && !self.last_hidden.is_empty() {
            return;
        }
        let mut scratch = Meter::new();
        let tail = &context[keep..];
        if !tail.is_empty() {
            self.last_hidden = prefill(&mut self.inner, tail, &mut scratch);
            self.mirror.extend_from_slice(tail);
            for _ in tail {
                self.forward_calls += 1;
                self.target_scale
                    .record_draft_forward(meter, self.mirror.len());
            }
        }
    }

    fn logits_of_last(&mut self) -> Vec<f32> {
        let mut scratch = Meter::new();
        self.inner
            .final_logits(&self.last_hidden.clone(), &mut scratch)
    }
}

impl SpeculativeSource for DraftModel {
    fn propose(&mut self, context: &[TokenId], k: usize, meter: &mut Meter) -> Vec<TokenId> {
        assert!(!context.is_empty(), "draft needs context");
        self.sync(context, meter);
        let logits = self.logits_of_last();
        ops::top_k(&logits, k)
            .into_iter()
            .map(|i| i as TokenId)
            .collect()
    }

    fn propose_tree(
        &mut self,
        context: &[TokenId],
        shape: &TreeShape,
        meter: &mut Meter,
    ) -> TokenTree {
        assert!(!context.is_empty(), "draft needs context");
        self.sync(context, meter);
        let mut tree = TokenTree::new();
        let mut scratch = Meter::new();

        // Level 0 from the committed context.
        let logits = self.logits_of_last();
        let probs = ops::softmax(&logits);
        let mut frontier: Vec<usize> = Vec::new();
        for &t in ops::top_k(&logits, shape.branching()[0]).iter() {
            frontier.push(tree.push(t as TokenId, None, probs[t]));
        }

        // Deeper levels: run the whole tree through the draft layer and
        // expand the frontier nodes.
        for &b in &shape.branching()[1..] {
            let tokens = tree.tokens();
            let parents = tree.parents();
            let hs = self.inner.begin_tree(&tokens, &parents, &mut scratch);
            let (outs, _kv) = self
                .inner
                .forward_layer_tree(0, &hs, &parents, &mut scratch);
            self.forward_calls += tree.len() as u64;
            self.target_scale
                .record_draft_forward(meter, self.mirror.len() + tree.len());
            let mut next_frontier = Vec::new();
            for &node in &frontier {
                let logits = self.inner.final_logits(&outs[node], &mut scratch);
                let probs = ops::softmax(&logits);
                for &t in ops::top_k(&logits, b).iter() {
                    next_frontier.push(tree.push(t as TokenId, Some(node), probs[t]));
                }
            }
            frontier = next_frontier;
        }
        tree
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.mirror.clear();
        self.last_hidden.clear();
    }

    fn modelled_bytes(&self) -> f64 {
        self.modelled_bytes
    }

    fn forward_calls(&self) -> u64 {
        self.forward_calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specee_metrics::OpKind;

    fn draft() -> DraftModel {
        DraftModel::new(&ModelConfig::tiny(), &mut Pcg::seed(5))
    }

    #[test]
    fn propose_returns_k_distinct_tokens() {
        let mut d = draft();
        let mut meter = Meter::new();
        let c = d.propose(&[1, 2, 3], 4, &mut meter);
        assert_eq!(c.len(), 4);
        let mut s = c.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 4, "candidates must be distinct");
    }

    #[test]
    fn proposals_are_deterministic() {
        let mut a = draft();
        let mut b = draft();
        let mut meter = Meter::new();
        assert_eq!(
            a.propose(&[7, 8], 4, &mut meter),
            b.propose(&[7, 8], 4, &mut meter)
        );
    }

    #[test]
    fn incremental_context_reuses_cache() {
        let mut d = draft();
        let mut meter = Meter::new();
        d.propose(&[1, 2, 3], 2, &mut meter);
        let before = meter.kind(OpKind::Draft).kernels;
        d.propose(&[1, 2, 3, 4], 2, &mut meter);
        let added = meter.kind(OpKind::Draft).kernels - before;
        // only the one new token is fed
        assert_eq!(added, 10, "one draft forward for one new token");
    }

    #[test]
    fn divergent_context_resets() {
        let mut d = draft();
        let mut meter = Meter::new();
        let a = d.propose(&[1, 2, 3], 3, &mut meter);
        d.propose(&[9, 9], 3, &mut meter);
        let a2 = d.propose(&[1, 2, 3], 3, &mut meter);
        assert_eq!(a, a2, "same context must give same proposals after reset");
    }

    #[test]
    fn tree_respects_shape() {
        let mut d = draft();
        let mut meter = Meter::new();
        let shape = TreeShape::new(vec![3, 2]);
        let tree = d.propose_tree(&[1, 2], &shape, &mut meter);
        assert_eq!(tree.len(), 3 + 6);
        assert_eq!(tree.paths().len(), 6);
        for p in tree.paths() {
            assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn forward_calls_count_synced_tokens_and_tree_nodes() {
        let mut d = draft();
        let mut meter = Meter::new();
        d.propose(&[1, 2, 3], 2, &mut meter);
        assert_eq!(d.forward_calls(), 3, "one sync forward per context token");
        let before = d.forward_calls();
        // Shape [2, 2]: one expanded level re-running the 2-node tree.
        let _ = d.propose_tree(&[1, 2, 3], &TreeShape::new(vec![2, 2]), &mut meter);
        assert_eq!(d.forward_calls() - before, 2, "tree nodes per level");
    }

    #[test]
    fn draft_ops_metered_at_target_scale() {
        let target = ModelConfig::sim_llama2_7b();
        let mut d = DraftModel::new(&target, &mut Pcg::seed(6));
        let mut meter = Meter::new();
        d.propose(&[1], 4, &mut meter);
        let t = meter.kind(OpKind::Draft);
        // one 7B-scale layer + head is ~0.67 GFLOP
        assert!(t.flops > 5e8, "draft flops {}", t.flops);
    }
}
