//! The speculative-token source abstraction consumed by the engines.

use specee_metrics::Meter;
use specee_model::TokenId;

use crate::self_draft::SelfDraftSpec;
use crate::tree::{TokenTree, TreeShape};

/// A source of speculative tokens.
///
/// Implemented by the real [`crate::DraftModel`] and by the calibrated
/// oracle in `specee-synth`. The engine calls [`propose`] once per
/// generated token in autoregressive mode (SpecEE T1: the K candidates
/// that form the reduced vocabulary) and [`propose_tree`] once per
/// verification round in speculative mode.
///
/// [`propose`]: SpeculativeSource::propose
/// [`propose_tree`]: SpeculativeSource::propose_tree
pub trait SpeculativeSource {
    /// Proposes the top-`k` candidate next tokens for the given context,
    /// most likely first.
    fn propose(&mut self, context: &[TokenId], k: usize, meter: &mut Meter) -> Vec<TokenId>;

    /// Proposes a draft token tree for the given context.
    fn propose_tree(
        &mut self,
        context: &[TokenId],
        shape: &TreeShape,
        meter: &mut Meter,
    ) -> TokenTree;

    /// Returns the top-`k` candidates for a context that the draft already
    /// explored during tree construction, without metering a new forward
    /// (tree drafting computed these logits; re-reading them is free). The
    /// default falls back to a metered [`SpeculativeSource::propose`].
    fn cached_candidates(
        &mut self,
        context: &[TokenId],
        k: usize,
        meter: &mut Meter,
    ) -> Vec<TokenId> {
        self.propose(context, k, meter)
    }

    /// Clears any internal sequence state.
    fn reset(&mut self);

    /// Modelled memory footprint of the draft model in bytes (the paper
    /// reports ~0.9 GB for the Llama2-7B EAGLE head, Fig. 17).
    fn modelled_bytes(&self) -> f64;

    /// When `Some`, this source is a *self-speculative* marker: the engine
    /// drafts with the target's own shallow layers per the returned spec
    /// instead of calling [`SpeculativeSource::propose_tree`]. Separate
    /// draft models return `None` (the default).
    fn self_spec(&self) -> Option<&SelfDraftSpec> {
        None
    }

    /// Cumulative node-forwards this source has executed through its own
    /// draft network (0 for oracle and self-draft sources, which run no
    /// separate network). Engines use the per-round delta to meter
    /// separate-draft work apart from shallow-target work.
    fn forward_calls(&self) -> u64 {
        0
    }
}
