//! EAGLE-style draft token trees.

use serde::{Deserialize, Serialize};
use specee_model::TokenId;

/// Branching factor per tree level, e.g. `[3, 2, 2]`: three root drafts,
/// each expanded by two children, each of those by two more.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeShape {
    branching: Vec<usize>,
}

impl TreeShape {
    /// Creates a shape from per-level branching factors.
    ///
    /// # Panics
    ///
    /// Panics if any level has zero branching or the shape is empty.
    pub fn new(branching: Vec<usize>) -> Self {
        assert!(!branching.is_empty(), "tree must have at least one level");
        assert!(
            branching.iter().all(|&b| b > 0),
            "branching must be positive"
        );
        TreeShape { branching }
    }

    /// The default tree used by the speculative engine (21 nodes, depth 3),
    /// mirroring EAGLE's small verification trees.
    pub fn eagle_default() -> Self {
        TreeShape::new(vec![3, 2, 2])
    }

    /// A linear chain of the given length (classic draft-then-verify).
    pub fn chain(len: usize) -> Self {
        assert!(len > 0, "chain length must be positive");
        TreeShape::new(vec![1; len])
    }

    /// Branching factors per level.
    pub fn branching(&self) -> &[usize] {
        &self.branching
    }

    /// Tree depth (number of levels).
    pub fn depth(&self) -> usize {
        self.branching.len()
    }

    /// Total node count implied by the shape.
    pub fn node_count(&self) -> usize {
        let mut level = 1usize;
        let mut total = 0usize;
        for &b in &self.branching {
            level *= b;
            total += level;
        }
        total
    }
}

/// One node of a draft token tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeNode {
    /// Proposed token.
    pub token: TokenId,
    /// Parent node index (`None` for level-0 roots).
    pub parent: Option<usize>,
    /// Draft-model probability of this token given its path.
    pub prob: f32,
    /// Level in the tree (roots are 0).
    pub depth: usize,
}

/// A draft token tree in topological order (parents precede children).
///
/// # Examples
///
/// ```
/// use specee_draft::TokenTree;
///
/// let mut tree = TokenTree::new();
/// let root = tree.push(10, None, 0.9);
/// let child = tree.push(11, Some(root), 0.8);
/// assert_eq!(tree.paths(), vec![vec![root, child]]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TokenTree {
    nodes: Vec<TreeNode>,
}

impl TokenTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        TokenTree::default()
    }

    /// Appends a node and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the parent index is not an existing earlier node.
    pub fn push(&mut self, token: TokenId, parent: Option<usize>, prob: f32) -> usize {
        let depth = match parent {
            None => 0,
            Some(p) => {
                assert!(p < self.nodes.len(), "parent {p} does not exist");
                self.nodes[p].depth + 1
            }
        };
        self.nodes.push(TreeNode {
            token,
            parent,
            prob,
            depth,
        });
        self.nodes.len() - 1
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrows a node.
    pub fn node(&self, i: usize) -> &TreeNode {
        &self.nodes[i]
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Tokens in node order.
    pub fn tokens(&self) -> Vec<TokenId> {
        self.nodes.iter().map(|n| n.token).collect()
    }

    /// Parent links in node order.
    pub fn parents(&self) -> Vec<Option<usize>> {
        self.nodes.iter().map(|n| n.parent).collect()
    }

    /// Root-to-leaf node-index paths, one per leaf, in discovery order.
    /// Each path is the paper's *hyper-token* (T3).
    pub fn paths(&self) -> Vec<Vec<usize>> {
        let mut has_child = vec![false; self.nodes.len()];
        for n in &self.nodes {
            if let Some(p) = n.parent {
                has_child[p] = true;
            }
        }
        let mut paths = Vec::new();
        for (i, _) in self.nodes.iter().enumerate() {
            if has_child[i] {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = Some(i);
            while let Some(n) = cur {
                path.push(n);
                cur = self.nodes[n].parent;
            }
            path.reverse();
            paths.push(path);
        }
        paths
    }

    /// The token sequence along a node-index path.
    pub fn path_tokens(&self, path: &[usize]) -> Vec<TokenId> {
        path.iter().map(|&i| self.nodes[i].token).collect()
    }

    /// Children of node `i` (or roots when `i` is `None`).
    pub fn children(&self, i: Option<usize>) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent == i)
            .map(|(j, _)| j)
            .collect()
    }

    /// Joint draft probability of the path from the root down to node `i`
    /// (the product of per-node probabilities).
    pub fn path_prob(&self, i: usize) -> f32 {
        let mut p = 1.0f32;
        let mut cur = Some(i);
        while let Some(n) = cur {
            p *= self.nodes[n].prob;
            cur = self.nodes[n].parent;
        }
        p
    }

    /// EAGLE-2-style dynamic pruning: keeps the `budget` nodes with the
    /// highest joint path probability (ties break toward earlier nodes)
    /// and re-indexes the survivors. Keeping a node keeps its ancestors —
    /// a node's joint probability never exceeds its parent's (per-node
    /// probabilities are ≤ 1) — so the result is a valid tree.
    ///
    /// Verifying a fixed-budget, probability-ranked tree instead of a
    /// fixed-shape one raises expected accepted length per round; it is
    /// the "dynamic draft tree" extension the EAGLE line of work ships.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero or any node probability lies outside
    /// `[0, 1]`.
    pub fn prune_to_budget(&self, budget: usize) -> TokenTree {
        assert!(budget > 0, "budget must be positive");
        assert!(
            self.nodes.iter().all(|n| (0.0..=1.0).contains(&n.prob)),
            "node probabilities must be in [0, 1]"
        );
        if self.nodes.len() <= budget {
            return self.clone();
        }
        let mut ranked: Vec<usize> = (0..self.nodes.len()).collect();
        // Joint probability descending; index ascending on ties so
        // ancestors (pushed earlier) win against equal-probability children.
        ranked.sort_by(|&a, &b| {
            self.path_prob(b)
                .partial_cmp(&self.path_prob(a))
                .expect("finite probabilities")
                .then(a.cmp(&b))
        });
        let mut keep = vec![false; self.nodes.len()];
        for &i in ranked.iter().take(budget) {
            keep[i] = true;
        }
        // Close over ancestors: monotonicity makes this a no-op except for
        // exact ties at the budget boundary.
        for i in (0..self.nodes.len()).rev() {
            if keep[i] {
                if let Some(p) = self.nodes[i].parent {
                    keep[p] = true;
                }
            }
        }
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut pruned = TokenTree::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            let parent = n.parent.map(|p| remap[p]);
            remap[i] = pruned.push(n.token, parent, n.prob);
        }
        pruned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> TokenTree {
        // roots: a, b; a -> c, d; b -> e
        let mut t = TokenTree::new();
        let a = t.push(1, None, 0.5);
        let b = t.push(2, None, 0.3);
        t.push(3, Some(a), 0.4);
        t.push(4, Some(a), 0.2);
        t.push(5, Some(b), 0.9);
        t
    }

    #[test]
    fn shape_node_count() {
        assert_eq!(TreeShape::eagle_default().node_count(), 3 + 6 + 12);
        assert_eq!(TreeShape::chain(4).node_count(), 4);
        assert_eq!(TreeShape::new(vec![4]).node_count(), 4);
    }

    #[test]
    fn depths_assigned_from_parents() {
        let t = sample_tree();
        assert_eq!(t.node(0).depth, 0);
        assert_eq!(t.node(2).depth, 1);
    }

    #[test]
    fn paths_enumerate_leaves() {
        let t = sample_tree();
        let paths = t.paths();
        assert_eq!(paths.len(), 3);
        assert!(paths.contains(&vec![0, 2]));
        assert!(paths.contains(&vec![0, 3]));
        assert!(paths.contains(&vec![1, 4]));
    }

    #[test]
    fn path_tokens_follow_path() {
        let t = sample_tree();
        assert_eq!(t.path_tokens(&[1, 4]), vec![2, 5]);
    }

    #[test]
    fn children_lookup() {
        let t = sample_tree();
        assert_eq!(t.children(None), vec![0, 1]);
        assert_eq!(t.children(Some(0)), vec![2, 3]);
        assert!(t.children(Some(4)).is_empty());
    }

    #[test]
    #[should_panic(expected = "parent 7 does not exist")]
    fn push_validates_parent() {
        TokenTree::new().push(1, Some(7), 0.1);
    }

    #[test]
    fn path_prob_multiplies_along_path() {
        let t = sample_tree();
        assert!((t.path_prob(4) - 0.3 * 0.9).abs() < 1e-7);
        assert!((t.path_prob(0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn prune_keeps_highest_probability_paths() {
        let t = sample_tree();
        // Joint probs: a=0.5, b=0.3, c=0.2, d=0.1, e=0.27. Budget 3 keeps
        // a, b, e — the b->e path survives intact.
        let pruned = t.prune_to_budget(3);
        assert_eq!(pruned.len(), 3);
        assert_eq!(pruned.tokens(), vec![1, 2, 5]);
        assert_eq!(pruned.node(2).parent, Some(1));
        assert_eq!(pruned.node(2).depth, 1);
    }

    #[test]
    fn prune_larger_budget_is_identity() {
        let t = sample_tree();
        assert_eq!(t.prune_to_budget(100), t);
        assert_eq!(t.prune_to_budget(t.len()), t);
    }

    #[test]
    fn pruned_tree_stays_topological() {
        let t = sample_tree();
        for budget in 1..=t.len() {
            let p = t.prune_to_budget(budget);
            assert!(p.len() >= budget.min(t.len()) || p.len() <= t.len());
            for (i, n) in p.nodes().iter().enumerate() {
                if let Some(parent) = n.parent {
                    assert!(parent < i, "budget {budget}: parent after child");
                    assert_eq!(p.node(parent).depth + 1, n.depth);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn prune_validates_budget() {
        let _ = sample_tree().prune_to_budget(0);
    }
}
