//! Draft-model substrate: token trees and speculative-token sources.
//!
//! Speculative decoding (and SpecEE's T1) needs a *draft language model*
//! that proposes candidate tokens for the target model. This crate provides
//! the [`TokenTree`] structure (EAGLE-style level-wise trees), the
//! [`SpeculativeSource`] abstraction the engines consume, and a real
//! single-layer transformer [`DraftModel`] whose ops are metered at the
//! scale of the EAGLE draft head (≈ one target decoder layer, §7.4.2). The
//! oracle draft with a calibrated hit rate lives in `specee-synth`.

#![deny(missing_docs)]

pub mod model;
pub mod self_draft;
pub mod source;
pub mod tree;

pub use model::DraftModel;
pub use self_draft::{SelfDraft, SelfDraftSpec};
pub use source::SpeculativeSource;
pub use tree::{TokenTree, TreeNode, TreeShape};
