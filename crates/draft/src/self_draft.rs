//! Self-speculative drafting: the target model drafts with its own
//! shallow layers.
//!
//! LayerSkip/Kangaroo-style split: the draft pass runs the target's
//! layers `0..exit_layer` over a growing token tree (reusing the tied LM
//! head on the exit-layer hidden state to expand each level), and the
//! verify pass resumes from those exit-layer hidden states through the
//! remaining layers. The KV cache is split at the exit layer: shallow
//! K/V written while drafting is *committed, not recomputed* when the
//! verifier accepts, so accepted tokens pay for each shallow layer
//! exactly once — and there is no separate draft artifact to keep
//! resident at all.
//!
//! [`SelfDraft`] is a marker [`SpeculativeSource`]: engines detect it via
//! [`SpeculativeSource::self_spec`] and drive the draft pass themselves
//! (they own the target model; this crate cannot). Its `propose*` methods
//! therefore panic with a pointed message — reaching them means an engine
//! without self-draft support was handed a self-draft source.

use specee_metrics::Meter;
use specee_model::TokenId;

use crate::source::SpeculativeSource;
use crate::tree::{TokenTree, TreeShape};

/// The split parameters of a self-speculative draft: where the shallow/
/// deep seam sits and what tree shape each round speculates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfDraftSpec {
    /// Number of shallow layers the draft pass runs (`0..exit_layer`);
    /// the verify pass resumes at `exit_layer`. Must be at least 1 and
    /// strictly less than the target's depth.
    pub exit_layer: usize,
    /// Token tree speculated per round (level branching factors).
    pub shape: TreeShape,
}

impl SelfDraftSpec {
    /// Builds a spec, validating only what is knowable without the model
    /// (positive exit layer; the shape validates itself on construction).
    /// Use [`SelfDraftSpec::validate_for_depth`] once the target depth is
    /// known.
    ///
    /// # Panics
    ///
    /// Panics if `exit_layer` is zero.
    pub fn new(exit_layer: usize, shape: TreeShape) -> Self {
        assert!(exit_layer > 0, "self-draft exit layer must be at least 1");
        SelfDraftSpec { exit_layer, shape }
    }

    /// Checks the spec against a concrete model depth: the draft pass
    /// must leave at least one deep layer for the verifier.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending values when
    /// `exit_layer >= n_layers`.
    pub fn validate_for_depth(&self, n_layers: usize) -> Result<(), String> {
        if self.exit_layer >= n_layers {
            return Err(format!(
                "self-draft exit layer {} must be below the model depth {} \
                 (the verify pass needs at least one deep layer)",
                self.exit_layer, n_layers
            ));
        }
        Ok(())
    }
}

/// A marker [`SpeculativeSource`] selecting self-speculative drafting.
///
/// Carries the [`SelfDraftSpec`]; the engine does the actual drafting
/// through the target's own layers. `modelled_bytes` is zero — the whole
/// point of the mode is that no separate draft network exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfDraft {
    spec: SelfDraftSpec,
}

impl SelfDraft {
    /// Wraps a spec as a speculative source.
    pub fn new(spec: SelfDraftSpec) -> Self {
        SelfDraft { spec }
    }

    /// The split parameters.
    pub fn spec(&self) -> &SelfDraftSpec {
        &self.spec
    }
}

impl SpeculativeSource for SelfDraft {
    fn propose(&mut self, _context: &[TokenId], _k: usize, _meter: &mut Meter) -> Vec<TokenId> {
        panic!(
            "SelfDraft is a marker source: the engine must draft through the \
             target's shallow layers (check SpeculativeSource::self_spec)"
        );
    }

    fn propose_tree(
        &mut self,
        _context: &[TokenId],
        _shape: &TreeShape,
        _meter: &mut Meter,
    ) -> TokenTree {
        panic!(
            "SelfDraft is a marker source: the engine must draft through the \
             target's shallow layers (check SpeculativeSource::self_spec)"
        );
    }

    fn reset(&mut self) {}

    fn modelled_bytes(&self) -> f64 {
        // No separate draft artifact — the memory win of self-speculation.
        0.0
    }

    fn self_spec(&self) -> Option<&SelfDraftSpec> {
        Some(&self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validates_against_model_depth() {
        let spec = SelfDraftSpec::new(8, TreeShape::chain(3));
        assert!(spec.validate_for_depth(32).is_ok());
        let err = spec.validate_for_depth(8).unwrap_err();
        assert!(err.contains("exit layer 8"), "{err}");
        assert!(err.contains("depth 8"), "{err}");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_exit_layer_is_rejected() {
        let _ = SelfDraftSpec::new(0, TreeShape::chain(1));
    }

    #[test]
    fn marker_source_reports_itself() {
        let d = SelfDraft::new(SelfDraftSpec::new(2, TreeShape::new(vec![2, 2])));
        assert_eq!(d.self_spec().map(|s| s.exit_layer), Some(2));
        assert_eq!(d.modelled_bytes(), 0.0);
        assert_eq!(d.forward_calls(), 0);
    }

    #[test]
    #[should_panic(expected = "marker source")]
    fn proposing_through_the_marker_panics() {
        let mut d = SelfDraft::new(SelfDraftSpec::new(2, TreeShape::chain(2)));
        let _ = d.propose(&[1, 2], 4, &mut Meter::new());
    }
}
