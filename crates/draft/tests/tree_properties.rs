//! Property-based tests on draft token trees: topological validity, path
//! enumeration, and the EAGLE-2-style budget pruning.

use proptest::prelude::*;
use specee_draft::{TokenTree, TreeShape};

/// An arbitrary valid shape: 1..5 levels with branching 1..4.
fn arb_shape() -> impl Strategy<Value = TreeShape> {
    prop::collection::vec(1usize..4, 1..5).prop_map(TreeShape::new)
}

/// Builds a random valid tree from (parent-choice, prob) pairs.
fn arb_tree() -> impl Strategy<Value = TokenTree> {
    prop::collection::vec((0usize..8, 0.01f32..1.0), 1..24).prop_map(|specs| {
        let mut tree = TokenTree::new();
        for (i, (parent_pick, prob)) in specs.iter().enumerate() {
            // Roots with probability ~1/8, otherwise attach to an earlier node.
            let parent = if i == 0 || *parent_pick == 0 {
                None
            } else {
                Some(parent_pick % i)
            };
            tree.push(i as u32, parent, *prob);
        }
        tree
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `TreeShape::node_count` equals the node total of a tree actually
    /// constructed level by level from the shape, and every constructed
    /// node's parent/child indices are well-formed (parents precede
    /// children; depth is the level it was pushed at).
    #[test]
    fn shape_node_count_matches_constructed_tree(shape in arb_shape()) {
        let mut tree = TokenTree::new();
        let mut frontier: Vec<Option<usize>> = vec![None];
        for (level, &b) in shape.branching().iter().enumerate() {
            let mut next = Vec::new();
            for &parent in &frontier {
                for t in 0..b {
                    let id = tree.push(t as u32, parent, 0.5);
                    next.push(Some(id));
                    let node = tree.node(id);
                    prop_assert_eq!(node.parent, parent);
                    prop_assert_eq!(node.depth, level);
                    if let Some(p) = parent {
                        prop_assert!(p < id, "parent must precede child");
                    }
                }
            }
            frontier = next;
        }
        prop_assert_eq!(tree.len(), shape.node_count());
        prop_assert_eq!(
            frontier.len(),
            shape.branching().iter().product::<usize>(),
            "leaf count is the product of branching factors"
        );
    }

    /// `chain(n)` identities: depth n, node count n, every level unary.
    #[test]
    fn chain_depth_and_count_identities(n in 1usize..32) {
        let chain = TreeShape::chain(n);
        prop_assert_eq!(chain.depth(), n);
        prop_assert_eq!(chain.node_count(), n);
        prop_assert!(chain.branching().iter().all(|&b| b == 1));
    }

    /// `node_count` is the sum of per-level widths (cumulative products
    /// of the branching factors).
    #[test]
    fn node_count_is_sum_of_level_widths(shape in arb_shape()) {
        let mut width = 1usize;
        let mut total = 0usize;
        for &b in shape.branching() {
            width *= b;
            total += width;
        }
        prop_assert_eq!(shape.node_count(), total);
    }

    /// Paths partition the leaves: every leaf appears in exactly one path,
    /// every path ends at a leaf and starts at a root.
    #[test]
    fn paths_partition_leaves(tree in arb_tree()) {
        let paths = tree.paths();
        let mut has_child = vec![false; tree.len()];
        for n in tree.nodes() {
            if let Some(p) = n.parent {
                has_child[p] = true;
            }
        }
        let leaves: Vec<usize> =
            (0..tree.len()).filter(|&i| !has_child[i]).collect();
        prop_assert_eq!(paths.len(), leaves.len());
        let mut seen = std::collections::HashSet::new();
        for path in &paths {
            prop_assert!(tree.node(path[0]).parent.is_none());
            let last = *path.last().unwrap();
            prop_assert!(!has_child[last]);
            prop_assert!(seen.insert(last), "leaf in two paths");
            // Consecutive nodes are parent/child.
            for w in path.windows(2) {
                prop_assert_eq!(tree.node(w[1]).parent, Some(w[0]));
            }
        }
    }

    /// Joint path probability is monotone non-increasing down any path.
    #[test]
    fn path_prob_monotone(tree in arb_tree()) {
        for path in tree.paths() {
            for w in path.windows(2) {
                prop_assert!(tree.path_prob(w[1]) <= tree.path_prob(w[0]) + 1e-7);
            }
        }
    }

    /// Pruning respects the budget, keeps topological order, preserves
    /// depth/parent consistency, and never invents tokens.
    #[test]
    fn prune_is_valid_subtree(tree in arb_tree(), budget in 1usize..24) {
        let pruned = tree.prune_to_budget(budget);
        prop_assert!(pruned.len() <= tree.len());
        prop_assert!(!pruned.is_empty());
        // Budget can only be exceeded by ancestor closure on ties; the
        // closure of the top-k by joint probability is itself within k for
        // strictly positive probabilities, so assert <= budget here.
        prop_assert!(pruned.len() <= budget.max(1));
        let original: std::collections::HashSet<u32> =
            tree.tokens().into_iter().collect();
        for (i, n) in pruned.nodes().iter().enumerate() {
            prop_assert!(original.contains(&n.token));
            if let Some(p) = n.parent {
                prop_assert!(p < i);
                prop_assert_eq!(pruned.node(p).depth + 1, n.depth);
            } else {
                prop_assert_eq!(n.depth, 0);
            }
        }
    }

    /// The pruned tree keeps the single most probable root-to-leaf path's
    /// prefix: its best surviving joint probability equals the original
    /// best among trees that fit the budget.
    #[test]
    fn prune_keeps_best_path_prefix(tree in arb_tree(), budget in 1usize..24) {
        let pruned = tree.prune_to_budget(budget);
        let best_original = (0..tree.len())
            .map(|i| tree.path_prob(i))
            .fold(0.0f32, f32::max);
        let best_pruned = (0..pruned.len())
            .map(|i| pruned.path_prob(i))
            .fold(0.0f32, f32::max);
        // The highest-probability single node is always kept (rank 1).
        prop_assert!((best_pruned - best_original).abs() < 1e-6);
    }
}
