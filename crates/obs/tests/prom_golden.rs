//! Golden-file pin of the Prometheus text exposition.
//!
//! The exposition is byte-stable by construction (BTreeMap family order,
//! shortest-round-trip float formatting); this test freezes the exact
//! bytes for a representative registry so any formatting drift — header
//! placement, bucket naming, number rendering — fails loudly instead of
//! silently breaking downstream scrapers.
//!
//! To regenerate after an *intentional* format change:
//! `UPDATE_GOLDEN=1 cargo test -p specee-obs --test prom_golden`.

use specee_obs::{
    fold_events, merge_events, prometheus_text, Event, EventKind, MetricsRegistry, Recorder,
    TraceSink, COORDINATOR_LANE, TTFT_BOUNDS,
};

/// A small two-worker run, written out event by event: worker 0 decodes
/// one request with a mix of accepted/rejected exits, worker 1 decodes
/// one full-depth request, and the coordinator routes both.
fn fixture_events() -> Vec<Event> {
    let mut coord = Recorder::for_worker(COORDINATOR_LANE);
    coord.record_at(
        0.0,
        Some(0),
        EventKind::Routing {
            request: 0,
            policy: "exit-aware",
            chosen: 0,
            scores: vec![(0, 1.5), (1, 2.25)],
        },
    );
    coord.record_at(
        0.125,
        Some(1),
        EventKind::Routing {
            request: 1,
            policy: "exit-aware",
            chosen: 1,
            scores: vec![(0, 3.5), (1, 2.0)],
        },
    );

    let mut w0 = Recorder::for_worker(0);
    w0.record_at(
        0.0,
        Some(0),
        EventKind::Admission {
            request: 0,
            queue_depth: 1,
        },
    );
    w0.set_clock(0.25);
    w0.set_seq(Some(0));
    for (layer, score, accepted) in [(3u32, 0.875, true), (5, 0.25, false), (3, 0.75, true)] {
        w0.record(EventKind::ExitDecision {
            class: 0,
            layer,
            score,
            threshold: 0.5,
            accepted,
        });
    }
    // The self-draft plane acting: one shallow draft pass speculated a
    // 7-node tree, verified in one sweep with a 3-token accepted prefix.
    w0.record(EventKind::DraftPass {
        nodes: 7,
        exit_layer: 3,
    });
    w0.record(EventKind::TreeVerified {
        nodes: 7,
        accepted: 3,
    });
    w0.set_seq(None);
    w0.record(EventKind::Step {
        step: 0,
        occupancy: 1,
        layers: 8,
        dur_s: 0.0625,
    });
    w0.record(EventKind::ControllerApply {
        class: 0,
        threshold: 0.5625,
    });
    w0.record(EventKind::Gossip {
        classes: 1,
        tokens: 12,
    });
    // The paged-KV memory plane acting: a low-priority resident is
    // preempted under page pressure, pressure is sampled at the step
    // boundary, and the victim is later resumed.
    w0.record(EventKind::Preempted {
        request: 0,
        lane: 2,
        pages: 3,
    });
    w0.record(EventKind::KvPressure {
        pages: 6,
        shared: 2,
        parked: 1,
    });
    w0.record_at(
        0.4375,
        Some(0),
        EventKind::Resumed {
            request: 0,
            lane: 2,
        },
    );
    w0.record_at(
        0.5,
        Some(0),
        EventKind::Request {
            request: 0,
            arrival_s: 0.0,
            first_token_s: 0.25,
            finish_s: 0.5,
            tokens: 3,
        },
    );

    let mut w1 = Recorder::for_worker(1);
    w1.record_at(
        0.125,
        Some(1),
        EventKind::Admission {
            request: 1,
            queue_depth: 0,
        },
    );
    w1.record_at(
        0.375,
        None,
        EventKind::Step {
            step: 0,
            occupancy: 1,
            layers: 8,
            dur_s: 0.125,
        },
    );
    w1.record_at(
        0.75,
        Some(1),
        EventKind::Request {
            request: 1,
            arrival_s: 0.125,
            first_token_s: 0.5,
            finish_s: 0.75,
            tokens: 2,
        },
    );

    merge_events(vec![
        w0.into_events(),
        w1.into_events(),
        coord.into_events(),
    ])
}

fn fixture_registry() -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    fold_events(&mut reg, &fixture_events());
    // One gauge so the gauge family ordering is pinned too (fold_events
    // alone produces only counters and histograms).
    reg.gauge_set("specee_mean_threshold", 0.5625);
    reg
}

#[test]
fn prometheus_exposition_matches_the_golden_file() {
    let text = prometheus_text(&fixture_registry());
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &text).expect("write golden");
        return;
    }
    let golden = include_str!("golden/prometheus.txt");
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted from the golden file; if the change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Re-rendering the same registry — and re-folding the same events —
/// must be byte-identical: scrape stability is the whole point of the
/// BTreeMap-backed registry.
#[test]
fn exposition_is_deterministic_across_renders() {
    let a = prometheus_text(&fixture_registry());
    let b = prometheus_text(&fixture_registry());
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

/// The fixture exercises every family kind the exposition can emit.
#[test]
fn fixture_covers_counters_gauges_and_histograms() {
    let text = prometheus_text(&fixture_registry());
    assert!(text.contains("# TYPE specee_exits_accepted_total counter"));
    assert!(text.contains("# TYPE specee_mean_threshold gauge"));
    assert!(text.contains("# TYPE specee_ttft_seconds histogram"));
    // The paged-KV memory-plane series.
    assert!(text.contains("# TYPE specee_kv_preemptions_total counter"));
    assert!(text.contains("specee_kv_preemptions_total 1"));
    assert!(text.contains("specee_kv_resumes_total 1"));
    assert!(text.contains("# TYPE specee_kv_occupancy gauge"));
    assert!(text.contains("specee_kv_occupancy 6"));
    assert!(text.contains("specee_kv_shared_pages 2"));
    // The self-draft plane's series.
    assert!(text.contains("# TYPE specee_draft_accepted_len histogram"));
    assert!(text.contains("specee_draft_passes_total 1"));
    assert!(text.contains("specee_trees_verified_total 1"));
    assert!(text.contains("specee_draft_nodes_total 7"));
    // Cumulative buckets end with the +Inf catch-all equal to _count.
    let inf = text
        .lines()
        .find(|l| l.starts_with("specee_ttft_seconds_bucket{le=\"+Inf\"}"))
        .expect("+Inf bucket present");
    assert!(inf.ends_with(" 2"), "both requests observed: {inf}");
    let _ = TTFT_BOUNDS;
}
