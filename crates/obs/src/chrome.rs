//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! The exported object follows the Trace Event Format: a `traceEvents`
//! array in which every event carries a `(pid, tid)` lane. We map the
//! whole run to `pid` 0 and give **each worker its own `tid` lane**
//! (named via `thread_name` metadata), so a cluster trace opens in
//! Perfetto as one swim-lane per worker:
//!
//! - `"X"` *complete* spans for batch steps and request lifetimes
//!   (arrival to finish, with first-token time in `args`),
//! - `"i"` *instants* for exit decisions, admissions, routing choices,
//!   controller applies and gossip deltas.
//!
//! Timestamps are the simulated clock converted to microseconds (the
//! format's native unit), so span widths in the UI are simulated time —
//! the quantity every report in this workspace is priced in.

use serde::Value;

use crate::event::{Event, EventKind, COORDINATOR_LANE};

/// Microseconds per simulated second (trace-event native unit).
const US: f64 = 1e6;

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

fn lane_name(worker: u32) -> String {
    if worker == COORDINATOR_LANE {
        "coordinator".to_string()
    } else {
        format!("worker-{worker}")
    }
}

/// The `process_name` every lane lives under (one process, pid 0).
const PROCESS_NAME: &str = "specee";

/// Common envelope of one trace event on a worker lane.
fn envelope(name: &str, ph: &str, cat: &str, worker: u32, ts_s: f64) -> Vec<(&'static str, Value)> {
    vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str(ph.to_string())),
        ("cat", Value::Str(cat.to_string())),
        ("pid", Value::UInt(0)),
        ("tid", Value::UInt(u64::from(worker))),
        ("ts", Value::Float(ts_s * US)),
    ]
}

fn instant(e: &Event, args: Vec<(&str, Value)>) -> Value {
    let mut fields = envelope(e.kind.name(), "i", e.kind.name(), e.worker, e.t);
    fields.push(("s", s("t"))); // thread-scoped instant
    fields.push(("args", map(args)));
    map(fields)
}

fn span(name: &str, e: &Event, start_s: f64, dur_s: f64, args: Vec<(&str, Value)>) -> Value {
    let mut fields = envelope(name, "X", name, e.worker, start_s);
    fields.push(("dur", Value::Float(dur_s * US)));
    fields.push(("args", map(args)));
    map(fields)
}

fn seq_arg(e: &Event) -> Value {
    e.seq.map_or(Value::Null, Value::UInt)
}

/// Builds the Chrome trace-event document for a merged event stream.
///
/// One `process_name` metadata record for pid 0, then one
/// `thread_name` metadata record per distinct lane in ascending lane
/// order ("worker-0", …, "coordinator"), followed by the events in
/// stream order — the output is a pure function of the input stream.
pub fn chrome_trace(events: &[Event]) -> Value {
    let mut lanes: Vec<u32> = events.iter().map(|e| e.worker).collect();
    lanes.sort_unstable();
    lanes.dedup();

    let mut out: Vec<Value> = vec![map(vec![
        ("name", s("process_name")),
        ("ph", s("M")),
        ("pid", Value::UInt(0)),
        ("tid", Value::UInt(0)),
        ("args", map(vec![("name", s(PROCESS_NAME))])),
    ])];
    out.extend(lanes.iter().map(|&w| {
        map(vec![
            ("name", s("thread_name")),
            ("ph", s("M")),
            ("pid", Value::UInt(0)),
            ("tid", Value::UInt(u64::from(w))),
            ("args", map(vec![("name", Value::Str(lane_name(w)))])),
        ])
    }));

    for e in events {
        out.push(match &e.kind {
            EventKind::ExitDecision {
                class,
                layer,
                score,
                threshold,
                accepted,
            } => instant(
                e,
                vec![
                    ("seq", seq_arg(e)),
                    ("class", Value::UInt(u64::from(*class))),
                    ("layer", Value::UInt(u64::from(*layer))),
                    ("score", Value::Float(*score)),
                    ("threshold", Value::Float(*threshold)),
                    ("accepted", Value::Bool(*accepted)),
                ],
            ),
            EventKind::Step {
                step,
                occupancy,
                layers,
                dur_s,
            } => span(
                "step",
                e,
                e.t,
                *dur_s,
                vec![
                    ("step", Value::UInt(*step)),
                    ("occupancy", Value::UInt(u64::from(*occupancy))),
                    ("layers", Value::UInt(u64::from(*layers))),
                ],
            ),
            EventKind::Admission {
                request,
                queue_depth,
            } => instant(
                e,
                vec![
                    ("request", Value::UInt(*request)),
                    ("queue_depth", Value::UInt(u64::from(*queue_depth))),
                ],
            ),
            EventKind::Request {
                request,
                arrival_s,
                first_token_s,
                finish_s,
                tokens,
            } => span(
                "request",
                e,
                *arrival_s,
                finish_s - arrival_s,
                vec![
                    ("request", Value::UInt(*request)),
                    ("ttft_s", Value::Float(first_token_s - arrival_s)),
                    ("tokens", Value::UInt(u64::from(*tokens))),
                ],
            ),
            EventKind::Routing {
                request,
                policy,
                chosen,
                scores,
            } => instant(
                e,
                vec![
                    ("request", Value::UInt(*request)),
                    ("policy", s(policy)),
                    ("chosen", Value::UInt(u64::from(*chosen))),
                    (
                        "scores",
                        Value::Map(
                            scores
                                .iter()
                                .map(|&(w, sc)| (lane_name(w), Value::Float(sc)))
                                .collect(),
                        ),
                    ),
                ],
            ),
            EventKind::ControllerApply { class, threshold } => instant(
                e,
                vec![
                    ("class", Value::UInt(u64::from(*class))),
                    ("threshold", Value::Float(*threshold)),
                ],
            ),
            EventKind::Gossip { classes, tokens } => instant(
                e,
                vec![
                    ("classes", Value::UInt(u64::from(*classes))),
                    ("tokens", Value::UInt(*tokens)),
                ],
            ),
            EventKind::Preempted {
                request,
                lane,
                pages,
            } => instant(
                e,
                vec![
                    ("request", Value::UInt(*request)),
                    ("lane", Value::UInt(u64::from(*lane))),
                    ("pages", Value::UInt(u64::from(*pages))),
                ],
            ),
            EventKind::Resumed { request, lane } => instant(
                e,
                vec![
                    ("request", Value::UInt(*request)),
                    ("lane", Value::UInt(u64::from(*lane))),
                ],
            ),
            EventKind::KvPressure {
                pages,
                shared,
                parked,
            } => instant(
                e,
                vec![
                    ("pages", Value::UInt(u64::from(*pages))),
                    ("shared", Value::UInt(u64::from(*shared))),
                    ("parked", Value::UInt(u64::from(*parked))),
                ],
            ),
            EventKind::DraftPass { nodes, exit_layer } => instant(
                e,
                vec![
                    ("nodes", Value::UInt(u64::from(*nodes))),
                    ("exit_layer", Value::UInt(u64::from(*exit_layer))),
                ],
            ),
            EventKind::TreeVerified { nodes, accepted } => instant(
                e,
                vec![
                    ("nodes", Value::UInt(u64::from(*nodes))),
                    ("accepted", Value::UInt(u64::from(*accepted))),
                ],
            ),
            EventKind::SloFired {
                objective,
                burn_rate,
            } => instant(
                e,
                vec![
                    ("objective", s(objective)),
                    ("burn_rate", Value::Float(*burn_rate)),
                ],
            ),
            EventKind::SloCleared { objective } => instant(e, vec![("objective", s(objective))]),
        });
    }

    map(vec![
        ("traceEvents", Value::Seq(out)),
        ("displayTimeUnit", s("ms")),
    ])
}

/// Serializes [`chrome_trace`] to a JSON string via the vendored
/// `serde_json`.
pub fn chrome_trace_json(events: &[Event]) -> String {
    serde_json::to_string(&chrome_trace(events)).expect("trace document serializes")
}

/// Distinct `(pid, tid)` lanes referenced by a parsed trace document
/// (metadata and payload events alike), ascending.
///
/// Returns `None` when the document has no `traceEvents` array — the
/// shape check the round-trip tests rely on.
pub fn lanes_of(doc: &Value) -> Option<Vec<(u64, u64)>> {
    let Some(Value::Seq(events)) = doc.get("traceEvents") else {
        return None;
    };
    let mut lanes: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|e| {
            let pid = match e.get("pid") {
                Some(Value::UInt(p)) => *p,
                _ => return None,
            };
            let tid = match e.get("tid") {
                Some(Value::UInt(t)) => *t,
                _ => return None,
            };
            Some((pid, tid))
        })
        .collect();
    lanes.sort_unstable();
    lanes.dedup();
    Some(lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Recorder, TraceSink};

    fn sample_events() -> Vec<Event> {
        let mut r0 = Recorder::for_worker(0);
        r0.set_clock(0.0);
        r0.set_seq(Some(1));
        r0.record(EventKind::ExitDecision {
            class: 0,
            layer: 5,
            score: 0.8,
            threshold: 0.5,
            accepted: true,
        });
        r0.set_seq(None);
        r0.record(EventKind::Step {
            step: 0,
            occupancy: 2,
            layers: 12,
            dur_s: 0.01,
        });
        let mut r1 = Recorder::for_worker(1);
        r1.set_clock(0.5);
        r1.record(EventKind::Gossip {
            classes: 2,
            tokens: 64,
        });
        crate::merge_events(vec![r0.into_events(), r1.into_events()])
    }

    #[test]
    fn trace_has_one_lane_per_worker_and_round_trips() {
        let json = chrome_trace_json(&sample_events());
        let doc: serde::Value = serde_json::from_str(&json).expect("trace re-parses");
        let lanes = lanes_of(&doc).expect("traceEvents present");
        assert_eq!(lanes, vec![(0, 0), (0, 1)], "exactly one lane per worker");
    }

    #[test]
    fn spans_and_instants_use_microseconds() {
        let doc = chrome_trace(&sample_events());
        let Some(Value::Seq(events)) = doc.get("traceEvents") else {
            panic!("traceEvents missing");
        };
        let step = events
            .iter()
            .find(|e| e.get("name") == Some(&Value::Str("step".into())))
            .expect("step span present");
        assert_eq!(step.get("ph"), Some(&Value::Str("X".into())));
        assert_eq!(step.get("dur"), Some(&Value::Float(0.01 * 1e6)));
        let gossip = events
            .iter()
            .find(|e| e.get("name") == Some(&Value::Str("gossip".into())))
            .expect("gossip instant present");
        assert_eq!(gossip.get("ph"), Some(&Value::Str("i".into())));
        assert_eq!(gossip.get("ts"), Some(&Value::Float(0.5 * 1e6)));
    }

    #[test]
    fn metadata_names_process_and_threads() {
        let json = chrome_trace_json(&sample_events());
        assert!(json.contains("process_name"));
        assert!(json.contains("\"specee\""));
        assert!(json.contains("thread_name"));
        assert!(json.contains("worker-0"));
        assert!(json.contains("worker-1"));
    }

    #[test]
    fn slo_transitions_export_as_instants() {
        let mut r = Recorder::for_worker(0);
        r.set_clock(1.0);
        r.record(EventKind::SloFired {
            objective: "p99_ttft".to_string(),
            burn_rate: 3.5,
        });
        r.set_clock(2.0);
        r.record(EventKind::SloCleared {
            objective: "p99_ttft".to_string(),
        });
        let doc = chrome_trace(&r.into_events());
        let Some(Value::Seq(events)) = doc.get("traceEvents") else {
            panic!("traceEvents missing");
        };
        let fired = events
            .iter()
            .find(|e| e.get("name") == Some(&Value::Str("slo-fired".into())))
            .expect("slo-fired instant present");
        assert_eq!(fired.get("ph"), Some(&Value::Str("i".into())));
        assert!(events
            .iter()
            .any(|e| e.get("name") == Some(&Value::Str("slo-cleared".into()))));
    }

    #[test]
    fn coordinator_lane_is_named() {
        let e = Event {
            t: 0.0,
            worker: COORDINATOR_LANE,
            seq: None,
            kind: EventKind::Routing {
                request: 9,
                policy: "exit-aware",
                chosen: 1,
                scores: vec![(0, 3.5), (1, 1.5)],
            },
        };
        let json = chrome_trace_json(&[e]);
        assert!(json.contains("coordinator"));
        assert!(json.contains("exit-aware"));
    }
}
