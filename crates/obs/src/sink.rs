//! Sinks: where engines hand events, and the recorder that keeps them.
//!
//! Engines thread a generic `S: TraceSink` through their hot loops. The
//! two implementations bracket the cost spectrum:
//!
//! - [`NullSink`] (and `Option::<Recorder>::None`): `enabled()` is a
//!   constant `false`, so the guard `if sink.enabled() { ... }`
//!   monomorphizes to nothing — no allocation, no branch. This is the
//!   default everywhere; tracing is strictly opt-in.
//! - [`Recorder`]: buffers [`Event`]s in memory, stamping each with the
//!   ambient simulated clock, worker lane and sequence id that the layer
//!   *owning* the clock sets before delegating into clock-less layers
//!   (`BatchedEngine` has only a step counter; the serve loop and the
//!   cluster workers own `now`/`sim_now`).
//!
//! The enabled path never feeds back into the computation — sinks are
//! write-only — so tracing cannot perturb tokens, exit layers or
//! timings; the bit-identity tests in `specee-serve`/`specee-cluster`
//! hold the runtime to that.
//!
//! # Bounded recording
//!
//! A [`Recorder`] never grows without bound: every recorder carries an
//! event budget ([`DEFAULT_EVENT_BUDGET`] unless overridden). Past the
//! budget the default mode *drops newest* (the prefix of the run is
//! kept) and the ring mode ([`Recorder::with_ring_capacity`]) *drops
//! oldest* (the suffix is kept) — both count every discarded event in
//! [`Recorder::dropped_events`], so a truncated trace is always
//! detectable. Per-kind sampling ([`Recorder::with_sample_every`])
//! keeps a deterministic 1-in-N of each event kind before the budget
//! applies. All of it is write-side only: sampling and dropping decide
//! what is *kept*, never what the engines compute, so the bit-identity
//! contract is untouched.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};

/// Default [`Recorder`] event budget (events kept before the recorder
/// starts dropping): 2^20 events, a few hundred MB at the very worst.
/// Soak-scale runs should prefer sampling (`--trace-sample`) or ring
/// mode so the *interesting* events survive; the budget is the backstop
/// that keeps an unconfigured long run from growing without bound.
pub const DEFAULT_EVENT_BUDGET: usize = 1 << 20;

/// Destination for trace events.
///
/// `record` takes only the [`EventKind`]; the sink supplies the
/// timestamp/lane context (see [`Recorder::set_clock`]). Call sites must
/// guard event *construction* behind [`TraceSink::enabled`] so the
/// disabled path allocates nothing:
///
/// ```
/// use specee_obs::{EventKind, NullSink, TraceSink};
///
/// fn hot_loop<S: TraceSink>(sink: &mut S) {
///     if sink.enabled() {
///         sink.record(EventKind::Step {
///             step: 0,
///             occupancy: 1,
///             layers: 32,
///             dur_s: 0.001,
///         });
///     }
/// }
/// hot_loop(&mut NullSink);
/// ```
pub trait TraceSink {
    /// Whether events are being kept. Constant `false` for [`NullSink`],
    /// so guarded recording compiles away.
    fn enabled(&self) -> bool;

    /// Records one event (stamped with the sink's ambient context).
    fn record(&mut self, kind: EventKind);
}

/// The no-op sink: tracing disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _kind: EventKind) {}
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline(always)]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline(always)]
    fn record(&mut self, kind: EventKind) {
        (**self).record(kind);
    }
}

/// `Option<S>` is a sink: `None` behaves exactly like [`NullSink`].
///
/// This is the shape engines store (`Option<Recorder>`): the common
/// disabled case stays a branch on a discriminant with nothing behind it.
impl<S: TraceSink> TraceSink for Option<S> {
    #[inline(always)]
    fn enabled(&self) -> bool {
        self.as_ref().is_some_and(|s| s.enabled())
    }

    #[inline(always)]
    fn record(&mut self, kind: EventKind) {
        if let Some(s) = self {
            s.record(kind);
        }
    }
}

/// Deterministic in-memory event recorder.
///
/// Owns ambient context — the simulated clock, the worker lane, the
/// current sequence id — that the clock-owning layer updates as it
/// advances, so clock-less inner layers (the exit scan, the batched
/// engine) emit correctly stamped events without carrying timestamps
/// themselves.
///
/// Memory is bounded: see the module docs on [`DEFAULT_EVENT_BUDGET`],
/// ring mode and per-kind sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct Recorder {
    worker: u32,
    clock: f64,
    seq: Option<u64>,
    events: Vec<Event>,
    /// Events kept before dropping kicks in.
    budget: usize,
    /// Past the budget: overwrite oldest (`true`) or drop newest.
    ring: bool,
    /// Next overwrite slot once a ring has wrapped.
    head: usize,
    /// Keep 1 in N events of each kind (1 = keep everything).
    sample_every: u32,
    /// Per-kind occurrence counters driving the sampler.
    sample_seen: BTreeMap<&'static str, u64>,
    /// Events discarded by sampling, the budget cap or ring overwrite.
    dropped: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            worker: 0,
            clock: 0.0,
            seq: None,
            events: Vec::new(),
            budget: DEFAULT_EVENT_BUDGET,
            ring: false,
            head: 0,
            sample_every: 1,
            sample_seen: BTreeMap::new(),
            dropped: 0,
        }
    }
}

impl Recorder {
    /// A recorder for worker lane 0 (single-engine runs).
    pub fn new() -> Self {
        Recorder::default()
    }

    /// A recorder stamping events onto worker lane `worker`.
    pub fn for_worker(worker: u32) -> Self {
        Recorder {
            worker,
            ..Recorder::default()
        }
    }

    /// Replaces the event budget (default [`DEFAULT_EVENT_BUDGET`]).
    /// Past it the recorder drops — newest events by default, oldest in
    /// ring mode — and counts the loss in [`dropped_events`].
    ///
    /// # Panics
    ///
    /// If `budget` is zero.
    ///
    /// [`dropped_events`]: Recorder::dropped_events
    pub fn with_budget(mut self, budget: usize) -> Self {
        assert!(budget > 0, "recorder budget must be positive");
        self.budget = budget;
        self
    }

    /// Switches to ring mode with the given capacity: once full, each
    /// new event overwrites the oldest kept one, so a soak run retains
    /// its most recent `capacity` events in fixed memory.
    ///
    /// # Panics
    ///
    /// If `capacity` is zero.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "recorder budget must be positive");
        self.budget = capacity;
        self.ring = true;
        self
    }

    /// Keeps a deterministic 1-in-`n` of each event kind (by
    /// [`EventKind::name`]): the 1st, `n+1`th, `2n+1`th … occurrence of
    /// each kind survive, the rest count as dropped. `n = 1` keeps
    /// everything.
    ///
    /// # Panics
    ///
    /// If `n` is zero.
    pub fn with_sample_every(mut self, n: u32) -> Self {
        assert!(n > 0, "sampling period must be positive");
        self.sample_every = n;
        self
    }

    /// Events discarded so far (sampling + budget/ring drops).
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// The event budget in force.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Applies sampling and the budget, keeping or discarding `ev`.
    fn push(&mut self, ev: Event) {
        if self.sample_every > 1 {
            let seen = self.sample_seen.entry(ev.kind.name()).or_insert(0);
            let keep = *seen % u64::from(self.sample_every) == 0;
            *seen += 1;
            if !keep {
                self.dropped += 1;
                return;
            }
        }
        if self.events.len() < self.budget {
            self.events.push(ev);
        } else if self.ring {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.budget;
            self.dropped += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// Sets the ambient simulated clock for subsequent events.
    pub fn set_clock(&mut self, t: f64) {
        self.clock = t;
    }

    /// The current ambient clock.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The worker lane events are stamped onto.
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Sets the ambient sequence id (`None` for engine-level events).
    pub fn set_seq(&mut self, seq: Option<u64>) {
        self.seq = seq;
    }

    /// Records an event at an explicit time instead of the ambient clock
    /// (e.g. a request span stamped at its arrival time). Sampling and
    /// the budget apply exactly as in [`TraceSink::record`].
    pub fn record_at(&mut self, t: f64, seq: Option<u64>, kind: EventKind) {
        self.push(Event {
            t,
            worker: self.worker,
            seq,
            kind,
        });
    }

    /// Events kept so far, in emission order. In ring mode after a
    /// wrap this is storage order — use [`into_events`] for the
    /// chronologically rotated stream.
    ///
    /// [`into_events`]: Recorder::into_events
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the recorder, returning its kept events in emission
    /// order (a wrapped ring is rotated back to chronological order).
    pub fn into_events(mut self) -> Vec<Event> {
        if self.head > 0 {
            self.events.rotate_left(self.head);
        }
        self.events
    }
}

impl TraceSink for Recorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, kind: EventKind) {
        self.push(Event {
            t: self.clock,
            worker: self.worker,
            seq: self.seq,
            kind,
        });
    }
}

/// Merges per-worker event streams into one deterministic timeline.
///
/// Stable sort by `(t, worker)`: simultaneous events order by worker
/// lane, and each worker's own emission order is preserved — the merged
/// trace is a pure function of the per-worker traces, so cluster traces
/// stay bit-reproducible.
///
/// # Panics
///
/// Panics if any event carries a non-finite timestamp.
pub fn merge_events(streams: Vec<Vec<Event>>) -> Vec<Event> {
    let mut all: Vec<Event> = streams.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        (a.t, a.worker)
            .partial_cmp(&(b.t, b.worker))
            .expect("finite event timestamps")
    });
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(step: u64) -> EventKind {
        EventKind::Step {
            step,
            occupancy: 1,
            layers: 8,
            dur_s: 0.1,
        }
    }

    #[test]
    fn recorder_stamps_ambient_context() {
        let mut r = Recorder::for_worker(3);
        r.set_clock(1.5);
        r.set_seq(Some(42));
        r.record(step(0));
        r.set_clock(2.0);
        r.set_seq(None);
        r.record(step(1));
        let ev = r.into_events();
        assert_eq!(ev[0].t, 1.5);
        assert_eq!(ev[0].worker, 3);
        assert_eq!(ev[0].seq, Some(42));
        assert_eq!(ev[1].t, 2.0);
        assert_eq!(ev[1].seq, None);
    }

    #[test]
    fn null_sink_and_none_are_disabled() {
        assert!(!NullSink.enabled());
        let mut none: Option<Recorder> = None;
        assert!(!none.enabled());
        none.record(step(0)); // must be a no-op, not a panic
        let mut some = Some(Recorder::new());
        assert!(some.enabled());
        some.record(step(0));
        assert_eq!(some.unwrap().events().len(), 1);
    }

    #[test]
    fn merge_orders_by_time_then_worker_stably() {
        let mut a = Recorder::for_worker(1);
        a.set_clock(2.0);
        a.record(step(10));
        a.set_clock(2.0);
        a.record(step(11)); // same instant: emission order must hold
        let mut b = Recorder::for_worker(0);
        b.set_clock(2.0);
        b.record(step(20));
        b.set_clock(1.0);
        b.record(step(21));
        let merged = merge_events(vec![a.into_events(), b.into_events()]);
        let lanes: Vec<u32> = merged.iter().map(|e| e.worker).collect();
        assert_eq!(lanes, [0, 0, 1, 1], "time first, then worker lane");
        // Worker 1's two same-instant events keep emission order.
        let steps: Vec<u64> = merged
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Step { step, .. } => Some(step),
                _ => None,
            })
            .collect();
        assert_eq!(steps, [21, 20, 10, 11]);
    }

    #[test]
    fn default_budget_drops_newest_and_counts() {
        let mut r = Recorder::new().with_budget(3);
        for i in 0..5u32 {
            r.set_clock(f64::from(i));
            r.record(step(u64::from(i)));
        }
        assert_eq!(r.dropped_events(), 2);
        let kept: Vec<f64> = r.into_events().iter().map(|e| e.t).collect();
        assert_eq!(kept, [0.0, 1.0, 2.0], "prefix survives, newest dropped");
    }

    #[test]
    fn ring_mode_keeps_newest_in_chronological_order() {
        let mut r = Recorder::new().with_ring_capacity(3);
        for i in 0..5u32 {
            r.set_clock(f64::from(i));
            r.record(step(u64::from(i)));
        }
        assert_eq!(r.dropped_events(), 2);
        let kept: Vec<f64> = r.into_events().iter().map(|e| e.t).collect();
        assert_eq!(kept, [2.0, 3.0, 4.0], "suffix survives, oldest dropped");
    }

    #[test]
    fn sampling_is_per_kind_and_deterministic() {
        let mut r = Recorder::new().with_sample_every(3);
        for i in 0..7 {
            r.record(step(i));
            r.record(EventKind::Admission {
                request: i,
                queue_depth: 0,
            });
        }
        // Each kind keeps its own 1st, 4th, 7th occurrence.
        let steps: Vec<u64> = r
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Step { step, .. } => Some(step),
                _ => None,
            })
            .collect();
        assert_eq!(steps, [0, 3, 6]);
        let admits = r
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Admission { .. }))
            .count();
        assert_eq!(admits, 3);
        assert_eq!(r.dropped_events(), 8);
        // Re-running the identical stream reproduces the identical keep
        // set: the sampler is a counter, not a coin.
        let mut r2 = Recorder::new().with_sample_every(3);
        for i in 0..7 {
            r2.record(step(i));
            r2.record(EventKind::Admission {
                request: i,
                queue_depth: 0,
            });
        }
        assert_eq!(r.events(), r2.events());
    }

    #[test]
    fn record_at_respects_sampling_and_budget() {
        let mut r = Recorder::new().with_budget(1);
        for i in 0..3u32 {
            r.record_at(f64::from(i), None, step(u64::from(i)));
        }
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.dropped_events(), 2);
    }

    #[test]
    #[should_panic(expected = "sampling period must be positive")]
    fn zero_sampling_period_is_rejected() {
        let _ = Recorder::new().with_sample_every(0);
    }

    #[test]
    fn record_at_overrides_clock() {
        let mut r = Recorder::new();
        r.set_clock(9.0);
        r.record_at(
            1.25,
            Some(7),
            EventKind::Request {
                request: 7,
                arrival_s: 1.25,
                first_token_s: 1.5,
                finish_s: 2.0,
                tokens: 4,
            },
        );
        assert_eq!(r.events()[0].t, 1.25);
        assert_eq!(r.events()[0].seq, Some(7));
    }
}
