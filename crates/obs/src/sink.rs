//! Sinks: where engines hand events, and the recorder that keeps them.
//!
//! Engines thread a generic `S: TraceSink` through their hot loops. The
//! two implementations bracket the cost spectrum:
//!
//! - [`NullSink`] (and `Option::<Recorder>::None`): `enabled()` is a
//!   constant `false`, so the guard `if sink.enabled() { ... }`
//!   monomorphizes to nothing — no allocation, no branch. This is the
//!   default everywhere; tracing is strictly opt-in.
//! - [`Recorder`]: buffers [`Event`]s in memory, stamping each with the
//!   ambient simulated clock, worker lane and sequence id that the layer
//!   *owning* the clock sets before delegating into clock-less layers
//!   (`BatchedEngine` has only a step counter; the serve loop and the
//!   cluster workers own `now`/`sim_now`).
//!
//! The enabled path never feeds back into the computation — sinks are
//! write-only — so tracing cannot perturb tokens, exit layers or
//! timings; the bit-identity tests in `specee-serve`/`specee-cluster`
//! hold the runtime to that.

use crate::event::{Event, EventKind};

/// Destination for trace events.
///
/// `record` takes only the [`EventKind`]; the sink supplies the
/// timestamp/lane context (see [`Recorder::set_clock`]). Call sites must
/// guard event *construction* behind [`TraceSink::enabled`] so the
/// disabled path allocates nothing:
///
/// ```
/// use specee_obs::{EventKind, NullSink, TraceSink};
///
/// fn hot_loop<S: TraceSink>(sink: &mut S) {
///     if sink.enabled() {
///         sink.record(EventKind::Step {
///             step: 0,
///             occupancy: 1,
///             layers: 32,
///             dur_s: 0.001,
///         });
///     }
/// }
/// hot_loop(&mut NullSink);
/// ```
pub trait TraceSink {
    /// Whether events are being kept. Constant `false` for [`NullSink`],
    /// so guarded recording compiles away.
    fn enabled(&self) -> bool;

    /// Records one event (stamped with the sink's ambient context).
    fn record(&mut self, kind: EventKind);
}

/// The no-op sink: tracing disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _kind: EventKind) {}
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline(always)]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline(always)]
    fn record(&mut self, kind: EventKind) {
        (**self).record(kind);
    }
}

/// `Option<S>` is a sink: `None` behaves exactly like [`NullSink`].
///
/// This is the shape engines store (`Option<Recorder>`): the common
/// disabled case stays a branch on a discriminant with nothing behind it.
impl<S: TraceSink> TraceSink for Option<S> {
    #[inline(always)]
    fn enabled(&self) -> bool {
        self.as_ref().is_some_and(|s| s.enabled())
    }

    #[inline(always)]
    fn record(&mut self, kind: EventKind) {
        if let Some(s) = self {
            s.record(kind);
        }
    }
}

/// Deterministic in-memory event recorder.
///
/// Owns ambient context — the simulated clock, the worker lane, the
/// current sequence id — that the clock-owning layer updates as it
/// advances, so clock-less inner layers (the exit scan, the batched
/// engine) emit correctly stamped events without carrying timestamps
/// themselves.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recorder {
    worker: u32,
    clock: f64,
    seq: Option<u64>,
    events: Vec<Event>,
}

impl Recorder {
    /// A recorder for worker lane 0 (single-engine runs).
    pub fn new() -> Self {
        Recorder::default()
    }

    /// A recorder stamping events onto worker lane `worker`.
    pub fn for_worker(worker: u32) -> Self {
        Recorder {
            worker,
            ..Recorder::default()
        }
    }

    /// Sets the ambient simulated clock for subsequent events.
    pub fn set_clock(&mut self, t: f64) {
        self.clock = t;
    }

    /// The current ambient clock.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The worker lane events are stamped onto.
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Sets the ambient sequence id (`None` for engine-level events).
    pub fn set_seq(&mut self, seq: Option<u64>) {
        self.seq = seq;
    }

    /// Records an event at an explicit time instead of the ambient clock
    /// (e.g. a request span stamped at its arrival time).
    pub fn record_at(&mut self, t: f64, seq: Option<u64>, kind: EventKind) {
        self.events.push(Event {
            t,
            worker: self.worker,
            seq,
            kind,
        });
    }

    /// Events recorded so far, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the recorder, returning its events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl TraceSink for Recorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, kind: EventKind) {
        self.events.push(Event {
            t: self.clock,
            worker: self.worker,
            seq: self.seq,
            kind,
        });
    }
}

/// Merges per-worker event streams into one deterministic timeline.
///
/// Stable sort by `(t, worker)`: simultaneous events order by worker
/// lane, and each worker's own emission order is preserved — the merged
/// trace is a pure function of the per-worker traces, so cluster traces
/// stay bit-reproducible.
///
/// # Panics
///
/// Panics if any event carries a non-finite timestamp.
pub fn merge_events(streams: Vec<Vec<Event>>) -> Vec<Event> {
    let mut all: Vec<Event> = streams.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        (a.t, a.worker)
            .partial_cmp(&(b.t, b.worker))
            .expect("finite event timestamps")
    });
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(step: u64) -> EventKind {
        EventKind::Step {
            step,
            occupancy: 1,
            layers: 8,
            dur_s: 0.1,
        }
    }

    #[test]
    fn recorder_stamps_ambient_context() {
        let mut r = Recorder::for_worker(3);
        r.set_clock(1.5);
        r.set_seq(Some(42));
        r.record(step(0));
        r.set_clock(2.0);
        r.set_seq(None);
        r.record(step(1));
        let ev = r.into_events();
        assert_eq!(ev[0].t, 1.5);
        assert_eq!(ev[0].worker, 3);
        assert_eq!(ev[0].seq, Some(42));
        assert_eq!(ev[1].t, 2.0);
        assert_eq!(ev[1].seq, None);
    }

    #[test]
    fn null_sink_and_none_are_disabled() {
        assert!(!NullSink.enabled());
        let mut none: Option<Recorder> = None;
        assert!(!none.enabled());
        none.record(step(0)); // must be a no-op, not a panic
        let mut some = Some(Recorder::new());
        assert!(some.enabled());
        some.record(step(0));
        assert_eq!(some.unwrap().events().len(), 1);
    }

    #[test]
    fn merge_orders_by_time_then_worker_stably() {
        let mut a = Recorder::for_worker(1);
        a.set_clock(2.0);
        a.record(step(10));
        a.set_clock(2.0);
        a.record(step(11)); // same instant: emission order must hold
        let mut b = Recorder::for_worker(0);
        b.set_clock(2.0);
        b.record(step(20));
        b.set_clock(1.0);
        b.record(step(21));
        let merged = merge_events(vec![a.into_events(), b.into_events()]);
        let lanes: Vec<u32> = merged.iter().map(|e| e.worker).collect();
        assert_eq!(lanes, [0, 0, 1, 1], "time first, then worker lane");
        // Worker 1's two same-instant events keep emission order.
        let steps: Vec<u64> = merged
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Step { step, .. } => Some(step),
                _ => None,
            })
            .collect();
        assert_eq!(steps, [21, 20, 10, 11]);
    }

    #[test]
    fn record_at_overrides_clock() {
        let mut r = Recorder::new();
        r.set_clock(9.0);
        r.record_at(
            1.25,
            Some(7),
            EventKind::Request {
                request: 7,
                arrival_s: 1.25,
                first_token_s: 1.5,
                finish_s: 2.0,
                tokens: 4,
            },
        );
        assert_eq!(r.events()[0].t, 1.25);
        assert_eq!(r.events()[0].seq, Some(7));
    }
}
