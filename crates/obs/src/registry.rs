//! Counters, gauges and fixed-bucket histograms with exact cross-worker
//! merge.
//!
//! Names follow Prometheus conventions, with labels inline in the key
//! (`specee_op_flops_total{kind="ffn"}`). Keys live in `BTreeMap`s so
//! every snapshot, merge and export walks them in one deterministic
//! order. Histogram bucket bounds are **fixed presets** — the same on
//! every worker — which is what makes [`MetricsRegistry::merge`] exact:
//! merging is element-wise addition, never re-bucketing.

use std::collections::BTreeMap;

use specee_metrics::{CostReport, Meter};

use crate::event::{Event, EventKind};
use crate::quantile::nearest_rank;

/// Fixed bucket upper bounds for exit-layer histograms (layers).
///
/// Model-independent so per-worker histograms always merge exactly, even
/// across heterogeneous stacks.
pub const EXIT_LAYER_BOUNDS: [f64; 12] = [
    1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0, 32.0, 64.0,
];

/// Fixed bucket upper bounds for TTFT histograms (seconds).
pub const TTFT_BOUNDS: [f64; 12] = [
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
];

/// Fixed bucket upper bounds for queue-depth histograms (requests).
pub const QUEUE_DEPTH_BOUNDS: [f64; 9] = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Fixed bucket upper bounds for per-round accepted-prefix-length
/// histograms (tokens committed per self-draft verify round).
pub const DRAFT_ACCEPTED_LEN_BOUNDS: [f64; 9] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0, 16.0];

/// A fixed-bucket histogram (Prometheus semantics: buckets are
/// cumulative-`le` at export; stored counts here are per-bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the `+Inf` overflow.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// A histogram over `bounds` (finite, strictly increasing upper
    /// bounds; an implicit `+Inf` bucket is appended).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite or not strictly
    /// increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation (`le` semantics: the first bucket whose
    /// bound is `>= v`, else the `+Inf` overflow bucket).
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative count at each bound, then the total (`+Inf`).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut cum = Vec::with_capacity(self.counts.len());
        let mut acc = 0;
        for &c in &self.counts {
            acc += c;
            cum.push(acc);
        }
        cum
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Nearest-rank quantile, resolved to the upper bound of the bucket
    /// holding that rank (the same rank rule as
    /// [`percentile_sorted`](crate::percentile_sorted), applied to
    /// bucketed data). Returns `0.0` when empty and `f64::INFINITY` when
    /// the rank lands in the overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        let rank = nearest_rank(self.count as usize, q) as u64;
        if rank == 0 {
            return 0.0;
        }
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        unreachable!("rank is clamped to the total count");
    }

    /// Adds `other`'s counts into `self` — exact, because the bounds
    /// must match.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histograms merge exactly only over identical bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// A named collection of counters, gauges and histograms.
///
/// Counters are monotone totals (stored as `f64` so FLOP totals fit);
/// gauges are point-in-time values. [`MetricsRegistry::merge`] is exact:
/// counters, histogram buckets and gauges all add, so a cluster-wide
/// registry is the element-wise sum of its workers' registries
/// (per-worker modelled latency gauges sum to cluster device-seconds).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `v` to counter `name` (created at zero).
    pub fn counter_add(&mut self, name: &str, v: f64) {
        *self.counters.entry(name.to_string()).or_insert(0.0) += v;
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `v` into histogram `name`, creating it over `bounds` on
    /// first use.
    pub fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Counter value (zero when absent).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// Gauge value, when set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, when present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Element-wise exact merge of another registry (counters add,
    /// gauges add, histogram buckets add).
    ///
    /// # Panics
    ///
    /// Panics if a shared histogram name carries different bounds.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            self.counter_add(k, v);
        }
        for (k, &v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }
}

/// Folds a [`Meter`]'s op totals into `reg` as counters
/// (`specee_op_{flops,bytes,kernels}_total{kind="..."}` plus token and
/// host-step totals), so the measured-ops half of a run lands in the
/// same export as its event-derived histograms.
pub fn fold_meter(reg: &mut MetricsRegistry, meter: &Meter) {
    for (kind, t) in meter.iter() {
        reg.counter_add(
            &format!("specee_op_flops_total{{kind=\"{kind}\"}}"),
            t.flops,
        );
        reg.counter_add(
            &format!("specee_op_bytes_total{{kind=\"{kind}\"}}"),
            t.bytes,
        );
        reg.counter_add(
            &format!("specee_op_kernels_total{{kind=\"{kind}\"}}"),
            t.kernels as f64,
        );
    }
    reg.counter_add("specee_tokens_total", meter.tokens() as f64);
    reg.counter_add("specee_host_steps_total", meter.host_steps() as f64);
}

/// Folds a roofline [`CostReport`] into `reg` as gauges: per-`OpKind`
/// modelled latency/energy (and whether the kind was memory-bound) plus
/// end-to-end totals — one export carries both measured ops and modelled
/// latency.
pub fn fold_roofline(reg: &mut MetricsRegistry, cost: &CostReport) {
    for (kind, c) in &cost.by_kind {
        reg.gauge_set(
            &format!("specee_op_modeled_latency_seconds{{kind=\"{kind}\"}}"),
            c.latency_s,
        );
        reg.gauge_set(
            &format!("specee_op_modeled_energy_joules{{kind=\"{kind}\"}}"),
            c.energy_j,
        );
        reg.gauge_set(
            &format!("specee_op_memory_bound{{kind=\"{kind}\"}}"),
            if c.memory_bound { 1.0 } else { 0.0 },
        );
    }
    reg.gauge_set("specee_modeled_latency_seconds", cost.latency_s);
    reg.gauge_set("specee_modeled_energy_joules", cost.energy_j);
    reg.gauge_set("specee_modeled_framework_seconds", cost.framework_s);
}

/// Folds an event stream into `reg`: exit-layer, TTFT and queue-depth
/// histograms (over the fixed preset bounds) plus per-type counters.
///
/// Deriving metrics from the *event stream* — rather than instrumenting
/// the engines twice — keeps one source of truth: the same recorded run
/// always folds to the same registry.
pub fn fold_events(reg: &mut MetricsRegistry, events: &[Event]) {
    for e in events {
        match &e.kind {
            EventKind::ExitDecision {
                class,
                layer,
                accepted,
                ..
            } => {
                let which = if *accepted {
                    "specee_exits_accepted_total"
                } else {
                    "specee_exits_rejected_total"
                };
                reg.counter_add(&format!("{which}{{class=\"{class}\"}}"), 1.0);
                if *accepted {
                    reg.observe("specee_exit_layer", &EXIT_LAYER_BOUNDS, f64::from(*layer));
                }
            }
            EventKind::Step { .. } => reg.counter_add("specee_steps_total", 1.0),
            EventKind::Admission { queue_depth, .. } => {
                reg.counter_add("specee_admissions_total", 1.0);
                reg.observe(
                    "specee_queue_depth",
                    &QUEUE_DEPTH_BOUNDS,
                    f64::from(*queue_depth),
                );
            }
            EventKind::Request {
                arrival_s,
                first_token_s,
                tokens,
                ..
            } => {
                reg.counter_add("specee_requests_total", 1.0);
                reg.counter_add("specee_decode_tokens_total", f64::from(*tokens));
                reg.observe(
                    "specee_ttft_seconds",
                    &TTFT_BOUNDS,
                    first_token_s - arrival_s,
                );
            }
            EventKind::Routing { policy, .. } => {
                reg.counter_add(&format!("specee_routed_total{{policy=\"{policy}\"}}"), 1.0);
            }
            EventKind::ControllerApply { class, .. } => {
                reg.counter_add(
                    &format!("specee_controller_applies_total{{class=\"{class}\"}}"),
                    1.0,
                );
            }
            EventKind::Gossip { classes, .. } => {
                reg.counter_add("specee_gossip_deltas_total", 1.0);
                reg.counter_add("specee_gossip_classes_total", f64::from(*classes));
            }
            EventKind::Preempted { .. } => {
                reg.counter_add("specee_kv_preemptions_total", 1.0);
            }
            EventKind::Resumed { .. } => {
                reg.counter_add("specee_kv_resumes_total", 1.0);
            }
            EventKind::KvPressure {
                pages,
                shared,
                parked,
            } => {
                reg.gauge_set("specee_kv_occupancy", f64::from(*pages));
                reg.gauge_set("specee_kv_shared_pages", f64::from(*shared));
                reg.gauge_set("specee_kv_parked", f64::from(*parked));
            }
            EventKind::DraftPass { nodes, .. } => {
                reg.counter_add("specee_draft_passes_total", 1.0);
                reg.counter_add("specee_draft_nodes_total", f64::from(*nodes));
            }
            EventKind::TreeVerified { accepted, .. } => {
                reg.counter_add("specee_trees_verified_total", 1.0);
                reg.observe(
                    "specee_draft_accepted_len",
                    &DRAFT_ACCEPTED_LEN_BOUNDS,
                    f64::from(*accepted),
                );
            }
            EventKind::SloFired { objective, .. } => {
                reg.counter_add(
                    &format!("specee_slo_fired_total{{objective=\"{objective}\"}}"),
                    1.0,
                );
                reg.gauge_set(
                    &format!("specee_slo_burning{{objective=\"{objective}\"}}"),
                    1.0,
                );
            }
            EventKind::SloCleared { objective } => {
                reg.counter_add(
                    &format!("specee_slo_cleared_total{{objective=\"{objective}\"}}"),
                    1.0,
                );
                reg.gauge_set(
                    &format!("specee_slo_burning{{objective=\"{objective}\"}}"),
                    0.0,
                );
            }
        }
    }
}

/// Folds a recorder's dropped-event count into `reg` as the
/// `specee_trace_dropped_events_total` counter, so a truncated or
/// sampled trace is visible in the same export it truncated.
pub fn fold_dropped_events(reg: &mut MetricsRegistry, dropped: u64) {
    reg.counter_add("specee_trace_dropped_events_total", dropped as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use specee_metrics::{HardwareProfile, OpKind, Roofline};

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.cumulative(), vec![2, 3, 4, 5]);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 2.0); // rank 3 → second bucket
        assert_eq!(h.quantile(0.8), 4.0);
        assert_eq!(h.quantile(1.0), f64::INFINITY); // overflow bucket
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_quantile_shares_the_nearest_rank_rule() {
        // Bucketed quantiles must land in the bucket holding the same
        // rank percentile_sorted would pick on the raw sample.
        let sample = [0.5, 1.0, 1.5, 3.0, 3.5, 3.9];
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in sample {
            h.observe(v);
        }
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            let exact = crate::percentile(&sample, q);
            let bucket = h.quantile(q);
            assert!(
                exact <= bucket,
                "bucket upper bound bounds the exact value (q = {q})"
            );
        }
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        a.observe(5.0);
        let mut b = Histogram::new(&[1.0, 2.0]);
        b.observe(1.5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.cumulative(), vec![1, 2, 3]);
        assert!((a.sum() - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "identical bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0]);
        a.merge(&Histogram::new(&[2.0]));
    }

    #[test]
    fn registry_merge_sums_everything() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1.0);
        a.gauge_set("g", 2.0);
        a.observe("h", &[1.0, 2.0], 0.5);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2.0);
        b.gauge_set("g", 3.0);
        b.observe("h", &[1.0, 2.0], 1.5);
        b.observe("h2", &[1.0], 0.5);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3.0);
        assert_eq!(a.gauge("g"), Some(5.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h2").unwrap().count(), 1);
    }

    #[test]
    fn registry_merge_with_disjoint_keys_is_a_union() {
        let mut a = MetricsRegistry::new();
        a.counter_add("only_a", 1.0);
        a.gauge_set("gauge_a", 4.0);
        a.observe("hist_a", &[1.0], 0.5);
        let mut b = MetricsRegistry::new();
        b.counter_add("only_b", 2.0);
        b.gauge_set("gauge_b", 5.0);
        b.observe("hist_b", &[2.0], 1.5);
        a.merge(&b);
        assert_eq!(a.counter("only_a"), 1.0);
        assert_eq!(a.counter("only_b"), 2.0);
        assert_eq!(a.gauge("gauge_a"), Some(4.0));
        assert_eq!(a.gauge("gauge_b"), Some(5.0));
        assert_eq!(a.histogram("hist_a").unwrap().count(), 1);
        assert_eq!(a.histogram("hist_b").unwrap().count(), 1);
        assert_eq!(a.counters().count(), 2);
        // `b` is untouched by the merge.
        assert_eq!(b.counter("only_a"), 0.0);
    }

    #[test]
    #[should_panic(expected = "identical bounds")]
    fn registry_merge_rejects_mismatched_histogram_presets() {
        // Same metric name recorded under different bucket presets on
        // two workers must fail loudly, not blend silently.
        let mut a = MetricsRegistry::new();
        a.observe("specee_ttft_seconds", &TTFT_BOUNDS, 0.1);
        let mut b = MetricsRegistry::new();
        b.observe("specee_ttft_seconds", &QUEUE_DEPTH_BOUNDS, 0.1);
        a.merge(&b);
    }

    #[test]
    fn registry_merge_is_associative_across_three_workers() {
        let worker = |seed: u64| {
            let mut reg = MetricsRegistry::new();
            reg.counter_add("specee_steps_total", seed as f64);
            reg.counter_add(&format!("specee_only_{seed}"), 1.0);
            reg.gauge_set("specee_depth", seed as f64);
            for i in 0..seed {
                reg.observe("specee_ttft_seconds", &TTFT_BOUNDS, 0.01 * i as f64);
            }
            reg
        };
        let (w0, w1, w2) = (worker(1), worker(2), worker(3));
        // (w0 ∪ w1) ∪ w2
        let mut left = MetricsRegistry::new();
        left.merge(&w0);
        left.merge(&w1);
        left.merge(&w2);
        // w0 ∪ (w1 ∪ w2)
        let mut right_tail = MetricsRegistry::new();
        right_tail.merge(&w1);
        right_tail.merge(&w2);
        let mut right = MetricsRegistry::new();
        right.merge(&w0);
        right.merge(&right_tail);
        assert_eq!(
            crate::prometheus_text(&left),
            crate::prometheus_text(&right),
            "merge must be associative: the coordinator may fold worker \
             registries in any grouping"
        );
        assert_eq!(left.counter("specee_steps_total"), 6.0);
        assert_eq!(left.histogram("specee_ttft_seconds").unwrap().count(), 6);
    }

    #[test]
    fn slo_events_fold_to_counters_and_burning_gauge() {
        use crate::event::Event;
        let ev = |kind| Event {
            t: 0.0,
            worker: 0,
            seq: None,
            kind,
        };
        let mut reg = MetricsRegistry::new();
        fold_events(
            &mut reg,
            &[ev(EventKind::SloFired {
                objective: "p99_ttft".to_string(),
                burn_rate: 2.5,
            })],
        );
        assert_eq!(
            reg.counter("specee_slo_fired_total{objective=\"p99_ttft\"}"),
            1.0
        );
        assert_eq!(
            reg.gauge("specee_slo_burning{objective=\"p99_ttft\"}"),
            Some(1.0)
        );
        fold_events(
            &mut reg,
            &[ev(EventKind::SloCleared {
                objective: "p99_ttft".to_string(),
            })],
        );
        assert_eq!(
            reg.counter("specee_slo_cleared_total{objective=\"p99_ttft\"}"),
            1.0
        );
        assert_eq!(
            reg.gauge("specee_slo_burning{objective=\"p99_ttft\"}"),
            Some(0.0)
        );
        fold_dropped_events(&mut reg, 17);
        assert_eq!(reg.counter("specee_trace_dropped_events_total"), 17.0);
    }

    #[test]
    fn draft_events_fold_to_counters_and_accepted_len_histogram() {
        use crate::event::Event;
        let ev = |kind| Event {
            t: 0.0,
            worker: 0,
            seq: Some(1),
            kind,
        };
        let mut reg = MetricsRegistry::new();
        fold_events(
            &mut reg,
            &[
                ev(EventKind::DraftPass {
                    nodes: 7,
                    exit_layer: 3,
                }),
                ev(EventKind::TreeVerified {
                    nodes: 7,
                    accepted: 2,
                }),
                ev(EventKind::TreeVerified {
                    nodes: 7,
                    accepted: 4,
                }),
            ],
        );
        assert_eq!(reg.counter("specee_draft_passes_total"), 1.0);
        assert_eq!(reg.counter("specee_draft_nodes_total"), 7.0);
        assert_eq!(reg.counter("specee_trees_verified_total"), 2.0);
        let h = reg.histogram("specee_draft_accepted_len").unwrap();
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn meter_and_roofline_fold_into_one_registry() {
        let mut m = Meter::new();
        m.record(OpKind::Ffn, 100.0, 200.0, 3);
        m.record(OpKind::Predictor, 1.0, 1e9, 1);
        m.mark_token();
        let mut reg = MetricsRegistry::new();
        fold_meter(&mut reg, &m);
        assert_eq!(reg.counter("specee_op_flops_total{kind=\"ffn\"}"), 100.0);
        assert_eq!(reg.counter("specee_op_kernels_total{kind=\"ffn\"}"), 3.0);
        assert_eq!(reg.counter("specee_tokens_total"), 1.0);

        let cost = Roofline::new(HardwareProfile::a100_80g()).cost(&m);
        fold_roofline(&mut reg, &cost);
        let lat = reg
            .gauge("specee_op_modeled_latency_seconds{kind=\"predictor\"}")
            .unwrap();
        assert!(lat > 0.0);
        assert_eq!(
            reg.gauge("specee_op_memory_bound{kind=\"predictor\"}"),
            Some(1.0),
            "the predictor is the paper's memory-bound op"
        );
        assert_eq!(
            reg.gauge("specee_modeled_latency_seconds"),
            Some(cost.latency_s)
        );
    }

    #[test]
    fn events_fold_to_histograms_and_counters() {
        use crate::event::Event;
        let ev = |kind| Event {
            t: 0.0,
            worker: 0,
            seq: None,
            kind,
        };
        let events = vec![
            ev(EventKind::ExitDecision {
                class: 0,
                layer: 3,
                score: 0.9,
                threshold: 0.5,
                accepted: true,
            }),
            ev(EventKind::ExitDecision {
                class: 1,
                layer: 9,
                score: 0.1,
                threshold: 0.5,
                accepted: false,
            }),
            ev(EventKind::Admission {
                request: 0,
                queue_depth: 3,
            }),
            ev(EventKind::Request {
                request: 0,
                arrival_s: 0.0,
                first_token_s: 0.02,
                finish_s: 0.5,
                tokens: 8,
            }),
            ev(EventKind::Step {
                step: 0,
                occupancy: 1,
                layers: 12,
                dur_s: 0.01,
            }),
        ];
        let mut reg = MetricsRegistry::new();
        fold_events(&mut reg, &events);
        assert_eq!(reg.counter("specee_exits_accepted_total{class=\"0\"}"), 1.0);
        assert_eq!(reg.counter("specee_exits_rejected_total{class=\"1\"}"), 1.0);
        assert_eq!(reg.counter("specee_steps_total"), 1.0);
        assert_eq!(reg.counter("specee_decode_tokens_total"), 8.0);
        assert_eq!(reg.histogram("specee_exit_layer").unwrap().count(), 1);
        assert_eq!(reg.histogram("specee_queue_depth").unwrap().count(), 1);
        let ttft = reg.histogram("specee_ttft_seconds").unwrap();
        assert_eq!(ttft.count(), 1);
        assert!((ttft.sum() - 0.02).abs() < 1e-12);
    }
}
