//! SLO objectives with multi-window burn-rate alerting.
//!
//! An [`SloSpec`] declares objectives (`p99_ttft ≤ X` seconds,
//! `false_exit_rate ≤ Y`) plus the window geometry; an [`SloTracker`]
//! consumes observations stamped with the simulated clock and answers,
//! at step boundaries, whether each objective is burning its error
//! budget too fast.
//!
//! The alerting rule is the SRE multi-window one: the *burn rate* is
//! the bad-event fraction divided by the error budget (`1 - q` for a
//! quantile objective, the declared limit for a rate objective), and an
//! objective fires only when **both** a fast and a slow window exceed
//! the fire threshold — the fast window gives low detection latency,
//! the slow window vetoes one-bucket blips. It clears when the fast
//! window alone drops below the clear threshold, so recovery is prompt.
//!
//! Everything is keyed to the simulated clock through the
//! exact-retirement windows in [`crate::window`], so a tracker is a
//! pure function of the observation stream: the serving tiers run it
//! whether or not a trace recorder is attached, and traced and untraced
//! runs stay bit-identical. Transitions are returned as typed
//! [`EventKind::SloFired`] / [`EventKind::SloCleared`] values for the
//! caller to stamp into its trace stream.

use crate::event::EventKind;
use crate::registry::TTFT_BOUNDS;
use crate::sketch::QuantileSketch;
use crate::window::{RollingCounter, RollingHistogram};

/// What an objective bounds.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// `pNN_ttft = limit`: the `q`-quantile of time-to-first-token must
    /// stay at or under `limit_s` simulated seconds. The error budget
    /// is `1 - q`.
    LatencyQuantile {
        /// The quantile, in `(0, 1)` (0.99 for `p99_ttft`).
        q: f64,
        /// The bound, simulated seconds.
        limit_s: f64,
    },
    /// `false_exit_rate = limit`: the fraction of predictor fires the
    /// verifier rejects must stay at or under `limit`, which is also
    /// the error budget.
    FalseExitRate {
        /// The bound, a fraction in `(0, 1)`.
        limit: f64,
    },
}

/// One declared objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloObjective {
    /// The objective's name as declared (`p99_ttft`, `false_exit_rate`)
    /// — the label stamped on events and Prometheus series.
    pub name: String,
    /// What it bounds.
    pub kind: SloKind,
}

impl SloObjective {
    /// Parses one `name=value` objective.
    ///
    /// Accepted names: `pNN_ttft` (NN in 1..=99, value in simulated
    /// seconds) and `false_exit_rate` (value a fraction in `(0, 1)`).
    pub fn parse(spec: &str) -> Result<SloObjective, String> {
        let (name, value) = spec
            .split_once('=')
            .ok_or_else(|| format!("objective `{spec}` must look like p99_ttft=0.25"))?;
        let (name, value) = (name.trim(), value.trim());
        let limit: f64 = value
            .parse()
            .map_err(|_| format!("objective `{name}`: `{value}` is not a number"))?;
        if !limit.is_finite() || limit <= 0.0 {
            return Err(format!(
                "objective `{name}`: bound must be finite and positive, got `{value}`"
            ));
        }
        if name == "false_exit_rate" {
            if limit >= 1.0 {
                return Err(format!(
                    "objective `false_exit_rate`: bound is a fraction below 1, got `{value}`"
                ));
            }
            return Ok(SloObjective {
                name: name.to_string(),
                kind: SloKind::FalseExitRate { limit },
            });
        }
        if let Some(nn) = name
            .strip_prefix('p')
            .and_then(|rest| rest.strip_suffix("_ttft"))
        {
            let nn: u32 = nn
                .parse()
                .map_err(|_| format!("objective `{name}`: quantile must be an integer 1..=99"))?;
            if !(1..=99).contains(&nn) {
                return Err(format!(
                    "objective `{name}`: quantile must be in 1..=99, got {nn}"
                ));
            }
            return Ok(SloObjective {
                name: name.to_string(),
                kind: SloKind::LatencyQuantile {
                    q: f64::from(nn) / 100.0,
                    limit_s: limit,
                },
            });
        }
        Err(format!(
            "unknown objective `{name}` (expected pNN_ttft or false_exit_rate)"
        ))
    }

    /// The error budget the burn rate is measured against.
    fn budget(&self) -> f64 {
        match self.kind {
            SloKind::LatencyQuantile { q, .. } => 1.0 - q,
            SloKind::FalseExitRate { limit } => limit,
        }
    }
}

/// A set of objectives plus the shared window geometry, all in
/// simulated seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// The declared objectives.
    pub objectives: Vec<SloObjective>,
    /// Width of one window bucket.
    pub bucket_s: f64,
    /// Span of the fast (detection) window.
    pub fast_window_s: f64,
    /// Span of the slow (veto) window.
    pub slow_window_s: f64,
    /// Burn rate at or above which an objective fires (both windows).
    pub fire_burn: f64,
    /// Fast-window burn rate below which a firing objective clears.
    pub clear_burn: f64,
    /// Fast-window observations required before an objective may fire
    /// (a single early bad event is not a trend).
    pub min_events: u64,
}

impl Default for SloSpec {
    /// Geometry scaled to this repo's simulated serving runs (seconds
    /// of simulated time, not the hours of production SRE practice):
    /// 0.25 s buckets, a 1 s fast window, a 4 s slow window, fire at
    /// burn ≥ 1 in both, clear when the fast window halves that.
    fn default() -> Self {
        SloSpec {
            objectives: Vec::new(),
            bucket_s: 0.25,
            fast_window_s: 1.0,
            slow_window_s: 4.0,
            fire_burn: 1.0,
            clear_burn: 0.5,
            min_events: 4,
        }
    }
}

impl SloSpec {
    /// Parses a comma-separated objective list
    /// (`p99_ttft=0.25,false_exit_rate=0.2`) with default geometry.
    pub fn parse(spec: &str) -> Result<SloSpec, String> {
        let objectives = spec
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(SloObjective::parse)
            .collect::<Result<Vec<_>, _>>()?;
        if objectives.is_empty() {
            return Err(
                "no objectives given (expected p99_ttft=... or false_exit_rate=...)".into(),
            );
        }
        Ok(SloSpec {
            objectives,
            ..SloSpec::default()
        })
    }

    /// A spec with a single objective and default geometry.
    pub fn single(objective: SloObjective) -> SloSpec {
        SloSpec {
            objectives: vec![objective],
            ..SloSpec::default()
        }
    }
}

/// Per-objective window pair plus alert state.
#[derive(Debug, Clone)]
struct ObjectiveState {
    objective: SloObjective,
    fast_bad: RollingCounter,
    fast_total: RollingCounter,
    slow_bad: RollingCounter,
    slow_total: RollingCounter,
    firing: bool,
    /// Fast-window burn as of the last [`SloTracker::evaluate`].
    last_burn: f64,
}

impl ObjectiveState {
    fn advance_to(&mut self, t: f64) {
        self.fast_bad.advance_to(t);
        self.fast_total.advance_to(t);
        self.slow_bad.advance_to(t);
        self.slow_total.advance_to(t);
    }

    fn observe(&mut self, bad: bool) {
        self.fast_total.add(1);
        self.slow_total.add(1);
        if bad {
            self.fast_bad.add(1);
            self.slow_bad.add(1);
        }
    }

    fn burn(bad: u64, total: u64, budget: f64) -> f64 {
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / budget
    }

    fn fast_burn(&self) -> f64 {
        Self::burn(
            self.fast_bad.total(),
            self.fast_total.total(),
            self.objective.budget(),
        )
    }

    fn slow_burn(&self) -> f64 {
        Self::burn(
            self.slow_bad.total(),
            self.slow_total.total(),
            self.objective.budget(),
        )
    }
}

/// The online evaluator for one [`SloSpec`].
#[derive(Debug, Clone)]
pub struct SloTracker {
    spec: SloSpec,
    states: Vec<ObjectiveState>,
    /// Whole-run TTFT stream (bounded memory, deterministic).
    ttft_sketch: QuantileSketch,
    /// Windowed TTFT distribution over the slow window.
    ttft_window: RollingHistogram,
}

impl SloTracker {
    /// A tracker over the spec's objectives.
    ///
    /// # Panics
    ///
    /// If the window geometry is degenerate (non-positive bucket width,
    /// windows narrower than one bucket).
    pub fn new(spec: SloSpec) -> SloTracker {
        let buckets = |span_s: f64| {
            let n = (span_s / spec.bucket_s).round() as usize;
            assert!(n >= 1, "window must span at least one bucket");
            n
        };
        let (fast, slow) = (buckets(spec.fast_window_s), buckets(spec.slow_window_s));
        let states = spec
            .objectives
            .iter()
            .map(|objective| ObjectiveState {
                objective: objective.clone(),
                fast_bad: RollingCounter::new(spec.bucket_s, fast),
                fast_total: RollingCounter::new(spec.bucket_s, fast),
                slow_bad: RollingCounter::new(spec.bucket_s, slow),
                slow_total: RollingCounter::new(spec.bucket_s, slow),
                firing: false,
                last_burn: 0.0,
            })
            .collect();
        let ttft_window = RollingHistogram::new(&TTFT_BOUNDS, spec.bucket_s, slow);
        SloTracker {
            spec,
            states,
            ttft_sketch: QuantileSketch::default(),
            ttft_window,
        }
    }

    /// The spec the tracker was built from.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Records one request's time-to-first-token at simulated time `t`.
    pub fn observe_ttft(&mut self, t: f64, ttft_s: f64) {
        self.ttft_window.advance_to(t);
        self.ttft_window.observe(ttft_s);
        self.ttft_sketch.insert(ttft_s);
        for state in &mut self.states {
            if let SloKind::LatencyQuantile { limit_s, .. } = state.objective.kind {
                state.advance_to(t);
                state.observe(ttft_s > limit_s);
            }
        }
    }

    /// Records one predictor fire (accepted or rejected by the
    /// verifier) at simulated time `t`.
    pub fn observe_exit(&mut self, t: f64, accepted: bool) {
        for state in &mut self.states {
            if matches!(state.objective.kind, SloKind::FalseExitRate { .. }) {
                state.advance_to(t);
                state.observe(!accepted);
            }
        }
    }

    /// Evaluates every objective at the step boundary `t`, returning
    /// the transitions (fired / cleared) that happened, in objective
    /// declaration order. Call this exactly where the simulated clock
    /// advances; it is what keeps alert state deterministic.
    pub fn evaluate(&mut self, t: f64) -> Vec<EventKind> {
        let mut transitions = Vec::new();
        for state in &mut self.states {
            state.advance_to(t);
            let fast = state.fast_burn();
            state.last_burn = fast;
            if !state.firing {
                let enough = state.fast_total.total() >= self.spec.min_events;
                if enough && fast >= self.spec.fire_burn && state.slow_burn() >= self.spec.fire_burn
                {
                    state.firing = true;
                    transitions.push(EventKind::SloFired {
                        objective: state.objective.name.clone(),
                        burn_rate: fast,
                    });
                }
            } else if fast < self.spec.clear_burn {
                state.firing = false;
                transitions.push(EventKind::SloCleared {
                    objective: state.objective.name.clone(),
                });
            }
        }
        transitions
    }

    /// Whether any objective is currently firing.
    pub fn any_firing(&self) -> bool {
        self.states.iter().any(|s| s.firing)
    }

    /// The controller feedback signal, as of the last [`evaluate`]:
    /// positive while a latency objective burns (push the operating
    /// point toward aggressive exits to drain the queue), negative
    /// while a false-exit objective burns (raise thresholds toward
    /// exits-off), `0.0` when nothing fires. Magnitude saturates at 1
    /// when the fast-window burn reaches twice the fire threshold.
    ///
    /// [`evaluate`]: SloTracker::evaluate
    pub fn pressure(&self) -> f64 {
        let mut p = 0.0;
        for state in &self.states {
            if !state.firing {
                continue;
            }
            let magnitude = (state.last_burn / (2.0 * self.spec.fire_burn)).clamp(0.0, 1.0);
            match state.objective.kind {
                SloKind::LatencyQuantile { .. } => p += magnitude,
                SloKind::FalseExitRate { .. } => p -= magnitude,
            }
        }
        p.clamp(-1.0, 1.0)
    }

    /// The `q`-quantile of TTFT over the whole run so far, from the
    /// streaming sketch.
    pub fn ttft_quantile(&self, q: f64) -> f64 {
        self.ttft_sketch.quantile(q)
    }

    /// The `q`-quantile of TTFT over the trailing slow window, from the
    /// windowed histogram (bucket upper bound semantics).
    pub fn windowed_ttft_quantile(&self, q: f64) -> f64 {
        self.ttft_window.quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p99(limit_s: f64) -> SloSpec {
        SloSpec::single(SloObjective::parse(&format!("p99_ttft={limit_s}")).expect("parses"))
    }

    #[test]
    fn parse_accepts_the_documented_forms() {
        let spec = SloSpec::parse("p99_ttft=0.25,false_exit_rate=0.2").expect("parses");
        assert_eq!(spec.objectives.len(), 2);
        assert_eq!(
            spec.objectives[0].kind,
            SloKind::LatencyQuantile {
                q: 0.99,
                limit_s: 0.25
            }
        );
        assert_eq!(
            spec.objectives[1].kind,
            SloKind::FalseExitRate { limit: 0.2 }
        );
        assert_eq!(spec.objectives[0].name, "p99_ttft");
    }

    #[test]
    fn parse_rejects_malformed_objectives() {
        for (spec, needle) in [
            ("p99_ttft", "must look like"),
            ("p99_ttft=abc", "is not a number"),
            ("p99_ttft=-1", "finite and positive"),
            ("p0_ttft=0.5", "quantile must be in 1..=99"),
            ("p100_ttft=0.5", "quantile must be in 1..=99"),
            ("false_exit_rate=1.5", "fraction below 1"),
            ("queue_depth=3", "unknown objective"),
            ("", "no objectives"),
        ] {
            let err = SloSpec::parse(spec).expect_err(spec);
            assert!(err.contains(needle), "`{spec}` -> `{err}`");
        }
    }

    #[test]
    fn fires_only_when_both_windows_burn_and_clears_on_fast_recovery() {
        let mut tracker = SloTracker::new(p99(0.1));
        // Healthy traffic fills both windows.
        for i in 0..8 {
            tracker.observe_ttft(f64::from(i) * 0.25, 0.05);
        }
        assert!(tracker.evaluate(2.0).is_empty());
        assert!(!tracker.any_firing());
        // A sustained burst of misses: fast window saturates, slow
        // window follows, the objective fires exactly once.
        let mut fired = 0;
        for i in 0..8 {
            let t = 2.0 + f64::from(i) * 0.25;
            tracker.observe_ttft(t, 0.5);
            fired += tracker
                .evaluate(t)
                .iter()
                .filter(|e| matches!(e, EventKind::SloFired { .. }))
                .count();
        }
        assert_eq!(fired, 1);
        assert!(tracker.any_firing());
        assert!(tracker.pressure() > 0.0, "latency pressure is positive");
        // Recovery: once the fast window is all-good, it clears even
        // though the slow window still remembers the burst.
        for i in 0..8 {
            let t = 4.0 + f64::from(i) * 0.25;
            tracker.observe_ttft(t, 0.01);
        }
        let transitions = tracker.evaluate(6.0);
        assert!(transitions
            .iter()
            .any(|e| matches!(e, EventKind::SloCleared { .. })));
        assert!(!tracker.any_firing());
        assert_eq!(tracker.pressure(), 0.0);
    }

    #[test]
    fn one_early_bad_event_does_not_fire() {
        let mut tracker = SloTracker::new(p99(0.1));
        tracker.observe_ttft(0.0, 99.0);
        assert!(tracker.evaluate(0.0).is_empty(), "min_events guards blips");
    }

    #[test]
    fn false_exit_objective_pulls_pressure_negative() {
        let spec = SloSpec::parse("false_exit_rate=0.2").expect("parses");
        let mut tracker = SloTracker::new(spec);
        for i in 0..12 {
            tracker.observe_exit(f64::from(i) * 0.1, i % 2 == 0);
        }
        let transitions = tracker.evaluate(1.2);
        assert!(transitions
            .iter()
            .any(|e| matches!(e, EventKind::SloFired { .. })));
        assert!(tracker.pressure() < 0.0, "false-exit pressure is negative");
    }

    #[test]
    fn latency_observations_do_not_feed_rate_objectives() {
        let spec = SloSpec::parse("false_exit_rate=0.2").expect("parses");
        let mut tracker = SloTracker::new(spec);
        for i in 0..20 {
            tracker.observe_ttft(f64::from(i) * 0.1, 99.0);
        }
        assert!(tracker.evaluate(2.0).is_empty());
        assert_eq!(tracker.pressure(), 0.0);
    }

    #[test]
    fn tracker_quantiles_report_the_stream() {
        let mut tracker = SloTracker::new(p99(0.5));
        for i in 0..10 {
            tracker.observe_ttft(f64::from(i) * 0.1, 0.02 + f64::from(i) * 0.001);
        }
        let exact = tracker.ttft_quantile(1.0);
        assert!((exact - 0.029).abs() < 1e-12);
        // Windowed answer is a TTFT_BOUNDS bucket upper bound.
        let windowed = tracker.windowed_ttft_quantile(0.5);
        assert!((0.02..=0.1).contains(&windowed), "got {windowed}");
    }
}
