//! Typed trace events: the vocabulary of the observability plane.
//!
//! One [`Event`] is one thing the runtime did at one simulated instant on
//! one worker lane. The taxonomy deliberately mirrors the decision points
//! the SpecEE papers argue about: per-token exit decisions (the predictor
//! firing and being accepted or rejected by verification), per-step batch
//! state (the Cannikin rearmost layer), admission and routing (where
//! queue-wait tails come from), controller applies and gossip deltas (the
//! feedback plane acting).

/// Lane id used for events emitted by the cluster coordinator rather
/// than any worker (routing decisions happen before a worker is chosen).
pub const COORDINATOR_LANE: u32 = u32::MAX;

/// One recorded occurrence: a [`kind`](Event::kind) stamped with the
/// simulated clock and the lane (worker) it happened on.
///
/// `t` is *simulated* seconds — the same deterministic clock the serving
/// simulators advance — never wall time, so identical runs produce
/// byte-identical event streams. Single-stream engines, which have no
/// clock, stamp the decoded-token ordinal instead (documented at the
/// emit site).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated timestamp, seconds (token ordinal for single-stream).
    pub t: f64,
    /// Worker lane (0-based engine/worker index, or [`COORDINATOR_LANE`]).
    pub worker: u32,
    /// Sequence/request id the event belongs to, when one applies.
    pub seq: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

/// The typed payload of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// An exit predictor fired: the speculative LM-head slice scored the
    /// candidate at `layer` and verification accepted or rejected the
    /// early exit. Exactly one per predictor fire, so accepted events
    /// count taken early exits one-for-one.
    ExitDecision {
        /// Raw traffic-class id of the sequence (0 is the default class).
        class: u16,
        /// Decoder layer whose predictor fired (0-based, matching
        /// `ExitFeedback::layer`; the exit, if taken, executes
        /// `layer + 1` layers).
        layer: u32,
        /// Predictor confidence score in `[0, 1]`.
        score: f64,
        /// Exit threshold the score was compared against.
        threshold: f64,
        /// Whether verification accepted the exit.
        accepted: bool,
    },
    /// One lock-step batch decode step completed.
    Step {
        /// Engine step ordinal (0-based).
        step: u64,
        /// Sequences resident in the batch during the step.
        occupancy: u32,
        /// Rearmost decoder layer any sequence needed (the Cannikin
        /// depth the whole batch paid for).
        layers: u32,
        /// Priced duration of the step, simulated seconds.
        dur_s: f64,
    },
    /// A request was admitted into an engine's batch slots.
    Admission {
        /// Request id.
        request: u64,
        /// Requests still waiting in the queue after this admission.
        queue_depth: u32,
    },
    /// A request completed (span from arrival to finish).
    Request {
        /// Request id.
        request: u64,
        /// Arrival time, simulated seconds.
        arrival_s: f64,
        /// First-token time, simulated seconds.
        first_token_s: f64,
        /// Completion time, simulated seconds.
        finish_s: f64,
        /// Decode tokens produced.
        tokens: u32,
    },
    /// The coordinator routed a request to a worker.
    Routing {
        /// Request id.
        request: u64,
        /// Routing policy name (e.g. `"exit-aware"`).
        policy: &'static str,
        /// Chosen worker index.
        chosen: u32,
        /// Per-worker `(worker, score)` pairs when the policy scores
        /// candidates (lower is better); empty for score-free policies
        /// like round-robin.
        scores: Vec<(u32, f64)>,
    },
    /// A controller applied a new exit threshold for a class.
    ControllerApply {
        /// Raw traffic-class id.
        class: u16,
        /// Threshold now in force.
        threshold: f64,
    },
    /// A gossip delta from peer workers was absorbed.
    Gossip {
        /// Number of per-class evidence rows applied.
        classes: u32,
        /// Total feedback tokens carried by the delta.
        tokens: u64,
    },
    /// A resident sequence was evicted under KV page pressure: its
    /// pages were recycled into the pool and its generation state parked
    /// for later, bit-identical resumption.
    Preempted {
        /// Request id of the evicted sequence.
        request: u64,
        /// Priority lane of the evicted sequence (higher value = lower
        /// priority; the engine always evicts the lowest-priority
        /// resident).
        lane: u8,
        /// Physical pages the eviction returned to the pool.
        pages: u32,
    },
    /// A parked (preempted) sequence was re-seated after pages freed up;
    /// its decode continues exactly where it stopped.
    Resumed {
        /// Request id of the resumed sequence.
        request: u64,
        /// Priority lane of the resumed sequence.
        lane: u8,
    },
    /// KV page-pool pressure at a decode-step boundary.
    KvPressure {
        /// Physical pages resident in the pool.
        pages: u32,
        /// Resident pages co-leased by two or more sequences
        /// (copy-on-write prefix sharing).
        shared: u32,
        /// Sequences currently parked awaiting re-admission.
        parked: u32,
    },
    /// A self-speculative draft pass ran: the target's own shallow
    /// layers (`0..exit_layer`) drafted a token tree from the pending
    /// bonus token, writing shallow KV into per-layer scratch for later
    /// split commit.
    DraftPass {
        /// Tree nodes drafted (bonus root plus speculated nodes).
        nodes: u32,
        /// Exit layer of the shallow draft pass (layers `0..exit_layer`
        /// ran for every node).
        exit_layer: u32,
    },
    /// A drafted token tree was verified in one masked deep sweep and
    /// the accepted root-path committed (shallow KV from draft scratch,
    /// deep KV from the verify sweep — no recompute, no pool residue).
    TreeVerified {
        /// Tree nodes verified in the sweep.
        nodes: u32,
        /// Nodes on the accepted root path (tokens committed this
        /// round; the per-round accepted prefix length).
        accepted: u32,
    },
    /// An SLO objective started burning its error budget too fast:
    /// both the fast and slow burn-rate windows crossed the fire
    /// threshold at a step boundary (see `specee_obs::slo`).
    SloFired {
        /// Objective name as declared (e.g. `p99_ttft`).
        objective: String,
        /// Fast-window burn rate at the moment of firing.
        burn_rate: f64,
    },
    /// A firing SLO objective recovered: the fast-window burn rate
    /// dropped below the clear threshold.
    SloCleared {
        /// Objective name as declared (e.g. `p99_ttft`).
        objective: String,
    },
}

impl EventKind {
    /// Short stable name of the event type (used as the Chrome trace
    /// event name and in metric names).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ExitDecision { accepted: true, .. } => "exit-accept",
            EventKind::ExitDecision {
                accepted: false, ..
            } => "exit-reject",
            EventKind::Step { .. } => "step",
            EventKind::Admission { .. } => "admit",
            EventKind::Request { .. } => "request",
            EventKind::Routing { .. } => "route",
            EventKind::ControllerApply { .. } => "controller",
            EventKind::Gossip { .. } => "gossip",
            EventKind::Preempted { .. } => "preempt",
            EventKind::Resumed { .. } => "resume",
            EventKind::KvPressure { .. } => "kv-pressure",
            EventKind::DraftPass { .. } => "draft-pass",
            EventKind::TreeVerified { .. } => "tree-verified",
            EventKind::SloFired { .. } => "slo-fired",
            EventKind::SloCleared { .. } => "slo-cleared",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_names_are_stable() {
        let exit = EventKind::ExitDecision {
            class: 0,
            layer: 3,
            score: 0.9,
            threshold: 0.5,
            accepted: true,
        };
        assert_eq!(exit.name(), "exit-accept");
        let reject = EventKind::ExitDecision {
            class: 0,
            layer: 3,
            score: 0.2,
            threshold: 0.5,
            accepted: false,
        };
        assert_eq!(reject.name(), "exit-reject");
        assert_eq!(
            EventKind::Gossip {
                classes: 1,
                tokens: 2
            }
            .name(),
            "gossip"
        );
        assert_eq!(
            EventKind::Preempted {
                request: 7,
                lane: 2,
                pages: 5
            }
            .name(),
            "preempt"
        );
        assert_eq!(
            EventKind::Resumed {
                request: 7,
                lane: 2
            }
            .name(),
            "resume"
        );
        assert_eq!(
            EventKind::KvPressure {
                pages: 8,
                shared: 3,
                parked: 1
            }
            .name(),
            "kv-pressure"
        );
        assert_eq!(
            EventKind::DraftPass {
                nodes: 7,
                exit_layer: 3
            }
            .name(),
            "draft-pass"
        );
        assert_eq!(
            EventKind::TreeVerified {
                nodes: 7,
                accepted: 2
            }
            .name(),
            "tree-verified"
        );
        assert_eq!(
            EventKind::SloFired {
                objective: "p99_ttft".to_string(),
                burn_rate: 2.0
            }
            .name(),
            "slo-fired"
        );
        assert_eq!(
            EventKind::SloCleared {
                objective: "p99_ttft".to_string()
            }
            .name(),
            "slo-cleared"
        );
    }
}
