//! A deterministic streaming quantile sketch.
//!
//! KLL-style compaction with one twist: where KLL flips a coin to pick
//! which half of a sorted buffer survives, this sketch alternates the
//! surviving parity on a compaction counter. That keeps the classic
//! bounded-memory / bounded-rank-error structure while making the
//! sketch a pure function of the input stream — the property every
//! other piece of this plane is built on (a traced and an untraced run
//! must compute bit-identical sketches).
//!
//! Rank semantics match the repo-wide `nearest_rank` ladder (see
//! [`crate::nearest_rank`]): a query for `q` targets rank
//! `ceil(q * n)` clamped to `[1, n]`, and while the stream still fits
//! in the level-0 buffer (no compaction yet) the sketch's answer is
//! *exactly* the ladder's. After compactions the answer is a value from
//! the stream whose rank is within `O(n·log(n/k)/k)` of the target —
//! the property test in this module pins that bound against the exact
//! ladder.

/// Default level capacity: exact answers up to 256 samples, ~1% rank
/// error at 100k samples.
pub const DEFAULT_SKETCH_K: usize = 256;

/// A bounded-memory streaming quantile estimator over `f64` samples.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    k: usize,
    /// `levels[i]` holds items of weight `2^i`, each buffer unsorted
    /// until its compaction.
    levels: Vec<Vec<f64>>,
    count: u64,
    /// Compactions performed so far; its parity picks which half of a
    /// sorted buffer survives, replacing KLL's coin flip.
    compactions: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(DEFAULT_SKETCH_K)
    }
}

impl QuantileSketch {
    /// A sketch whose per-level buffers hold `k` items. Answers are
    /// exact until the stream exceeds `k` samples.
    ///
    /// # Panics
    ///
    /// If `k < 2` (compaction needs at least a pair to halve).
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "sketch capacity must be at least 2");
        QuantileSketch {
            k,
            levels: vec![Vec::new()],
            count: 0,
            compactions: 0,
        }
    }

    /// Samples inserted so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Inserts one sample.
    ///
    /// # Panics
    ///
    /// If `v` is not finite (a non-finite latency is always a caller
    /// bug, and one NaN would poison every later query).
    pub fn insert(&mut self, v: f64) {
        assert!(v.is_finite(), "sketch samples must be finite");
        self.levels[0].push(v);
        self.count += 1;
        let mut level = 0;
        while self.levels[level].len() >= self.k.max(2) {
            self.compact(level);
            level += 1;
        }
    }

    /// Halves `level` into `level + 1`: sort, then keep every other
    /// element starting at the parity of the compaction counter.
    fn compact(&mut self, level: usize) {
        if self.levels.len() == level + 1 {
            self.levels.push(Vec::new());
        }
        let mut buf = std::mem::take(&mut self.levels[level]);
        buf.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let start = (self.compactions & 1) as usize;
        self.compactions += 1;
        self.levels[level + 1].extend(buf.into_iter().skip(start).step_by(2));
    }

    /// The `q`-quantile estimate: the stored value whose cumulative
    /// weight first reaches the `nearest_rank` target. Returns `0.0`
    /// on an empty sketch.
    ///
    /// # Panics
    ///
    /// If `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0.0;
        }
        let rank = crate::nearest_rank(self.count as usize, q) as u64;
        let mut weighted: Vec<(f64, u64)> = self
            .levels
            .iter()
            .enumerate()
            .flat_map(|(level, buf)| buf.iter().map(move |v| (*v, 1u64 << level)))
            .collect();
        weighted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite samples"));
        // Total stored weight can undershoot `count` after compactions
        // (each one discards half a buffer), so the last stored value
        // answers any rank the sweep never reaches.
        let mut cum = 0u64;
        for (v, w) in &weighted {
            cum += w;
            if cum >= rank {
                return *v;
            }
        }
        weighted.last().map(|(v, _)| *v).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{nearest_rank, percentile};
    use proptest::prelude::*;

    /// The exact ladder answer for a stream.
    fn exact(values: &[f64], q: f64) -> f64 {
        percentile(values, q)
    }

    /// The rank (1-based, lower bound) of `v` inside `values`.
    fn rank_of(values: &[f64], v: f64) -> (usize, usize) {
        let below = values.iter().filter(|x| **x < v).count();
        let at_or_below = values.iter().filter(|x| **x <= v).count();
        (below + 1, at_or_below)
    }

    #[test]
    fn empty_sketch_answers_zero() {
        assert_eq!(QuantileSketch::new(8).quantile(0.99), 0.0);
    }

    #[test]
    fn exact_below_capacity() {
        let mut s = QuantileSketch::new(64);
        let values: Vec<f64> = (0..63).map(|i| ((i * 37) % 63) as f64 / 10.0).collect();
        for v in &values {
            s.insert(*v);
        }
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), exact(&values, q), "q = {q}");
        }
    }

    #[test]
    fn deterministic_across_clones_and_reruns() {
        let stream: Vec<f64> = (0..1000).map(|i| ((i * 193) % 997) as f64).collect();
        let mut a = QuantileSketch::new(16);
        let mut b = QuantileSketch::new(16);
        for v in &stream {
            a.insert(*v);
            b.insert(*v);
        }
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), b.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "sketch samples must be finite")]
    fn rejects_non_finite_samples() {
        QuantileSketch::new(8).insert(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn rejects_out_of_range_quantile() {
        QuantileSketch::new(8).quantile(-0.1);
    }

    proptest! {
        /// The sketch-vs-exact property the issue pins: on any stream,
        /// the sketch answers a value from the stream whose exact rank
        /// is within the KLL-style bound of the `nearest_rank` target
        /// (and is exactly the ladder answer while no compaction ran).
        #[test]
        fn sketch_tracks_exact_nearest_rank_ladder(
            values in prop::collection::vec(0.0f64..1000.0, 1..600),
            qx in 0u32..101,
        ) {
            let q = f64::from(qx) / 100.0;
            let mut s = QuantileSketch::new(32);
            for v in &values {
                s.insert(*v);
            }
            let est = s.quantile(q);
            let n = values.len();
            if n < 32 {
                prop_assert_eq!(est, exact(&values, q));
            } else {
                // est must be an actual stream value...
                prop_assert!(values.contains(&est));
                // ...whose rank interval sits near the target rank.
                let target = nearest_rank(n, q);
                let (lo, hi) = rank_of(&values, est);
                // Conservative bound for k = 32: n/8 + a small constant
                // slack for the ties introduced by duplicate samples.
                let tol = n / 8 + 4;
                prop_assert!(
                    target + tol >= lo && hi + tol >= target,
                    "rank [{}, {}] vs target {} (n = {}, tol = {})",
                    lo, hi, target, n, tol
                );
            }
        }
    }
}
