//! Time-bucketed rolling windows over the simulated clock.
//!
//! Both windows here are rings of fixed-width time buckets keyed to the
//! *simulated* clock (the same clock [`crate::Recorder`] stamps), so a
//! traced and an untraced run advance them identically. Retirement is
//! exact: when the clock crosses a bucket boundary the oldest bucket's
//! integer counts are subtracted from the running aggregate — no decay
//! factors, no floating-point drift — and a window's answer equals the
//! answer recomputed from scratch over the surviving buckets.
//!
//! Clocks may only move forward. Observations land in the bucket the
//! current clock falls in; callers advance the window at simulated-clock
//! boundaries (step boundaries in the serving tiers) and never between
//! them, which keeps window state a pure function of the event stream.

/// A windowed event counter: total and rate over the trailing window.
///
/// The window spans `buckets × bucket_s` simulated seconds. Counts land
/// in the bucket the current clock falls in; [`advance_to`] retires
/// whole buckets exactly as the clock crosses their boundaries.
///
/// [`advance_to`]: RollingCounter::advance_to
#[derive(Debug, Clone)]
pub struct RollingCounter {
    bucket_s: f64,
    ring: Vec<u64>,
    /// Global index (`floor(t / bucket_s)`) of the bucket the clock is in.
    epoch: i64,
    total: u64,
}

impl RollingCounter {
    /// A counter over `buckets` buckets of `bucket_s` simulated seconds.
    ///
    /// # Panics
    ///
    /// If `bucket_s` is not finite and positive or `buckets` is zero.
    pub fn new(bucket_s: f64, buckets: usize) -> Self {
        assert!(
            bucket_s.is_finite() && bucket_s > 0.0,
            "window bucket width must be finite and positive"
        );
        assert!(buckets > 0, "window needs at least one bucket");
        RollingCounter {
            bucket_s,
            ring: vec![0; buckets],
            epoch: 0,
            total: 0,
        }
    }

    /// The window span in simulated seconds.
    pub fn window_s(&self) -> f64 {
        self.bucket_s * self.ring.len() as f64
    }

    fn slot(&self, epoch: i64) -> usize {
        epoch.rem_euclid(self.ring.len() as i64) as usize
    }

    /// Advances the window to simulated time `t`, retiring every bucket
    /// that fell off the trailing edge. Time never moves backwards:
    /// earlier `t` values are ignored.
    pub fn advance_to(&mut self, t: f64) {
        let target = (t / self.bucket_s).floor() as i64;
        if target <= self.epoch {
            return;
        }
        let steps = (target - self.epoch).min(self.ring.len() as i64);
        for i in 1..=steps {
            let slot = self.slot(self.epoch + i);
            self.total -= self.ring[slot];
            self.ring[slot] = 0;
        }
        self.epoch = target;
    }

    /// Adds `n` events to the current bucket.
    pub fn add(&mut self, n: u64) {
        let slot = self.slot(self.epoch);
        self.ring[slot] += n;
        self.total += n;
    }

    /// Events currently inside the window.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events per simulated second over the window span.
    pub fn rate(&self) -> f64 {
        self.total as f64 / self.window_s()
    }
}

/// A windowed fixed-bucket histogram: value buckets per time bucket,
/// with the aggregate maintained by exact retire-on-advance.
///
/// Value bucketing matches [`crate::Histogram`]: a sample lands in the
/// first bound it is `<=`, with one overflow bucket past the last bound,
/// and [`quantile`] answers by the shared `nearest_rank` rule (the
/// overflow bucket answers `f64::INFINITY`).
///
/// [`quantile`]: RollingHistogram::quantile
#[derive(Debug, Clone)]
pub struct RollingHistogram {
    bounds: Vec<f64>,
    bucket_s: f64,
    /// `ring[time_bucket][value_bucket]`; the last value bucket is overflow.
    ring: Vec<Vec<u64>>,
    agg: Vec<u64>,
    epoch: i64,
    count: u64,
}

impl RollingHistogram {
    /// A histogram over `buckets` time buckets of `bucket_s` simulated
    /// seconds, with the given value bounds.
    ///
    /// # Panics
    ///
    /// With the same messages as [`RollingCounter::new`] for the window
    /// shape and [`crate::Histogram::new`] for the bounds.
    pub fn new(bounds: &[f64], bucket_s: f64, buckets: usize) -> Self {
        assert!(
            bucket_s.is_finite() && bucket_s > 0.0,
            "window bucket width must be finite and positive"
        );
        assert!(buckets > 0, "window needs at least one bucket");
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        RollingHistogram {
            bounds: bounds.to_vec(),
            bucket_s,
            ring: vec![vec![0; bounds.len() + 1]; buckets],
            agg: vec![0; bounds.len() + 1],
            epoch: 0,
            count: 0,
        }
    }

    /// The window span in simulated seconds.
    pub fn window_s(&self) -> f64 {
        self.bucket_s * self.ring.len() as f64
    }

    fn slot(&self, epoch: i64) -> usize {
        epoch.rem_euclid(self.ring.len() as i64) as usize
    }

    /// Advances the window to simulated time `t`, exactly retiring every
    /// time bucket that fell off the trailing edge. Earlier `t` values
    /// are ignored.
    pub fn advance_to(&mut self, t: f64) {
        let target = (t / self.bucket_s).floor() as i64;
        if target <= self.epoch {
            return;
        }
        let steps = (target - self.epoch).min(self.ring.len() as i64);
        for i in 1..=steps {
            let slot = self.slot(self.epoch + i);
            for (value_bucket, n) in self.ring[slot].iter_mut().enumerate() {
                self.agg[value_bucket] -= *n;
                self.count -= *n;
                *n = 0;
            }
        }
        self.epoch = target;
    }

    /// Records a sample into the current time bucket.
    pub fn observe(&mut self, v: f64) {
        let value_bucket = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        let slot = self.slot(self.epoch);
        self.ring[slot][value_bucket] += 1;
        self.agg[value_bucket] += 1;
        self.count += 1;
    }

    /// Samples currently inside the window.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile over the window by the shared `nearest_rank`
    /// rule, answered as the matched bucket's upper bound (`0.0` for an
    /// empty window, `f64::INFINITY` from the overflow bucket).
    ///
    /// # Panics
    ///
    /// If `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0.0;
        }
        let rank = crate::nearest_rank(self.count as usize, q) as u64;
        let mut cum = 0u64;
        for (value_bucket, n) in self.agg.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return self
                    .bounds
                    .get(value_bucket)
                    .copied()
                    .unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_retires_exactly_on_advance() {
        let mut c = RollingCounter::new(1.0, 4);
        c.add(3); // bucket 0
        c.advance_to(1.5);
        c.add(2); // bucket 1
        c.advance_to(3.0);
        c.add(1); // bucket 3
        assert_eq!(c.total(), 6);
        // Bucket 0 (count 3) falls off when the clock enters bucket 4.
        c.advance_to(4.0);
        assert_eq!(c.total(), 3);
        c.advance_to(5.0);
        assert_eq!(c.total(), 1);
        // Bucket 3 survives while the window covers epochs 3..=6 …
        c.advance_to(6.0);
        assert_eq!(c.total(), 1);
        // … and retires at epoch 7 (window 4..=7).
        c.advance_to(7.0);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn counter_jump_past_whole_window_clears_it() {
        let mut c = RollingCounter::new(0.5, 3);
        c.add(9);
        c.advance_to(1e6);
        assert_eq!(c.total(), 0);
        assert_eq!(c.rate(), 0.0);
    }

    #[test]
    fn counter_ignores_backwards_time() {
        let mut c = RollingCounter::new(1.0, 2);
        c.advance_to(5.0);
        c.add(4);
        c.advance_to(1.0);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn counter_rate_is_total_over_span() {
        let mut c = RollingCounter::new(0.5, 4);
        c.add(10);
        assert_eq!(c.window_s(), 2.0);
        assert_eq!(c.rate(), 5.0);
    }

    #[test]
    fn histogram_quantile_matches_nearest_rank_ladder() {
        let mut h = RollingHistogram::new(&[1.0, 2.0, 4.0], 1.0, 4);
        for v in [0.5, 0.7, 1.5, 3.0, 9.0] {
            h.observe(v);
        }
        // Sorted bucket upper bounds: [1, 1, 2, 4, inf].
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(0.8), 4.0);
        assert_eq!(h.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn histogram_retirement_matches_recompute() {
        let mut h = RollingHistogram::new(&[1.0, 2.0], 1.0, 2);
        h.observe(0.5);
        h.observe(1.5);
        h.advance_to(1.0);
        h.observe(5.0);
        // Window covers buckets {0, 1}: counts [1, 1, 1].
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(1.0), f64::INFINITY);
        // Bucket 0 retires: only the overflow sample remains.
        h.advance_to(2.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), f64::INFINITY);
        h.advance_to(3.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn histogram_rejects_out_of_range_quantile() {
        RollingHistogram::new(&[1.0], 1.0, 1).quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "histogram bounds must be finite and strictly increasing")]
    fn histogram_rejects_bad_bounds() {
        RollingHistogram::new(&[2.0, 1.0], 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "window bucket width must be finite and positive")]
    fn counter_rejects_bad_bucket_width() {
        RollingCounter::new(0.0, 4);
    }
}
