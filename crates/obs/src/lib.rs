//! Deterministic tracing and metrics plane for the SpecEE runtime.
//!
//! Every other crate in this workspace argues from end-of-run aggregates
//! (`ServeStats`, `ClusterReport`, `Meter`); this crate records *when*
//! things happened. It has three layers:
//!
//! 1. **Event plane** ([`event`], [`sink`]): a [`TraceSink`] trait plus a
//!    deterministic [`Recorder`] capturing typed [`Event`]s — exit
//!    fire/accept/reject with layer, score and threshold; batch steps;
//!    admissions; routing decisions with per-worker scores; controller
//!    applies; gossip deltas — stamped with the *simulated* clock the
//!    engines already advance. Because timestamps come from the
//!    deterministic simulation (never the wall clock), cluster traces are
//!    bit-reproducible run to run.
//! 2. **Metrics registry** ([`registry`]): counters, gauges and
//!    fixed-bucket histograms (exit layer, TTFT, queue depth) with exact
//!    merge across workers, plus folds that turn an event stream, a
//!    [`specee_metrics::Meter`] or a roofline [`specee_metrics::CostReport`]
//!    into registry entries so one export carries both measured ops and
//!    modelled latency.
//! 3. **Exporters** ([`chrome`], [`prom`]): Chrome trace-event JSON (one
//!    named lane per worker; spans for steps and requests, instants for
//!    exits and gossip; loadable in Perfetto / `chrome://tracing`) and
//!    Prometheus text exposition, both written via the vendored serde
//!    stand-ins.
//! 4. **Online layer** ([`window`], [`sketch`], [`slo`]): rolling
//!    windows over the simulated clock with exact retire-on-advance, a
//!    deterministic streaming quantile sketch, and SLO objectives with
//!    multi-window burn-rate alerting — the streaming half that answers
//!    questions *during* a run (and feeds `SloAdaptive` controllers in
//!    `specee-control`) instead of after it.
//!
//! The disabled path is a no-op: engines thread a generic
//! `S: TraceSink`, and with [`NullSink`] (or `Option::<Recorder>::None`)
//! `enabled()` is a constant `false` the optimizer deletes — no
//! allocation, no branch cost (`sec74_overhead` asserts this).
//!
//! # Examples
//!
//! ```
//! use specee_obs::{EventKind, Recorder, TraceSink};
//!
//! let mut rec = Recorder::for_worker(0);
//! rec.set_clock(0.5);
//! rec.record(EventKind::ExitDecision {
//!     class: 0,
//!     layer: 7,
//!     score: 0.93,
//!     threshold: 0.5,
//!     accepted: true,
//! });
//! let events = rec.into_events();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].t, 0.5);
//! let trace = specee_obs::chrome::chrome_trace_json(&events);
//! assert!(trace.contains("traceEvents"));
//! ```

#![deny(missing_docs)]

pub mod chrome;
pub mod event;
pub mod prom;
pub mod quantile;
pub mod registry;
pub mod sink;
pub mod sketch;
pub mod slo;
pub mod window;

pub use chrome::{chrome_trace, chrome_trace_json, lanes_of};
pub use event::{Event, EventKind, COORDINATOR_LANE};
pub use prom::prometheus_text;
pub use quantile::{nearest_rank, percentile, percentile_sorted};
pub use registry::{
    fold_dropped_events, fold_events, fold_meter, fold_roofline, Histogram, MetricsRegistry,
    DRAFT_ACCEPTED_LEN_BOUNDS, EXIT_LAYER_BOUNDS, QUEUE_DEPTH_BOUNDS, TTFT_BOUNDS,
};
pub use sink::{merge_events, NullSink, Recorder, TraceSink, DEFAULT_EVENT_BUDGET};
pub use sketch::{QuantileSketch, DEFAULT_SKETCH_K};
pub use slo::{SloKind, SloObjective, SloSpec, SloTracker};
pub use window::{RollingCounter, RollingHistogram};
