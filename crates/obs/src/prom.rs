//! Prometheus text exposition of a [`MetricsRegistry`].
//!
//! Output follows the text-based exposition format version 0.0.4:
//! `# TYPE` headers, one sample per line, histograms as cumulative
//! `_bucket{le="..."}` series plus `_sum`/`_count`. Families are emitted
//! counters → gauges → histograms, name-sorted within each group, and
//! numbers use Rust's shortest-round-trip `f64` formatting — so the
//! exposition of a given registry is byte-stable (the golden-file test
//! pins it).

use std::fmt::Write;

use crate::registry::MetricsRegistry;

/// Base metric name with any inline `{label="..."}` suffix stripped.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Splices a `le` label into a possibly-labelled metric name, producing
/// the `_bucket` sample name.
fn bucket_name(name: &str, le: &str) -> String {
    match name.split_once('{') {
        Some((base, rest)) => format!("{base}_bucket{{le=\"{le}\",{rest}"),
        None => format!("{name}_bucket{{le=\"{le}\"}}"),
    }
}

/// Renders the registry in the Prometheus text exposition format.
pub fn prometheus_text(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut last_type_header: Option<String> = None;
    let mut type_header = |out: &mut String, name: &str, kind: &str| {
        let base = base_name(name).to_string();
        if last_type_header.as_deref() != Some(base.as_str()) {
            writeln!(out, "# TYPE {base} {kind}").expect("string write");
            last_type_header = Some(base);
        }
    };

    for (name, v) in reg.counters() {
        type_header(&mut out, name, "counter");
        writeln!(out, "{name} {v}").expect("string write");
    }
    for (name, v) in reg.gauges() {
        type_header(&mut out, name, "gauge");
        writeln!(out, "{name} {v}").expect("string write");
    }
    for (name, h) in reg.histograms() {
        type_header(&mut out, name, "histogram");
        let cumulative = h.cumulative();
        for (bound, cum) in h.bounds().iter().zip(&cumulative) {
            writeln!(out, "{} {cum}", bucket_name(name, &bound.to_string())).expect("string write");
        }
        writeln!(out, "{} {}", bucket_name(name, "+Inf"), h.count()).expect("string write");
        writeln!(out, "{name}_sum {}", h.sum()).expect("string write");
        writeln!(out, "{name}_count {}", h.count()).expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_one_type_header_per_family() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("specee_exits_accepted_total{class=\"0\"}", 3.0);
        reg.counter_add("specee_exits_accepted_total{class=\"1\"}", 4.0);
        reg.counter_add("specee_steps_total", 7.0);
        let text = prometheus_text(&reg);
        assert_eq!(
            text.matches("# TYPE specee_exits_accepted_total counter")
                .count(),
            1
        );
        assert!(text.contains("specee_exits_accepted_total{class=\"0\"} 3"));
        assert!(text.contains("specee_steps_total 7"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let mut reg = MetricsRegistry::new();
        for v in [0.5, 1.5, 9.0] {
            reg.observe("h", &[1.0, 2.0], v);
        }
        let text = prometheus_text(&reg);
        assert!(text.contains("# TYPE h histogram"));
        assert!(text.contains("h_bucket{le=\"1\"} 1"));
        assert!(text.contains("h_bucket{le=\"2\"} 2"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("h_sum 11"));
        assert!(text.contains("h_count 3"));
    }

    #[test]
    fn labelled_histogram_splices_le_first() {
        assert_eq!(
            bucket_name("h{class=\"2\"}", "0.5"),
            "h_bucket{le=\"0.5\",class=\"2\"}"
        );
        assert_eq!(bucket_name("h", "+Inf"), "h_bucket{le=\"+Inf\"}");
    }
}
