//! The one nearest-rank quantile rule the whole workspace shares.
//!
//! `ServeStats` percentile ladders and [`Histogram`](crate::Histogram)
//! quantiles must agree on what "p95" means, or the metrics export would
//! disagree with the stats report over the same run. Both route through
//! [`nearest_rank`]: rank `ceil(q · n)` clamped to `[1, n]`, the
//! classical nearest-rank method (exact sample values, no
//! interpolation).

/// Nearest rank (1-based) of quantile `q` in a sample of size `n`.
///
/// Returns `0` for an empty sample (no rank exists).
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn nearest_rank(n: usize, q: f64) -> usize {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if n == 0 {
        return 0;
    }
    ((q * n as f64).ceil() as usize).clamp(1, n)
}

/// Nearest-rank percentile (`q` in `[0, 1]`) of an unsorted sample.
///
/// Returns zero for an empty sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or the sample contains NaN.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
    percentile_sorted(&sorted, q)
}

/// Nearest-rank percentile of an already ascending-sorted sample (so one
/// sort serves a whole p50/p95/p99 ladder).
///
/// Returns zero for an empty sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    let rank = nearest_rank(sorted.len(), q);
    if rank == 0 {
        return 0.0;
    }
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_classical_method() {
        assert_eq!(nearest_rank(0, 0.5), 0);
        assert_eq!(nearest_rank(5, 0.0), 1);
        assert_eq!(nearest_rank(5, 0.5), 3);
        assert_eq!(nearest_rank(5, 0.95), 5);
        assert_eq!(nearest_rank(5, 1.0), 5);
        assert_eq!(nearest_rank(100, 0.95), 95);
        assert_eq!(nearest_rank(100, 0.99), 99);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn nearest_rank_validates_q() {
        nearest_rank(5, 1.5);
    }

    #[test]
    fn percentile_agrees_with_sorted_variant() {
        let v = [4.0, 1.0, 3.0, 2.0, 5.0];
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(percentile(&v, q), percentile_sorted(&s, q), "q = {q}");
        }
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
