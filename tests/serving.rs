//! Integration tests for the serving extension: real engine traces
//! replayed through the continuous batcher, plus batcher-level properties.

use proptest::prelude::*;
use specee::core::collect::{collect_training_data, train_bank};
use specee::core::engine::{DenseEngine, SpecEeEngine};
use specee::core::predictor::{PredictorBank, PredictorConfig};
use specee::core::SpecEeConfig;
use specee::metrics::{FrameworkProfile, HardwareProfile};
use specee::model::{CostDims, ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::serve::{
    BatcherConfig, ContinuousBatcher, PoissonArrivals, RequestTrace, ServeRequest,
};
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

fn batcher(max_batch: usize) -> ContinuousBatcher {
    ContinuousBatcher::new(BatcherConfig {
        max_batch,
        hardware: HardwareProfile::a100_80g(),
        framework: FrameworkProfile::vllm(),
        cost: CostDims::llama2_7b(),
    })
}

/// Records dense + SpecEE traces for a small real workload.
#[allow(clippy::type_complexity)]
fn real_traces(
    seed: u64,
    n: usize,
    gen: usize,
) -> (
    Vec<(Vec<TokenId>, usize)>,
    Vec<RequestTrace>,
    Vec<RequestTrace>,
) {
    let cfg = ModelConfig {
        n_layers: 8,
        vocab_size: 256,
        ..ModelConfig::tiny()
    };
    let build = |s| {
        SyntheticLmBuilder::new(cfg.clone(), DatasetProfile::qa())
            .seed(s)
            .build()
    };
    let mut lm = build(seed);
    let mut draft = OracleDraft::new(*lm.language(), 0.9, &cfg, seed);
    let prompts: Vec<(Vec<TokenId>, usize)> =
        (0..6u32).map(|i| (vec![1 + i, 2 + i], 8usize)).collect();
    let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
    let pcfg = PredictorConfig {
        hidden_dim: 16,
        ..PredictorConfig::default()
    };
    let mut bank = PredictorBank::new(8, &pcfg, &mut Pcg::seed(seed));
    train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), seed);
    let config = SpecEeConfig {
        predictor: pcfg,
        ..SpecEeConfig::default()
    };
    let schedule = config.build_schedule(8, Some(&data.exit_frequencies));
    let mut spec = SpecEeEngine::new(build(seed), draft, bank, schedule, config);
    let mut dense = DenseEngine::new(build(seed));

    let specs: Vec<(Vec<TokenId>, usize)> = (0..n as u32)
        .map(|i| (vec![2 + i, 5 + i, 1 + i], gen))
        .collect();
    let mut dense_traces = Vec::new();
    let mut spec_traces = Vec::new();
    for (p, g) in &specs {
        dense_traces.push(RequestTrace::from_output(&dense.generate(p, *g), false));
        spec_traces.push(RequestTrace::from_output(&spec.generate(p, *g), true));
    }
    (specs, dense_traces, spec_traces)
}

#[test]
fn real_traces_replay_end_to_end() {
    let (specs, dense_traces, spec_traces) = real_traces(31, 6, 10);
    let requests = PoissonArrivals::new(20.0, 7).requests(&specs);
    let b = batcher(3);
    let d = b.run(&requests, &dense_traces);
    let s = b.run(&requests, &spec_traces);
    assert_eq!(d.completions.len(), 6);
    assert_eq!(s.completions.len(), 6);
    // Token conservation: every request decodes its gen_len tokens.
    assert_eq!(d.stats().tokens, 6 * 10);
    assert_eq!(s.stats().tokens, 6 * 10);
    // SpecEE traces exit below full depth on this substrate, so the served
    // run must be no slower than dense at batch 3.
    assert!(
        s.makespan_s <= d.makespan_s * 1.02,
        "{} vs {}",
        s.makespan_s,
        d.makespan_s
    );
    assert!(s.avg_layers < d.avg_layers);
}

#[test]
fn serving_replay_is_deterministic() {
    let (specs, _, spec_traces) = real_traces(33, 5, 8);
    let requests = PoissonArrivals::new(10.0, 5).requests(&specs);
    let a = batcher(2).run(&requests, &spec_traces);
    let b = batcher(2).run(&requests, &spec_traces);
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Raising the batch cap never slows the served run (same traces, same
    /// arrivals; more parallelism can only help under amortized pricing).
    #[test]
    fn larger_cap_never_slower(seed in 0u64..100, gen in 2usize..12) {
        let n = 8;
        let traces: Vec<RequestTrace> = (0..n)
            .map(|i| RequestTrace::dense(vec![i as u32; gen], 32))
            .collect();
        let specs: Vec<(Vec<TokenId>, usize)> =
            (0..n).map(|i| (vec![i as u32 + 1, 2], gen)).collect();
        let requests = PoissonArrivals::new(50.0, seed).requests(&specs);
        let small = batcher(2).run(&requests, &traces);
        let large = batcher(8).run(&requests, &traces);
        prop_assert!(large.makespan_s <= small.makespan_s * 1.0001);
    }

    /// Timing milestones are ordered for every completion, and completions
    /// arrive in id order.
    #[test]
    fn completion_milestones_ordered(seed in 0u64..100, rate in 1.0f64..40.0) {
        let specs: Vec<(Vec<TokenId>, usize)> =
            (0..6).map(|i| (vec![i as u32 + 1], 5)).collect();
        let traces: Vec<RequestTrace> =
            (0..6).map(|i| RequestTrace::dense(vec![i as u32; 5], 32)).collect();
        let requests = PoissonArrivals::new(rate, seed).requests(&specs);
        let report = batcher(3).run(&requests, &traces);
        for (c, r) in report.completions.iter().zip(&requests) {
            prop_assert_eq!(c.id, r.id);
            prop_assert!(c.arrival_s <= c.first_token_s);
            prop_assert!(c.first_token_s <= c.finish_s);
            prop_assert!(c.finish_s <= report.makespan_s + 1e-9);
        }
    }

    /// A request arriving when the server is idle has TTFT equal to one
    /// batched prefill, independent of the arrival gap.
    #[test]
    fn idle_server_ttft_is_prefill_only(gap in 0.5f64..10.0) {
        let specs = [(vec![1u32, 2, 3], 4usize), (vec![4u32, 5, 6], 4)];
        let traces: Vec<RequestTrace> =
            (0..2).map(|i| RequestTrace::dense(vec![i as u32; 4], 32)).collect();
        // Second request arrives long after the first finishes.
        let requests = vec![
            ServeRequest { id: 0, prompt: specs[0].0.clone(), gen_len: 4, arrival_s: 0.0 },
            ServeRequest { id: 1, prompt: specs[1].0.clone(), gen_len: 4, arrival_s: gap },
        ];
        let b = batcher(4);
        let report = b.run(&requests, &traces);
        let prefill = b.cost_model().prefill_latency(&[3]);
        prop_assert!((report.completions[0].ttft_s() - prefill).abs() < 1e-9);
        prop_assert!((report.completions[1].ttft_s() - prefill).abs() < 1e-9);
    }
}
