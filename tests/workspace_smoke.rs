//! Workspace smoke test: the README quickstart path, end to end.
//!
//! Builds a tiny `SyntheticLm`, trains a `PredictorBank`, decodes with
//! `SpecEeEngine::generate`, and checks the structural contract of
//! `GenOutput`: the requested token count is produced and no token ever
//! reports executing more than `n_layers` decoder layers.

use specee::core::collect::{collect_training_data, train_bank};
use specee::core::engine::SpecEeEngine;
use specee::core::predictor::{PredictorBank, PredictorConfig};
use specee::core::SpecEeConfig;
use specee::model::{ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

#[test]
fn quickstart_path_generates_with_bounded_exits() {
    let cfg = ModelConfig {
        n_layers: 12,
        vocab_size: 512,
        ..ModelConfig::tiny()
    };
    let profile = DatasetProfile::qa();
    let seed = 7;

    // Target model + aligned draft model.
    let mut lm = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
        .seed(seed)
        .build();
    let mut draft = OracleDraft::new(*lm.language(), profile.hit_rate, &cfg, seed);

    // Offline phase: collect features, train one predictor per layer.
    let prompts: Vec<(Vec<TokenId>, usize)> = (0..6)
        .map(|i| (lm.language().sample_sequence(2 + i, 8, u64::from(i)), 10))
        .collect();
    let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
    assert!(!data.samples.is_empty(), "no training samples collected");

    let pcfg = PredictorConfig {
        hidden_dim: 32,
        ..PredictorConfig::default()
    };
    let mut bank = PredictorBank::new(cfg.n_layers, &pcfg, &mut Pcg::seed(seed));
    let report = train_bank(
        &mut bank,
        &data.samples,
        1.0,
        &TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        },
        seed,
    );
    assert!(
        report.mean_accuracy > 0.5,
        "predictors should beat chance, got {}",
        report.mean_accuracy
    );

    // Online phase: speculative early-exit decoding.
    let config = SpecEeConfig {
        predictor: pcfg,
        ..SpecEeConfig::default()
    };
    let schedule = config.build_schedule(cfg.n_layers, Some(&data.exit_frequencies));
    let fresh = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
        .seed(seed)
        .build();
    let prompt = fresh.language().sample_sequence(3, 6, 11);
    let mut engine = SpecEeEngine::new(fresh, draft, bank, schedule, config);

    let max_tokens = 16;
    let out = engine.generate(&prompt, max_tokens);

    assert_eq!(out.tokens.len(), max_tokens, "token count");
    assert_eq!(
        out.exit_layers.len(),
        out.tokens.len(),
        "one exit record per token"
    );
    for (i, &layers) in out.exit_layers.iter().enumerate() {
        assert!(
            layers >= 1 && layers <= cfg.n_layers,
            "token {i} reports {layers} executed layers (n_layers = {})",
            cfg.n_layers
        );
    }
    assert!(out.avg_layers() <= cfg.n_layers as f64);
}
