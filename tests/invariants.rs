//! Cross-crate invariants added with the second wave of substrates: paged
//! vs contiguous KV equivalence, skip-layer KV alignment, AWQ-vs-RTN
//! dominance, and engine determinism under randomized configurations.

use proptest::prelude::*;
use specee::core::collect::{collect_training_data, train_bank};
use specee::core::engine::{DenseEngine, SpecEeEngine};
use specee::core::predictor::{PredictorBank, PredictorConfig};
use specee::core::skip_layer::{collect_router_data, MoDEngine};
use specee::core::SpecEeConfig;
use specee::model::{KvLayout, ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
use specee::tensor::awq::{AwqCalibration, AwqMatrix};
use specee::tensor::rng::Pcg;
use specee::tensor::{Matrix, QuantBits};

fn cfg() -> ModelConfig {
    ModelConfig {
        n_layers: 8,
        vocab_size: 256,
        ..ModelConfig::tiny()
    }
}

fn build_lm(seed: u64) -> SyntheticLm {
    SyntheticLmBuilder::new(cfg(), DatasetProfile::qa())
        .seed(seed)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A paged KV cache is an allocator change, not a semantics change:
    /// dense decoding must produce identical tokens to the contiguous
    /// layout for any seed and page size.
    #[test]
    fn paged_kv_matches_contiguous(seed in 0u64..200, page in 1usize..24) {
        let prompt = vec![1u32, 5, 9];
        let contiguous = DenseEngine::new(build_lm(seed)).generate(&prompt, 10);
        let mut paged_lm = build_lm(seed);
        paged_lm.inner_mut().set_kv_layout(KvLayout::Paged { page_size: page });
        let paged = DenseEngine::new(paged_lm).generate(&prompt, 10);
        prop_assert_eq!(&contiguous.tokens, &paged.tokens);
        prop_assert_eq!(contiguous.exit_layers, paged.exit_layers);
    }

    /// Paged allocation rounds up to whole pages but never loses tokens.
    #[test]
    fn paged_allocation_covers_committed_tokens(seed in 0u64..100, page in 1usize..16) {
        use specee::model::LayeredLm;
        let mut lm = build_lm(seed);
        lm.inner_mut().set_kv_layout(KvLayout::Paged { page_size: page });
        let mut engine = DenseEngine::new(lm);
        let _ = engine.generate(&[2, 4], 8);
        let committed = engine.model().kv_len();
        let allocated = engine.model().allocated_kv_tokens();
        // Slots are counted across all 8 layers; each layer holds the
        // committed positions rounded up to whole pages.
        prop_assert!(allocated >= committed * 8);
        prop_assert!(allocated <= (committed + page) * 8);
    }

    /// MoD keeps the KV cache aligned for any capacity: every decoded
    /// position is committed in every layer regardless of which blocks
    /// were skipped.
    #[test]
    fn mod_engine_kv_alignment(seed in 0u64..60, capacity in 0.4f64..1.0) {
        use specee::model::LayeredLm;
        let mut collect_lm = build_lm(seed);
        let prompts: Vec<(Vec<TokenId>, usize)> =
            (0..6u32).map(|i| (vec![1 + i, 3 + i, 5 + i], 8usize)).collect();
        let samples = collect_router_data(&mut collect_lm, &prompts);
        let mut engine = MoDEngine::train(build_lm(seed), &samples, capacity, seed);
        let out = engine.generate(&[3, 1, 4], 9);
        prop_assert_eq!(out.tokens.len(), 9);
        prop_assert_eq!(engine.model().kv_len(), 3 + 8);
        for &l in &out.exit_layers {
            prop_assert!(l <= 8);
        }
    }

    /// The AWQ grid search never does worse than plain round-to-nearest
    /// (α = 0 is in the grid), for any weight seed and activation skew.
    #[test]
    fn awq_dominates_rtn(seed in 0u64..100, hot in 0usize..32, factor in 1.0f32..30.0) {
        let mut rng = Pcg::seed(seed);
        let w = Matrix::random(8, 32, 1.0, &mut rng);
        let acts: Vec<Vec<f32>> = (0..24)
            .map(|_| {
                (0..32)
                    .map(|c| {
                        let v = (rng.next_f32() - 0.5) * 0.5;
                        if c == hot { v * factor } else { v }
                    })
                    .collect()
            })
            .collect();
        let calib = AwqCalibration::from_activations(&acts);
        let searched = AwqMatrix::quantize(&w, &calib, QuantBits::Int4, 16, &acts).unwrap();
        let rtn = AwqMatrix::quantize_with_alpha(&w, &calib, QuantBits::Int4, 16, 0.0).unwrap();
        prop_assert!(searched.mse_on(&w, &acts) <= rtn.mse_on(&w, &acts) + 1e-12);
    }

    /// The SpecEE engine is deterministic and structurally sound for any
    /// seed: fixed output length, exit layers in range, reproducible runs.
    #[test]
    fn specee_engine_structural_invariants(seed in 0u64..40) {
        let run = || {
            let mut lm = build_lm(seed);
            let mut draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), seed ^ 3);
            let prompts: Vec<(Vec<TokenId>, usize)> =
                (0..6u32).map(|i| (vec![1 + i, 2 + i], 8usize)).collect();
            let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
            let pcfg = PredictorConfig { hidden_dim: 16, ..PredictorConfig::default() };
            let mut bank = PredictorBank::new(8, &pcfg, &mut Pcg::seed(seed));
            train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), seed);
            let config = SpecEeConfig { predictor: pcfg, ..SpecEeConfig::default() };
            let schedule = config.build_schedule(8, Some(&data.exit_frequencies));
            let mut engine = SpecEeEngine::new(build_lm(seed), draft, bank, schedule, config);
            engine.generate(&[1, 2, 3], 10)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a.tokens, &b.tokens);
        prop_assert_eq!(&a.exit_layers, &b.exit_layers);
        prop_assert_eq!(a.tokens.len(), 10);
        prop_assert!(a.exit_layers.iter().all(|&l| (1..=8).contains(&l)));
    }
}
