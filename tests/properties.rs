//! Property-based tests (proptest) over the core data structures and
//! numerical invariants of the workspace.

use proptest::prelude::*;
use specee::core::scheduler::OnlineScheduler;
use specee::core::{hyper_tokens, verify_exit, TreeExitState};
use specee::metrics::{Meter, OpKind};
use specee::model::kv::{KvCache, KvLayout};
use specee::tensor::ops;
use specee::tensor::{Matrix, Pcg, QuantBits, QuantizedMatrix};

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-50.0f32..50.0, len)
}

proptest! {
    // ---------- tensor ----------

    #[test]
    fn softmax_is_a_distribution(xs in finite_vec(16)) {
        let p = ops::softmax(&xs);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn softmax_preserves_argmax(xs in finite_vec(12)) {
        let p = ops::softmax(&xs);
        prop_assert_eq!(ops::argmax(&xs), ops::argmax(&p));
    }

    #[test]
    fn top_k_is_sorted_and_unique(xs in finite_vec(24), k in 1usize..24) {
        let idx = ops::top_k(&xs, k);
        prop_assert_eq!(idx.len(), k);
        for w in idx.windows(2) {
            prop_assert!(xs[w[0]] >= xs[w[1]]);
        }
        let mut dedup = idx.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), k);
    }

    #[test]
    fn matvec_is_linear(seed in 0u64..1000, a in -3.0f32..3.0) {
        let mut rng = Pcg::seed(seed);
        let m = Matrix::random(6, 8, 1.0, &mut rng);
        let mut x = vec![0.0f32; 8];
        rng.fill_uniform(&mut x, 1.0);
        let scaled: Vec<f32> = x.iter().map(|v| v * a).collect();
        let y1 = m.matvec(&scaled);
        let y2: Vec<f32> = m.matvec(&x).iter().map(|v| v * a).collect();
        for (p, q) in y1.iter().zip(y2.iter()) {
            prop_assert!((p - q).abs() < 1e-2, "{p} vs {q}");
        }
    }

    #[test]
    fn quantization_error_bounded(seed in 0u64..500) {
        let mut rng = Pcg::seed(seed);
        let m = Matrix::random(4, 32, 2.0, &mut rng);
        let q = QuantizedMatrix::quantize(&m, QuantBits::Int8, 16).unwrap();
        let d = q.dequantize();
        let step = q.max_step();
        for (a, b) in m.as_slice().iter().zip(d.as_slice().iter()) {
            prop_assert!((a - b).abs() <= step + 1e-6);
        }
    }

    #[test]
    fn rmsnorm_output_has_unit_rms(xs in prop::collection::vec(0.01f32..10.0, 8)) {
        let gain = vec![1.0f32; 8];
        let y = ops::rmsnorm(&xs, &gain, 0.0);
        let rms = (y.iter().map(|v| v * v).sum::<f32>() / 8.0).sqrt();
        prop_assert!((rms - 1.0).abs() < 1e-3);
    }

    // ---------- kv cache ----------

    #[test]
    fn kv_cache_roundtrips_positions(
        rows in prop::collection::vec(finite_vec(4), 1..20),
        page in 1usize..8,
    ) {
        for layout in [KvLayout::Contiguous, KvLayout::Paged { page_size: page }] {
            let mut c = KvCache::new(4, layout);
            for r in &rows {
                c.push(r, r);
            }
            prop_assert_eq!(c.len(), rows.len());
            prop_assert!(c.allocated_tokens() >= c.len());
            for (i, r) in rows.iter().enumerate() {
                prop_assert_eq!(c.key(i), r.as_slice());
            }
            let keep = rows.len() / 2;
            c.truncate(keep);
            prop_assert_eq!(c.len(), keep);
        }
    }

    // ---------- meter ----------

    #[test]
    fn meter_merge_is_additive(
        a in prop::collection::vec((0.0f64..1e9, 0.0f64..1e9), 1..10),
        b in prop::collection::vec((0.0f64..1e9, 0.0f64..1e9), 1..10),
    ) {
        let fill = |events: &[(f64, f64)]| {
            let mut m = Meter::new();
            for (f, by) in events {
                m.record(OpKind::Ffn, *f, *by, 1);
            }
            m
        };
        let ma = fill(&a);
        let mb = fill(&b);
        let mut merged = ma.clone();
        merged.merge(&mb);
        prop_assert!((merged.total_flops() - (ma.total_flops() + mb.total_flops())).abs() < 1e-3);
        prop_assert!((merged.total_bytes() - (ma.total_bytes() + mb.total_bytes())).abs() < 1e-3);
        prop_assert_eq!(merged.total_kernels(), ma.total_kernels() + mb.total_kernels());
    }

    // ---------- verification ----------

    #[test]
    fn verified_token_is_always_global_argmax(
        logits in finite_vec(32),
        cands in prop::collection::vec(0u32..32, 1..6),
    ) {
        if let Some(tok) = verify_exit(&logits, &cands) {
            prop_assert_eq!(Some(tok as usize), ops::argmax(&logits));
            prop_assert!(cands.contains(&tok));
        } else {
            let best = ops::argmax(&logits).unwrap() as u32;
            prop_assert!(!cands.contains(&best));
        }
    }

    // ---------- tree mapping ----------

    #[test]
    fn hyper_tokens_partition_leaves(n in 2usize..24, seed in 0u64..500) {
        // random topological parent links
        let mut rng = Pcg::seed(seed);
        let mut parents: Vec<Option<usize>> = vec![None];
        for i in 1..n {
            parents.push(if rng.chance(0.8) { Some(rng.below(i)) } else { None });
        }
        let hypers = hyper_tokens(&parents);
        // every path ends at a distinct leaf, starts at a root, and is
        // parent-linked
        let mut leaves = std::collections::HashSet::new();
        for h in &hypers {
            prop_assert!(parents[h.path[0]].is_none());
            for w in h.path.windows(2) {
                prop_assert_eq!(parents[w[1]], Some(w[0]));
            }
            prop_assert!(leaves.insert(*h.path.last().unwrap()));
        }
        // node count sanity: every node appears on at least one path
        let covered: std::collections::HashSet<usize> =
            hypers.iter().flat_map(|h| h.path.iter().copied()).collect();
        prop_assert_eq!(covered.len(), n);
    }

    #[test]
    fn cannikin_exit_is_max_of_path(firings in prop::collection::vec(0usize..32, 5)) {
        let parents = vec![None, Some(0), Some(0), Some(1), Some(2)];
        let mut st = TreeExitState::new(&parents);
        for (node, &layer) in firings.iter().enumerate() {
            st.note_fired(node, layer);
        }
        prop_assert!(st.all_ready());
        let exit0 = st.hyper_exit_layer(0).unwrap();
        prop_assert_eq!(exit0, firings[0].max(firings[1]).max(firings[3]));
    }

    // ---------- scheduler ----------

    #[test]
    fn online_scheduler_window_invariants(
        exits in prop::collection::vec(0usize..32, 1..64),
        window in 1usize..8,
        neighborhood in 0usize..4,
    ) {
        let mut s = OnlineScheduler::new(32, window, neighborhood);
        for &e in &exits {
            s.note_exit(e);
        }
        // active set is bounded by window * (2*neighborhood + 1)
        prop_assert!(s.active_count() <= window * (2 * neighborhood + 1));
        // the most recent exit's neighborhood is always active
        let last = *exits.last().unwrap();
        prop_assert!(s.is_active(last.min(31)));
    }

    // ---------- rng determinism ----------

    #[test]
    fn pcg_streams_reproduce(seed in 0u64..10_000) {
        let mut a = Pcg::seed(seed);
        let mut b = Pcg::seed(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
