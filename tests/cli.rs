//! CLI contract tests: the `specee` binary's error surfaces that other
//! tooling (scripts, CI, launch wrappers) may depend on. These run the
//! real binary so the exact message *and* the exit code are pinned —
//! an explanatory error that silently became a warning (or moved to
//! stdout, or changed its exit status) would break callers without any
//! unit test noticing.

use std::process::Command;

fn specee(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_specee"))
        .args(args)
        .output()
        .expect("spawn specee binary")
}

/// The replay-mode contract: replay prices prerecorded traces, so the
/// adaptive controllers (which feed on live verify outcomes) must be
/// rejected with this exact error on stderr and a failing exit code —
/// never silently downgraded to static.
#[test]
fn replay_mode_rejects_adaptive_controllers_with_exact_error() {
    const EXPECTED: &str = "error: --controller pid|bandit adapts thresholds from live verify \
                            outcomes; replay mode prices prerecorded traces (use --mode live \
                            or cluster)";
    for controller in ["pid", "bandit", "pid:target=0.05", "bandit:floor=0.9"] {
        let out = specee(&[
            "serve",
            "--mode",
            "replay",
            "--requests",
            "0",
            "--controller",
            controller,
        ]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "--controller {controller} must fail the process"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            stderr.trim_end(),
            EXPECTED,
            "--controller {controller}: the contract error moved"
        );
        assert!(
            out.stdout.is_empty(),
            "--controller {controller}: rejection must precede any output, got: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

/// The static policy stays legal in replay mode (it is the no-op
/// baseline), so the rejection above cannot overreach.
#[test]
fn replay_mode_accepts_the_static_controller() {
    let out = specee(&[
        "serve",
        "--mode",
        "replay",
        "--requests",
        "0",
        "--controller",
        "static",
    ]);
    assert_eq!(out.status.code(), Some(0), "static + replay is valid");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 tokens served"), "stdout: {stdout}");
}

/// Malformed inline controller specs fail fast with a pointed error.
#[test]
fn malformed_controller_specs_fail_with_exit_code_one() {
    for (spec, needle) in [
        ("warp", "unknown controller `warp`"),
        ("pid:target", "not key=value"),
        ("bandit:altitude=9", "unknown bandit knob"),
    ] {
        let out = specee(&["serve", "--requests", "0", "--controller", spec]);
        assert_eq!(out.status.code(), Some(1), "spec `{spec}`");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "spec `{spec}`: stderr `{stderr}` missing `{needle}`"
        );
    }
}
