//! Cross-crate integration tests: the full SpecEE pipeline from synthetic
//! model construction through predictor training to early-exit decoding.

use specee::core::collect::{collect_training_data, train_bank};
use specee::core::engine::{DenseEngine, SpecEeEngine, SpeculativeEngine};
use specee::core::predictor::{PredictorBank, PredictorConfig};
use specee::core::{agreement, SchedulingMode, SpecEeConfig};
use specee::model::{LayeredLm, ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

fn test_cfg() -> ModelConfig {
    ModelConfig {
        n_layers: 16,
        vocab_size: 1024,
        ..ModelConfig::tiny()
    }
}

fn build_lm(seed: u64, profile: &DatasetProfile) -> SyntheticLm {
    SyntheticLmBuilder::new(test_cfg(), profile.clone())
        .seed(seed)
        .build()
}

struct Pipeline {
    trained_bank: PredictorBank,
    frequencies: Vec<f64>,
    theoretical: f64,
    config: SpecEeConfig,
    draft: OracleDraft,
    seed: u64,
    profile: DatasetProfile,
}

fn pipeline(seed: u64) -> Pipeline {
    let profile = DatasetProfile::qa();
    let mut lm = build_lm(seed, &profile);
    let mut draft = OracleDraft::new(*lm.language(), 0.9, &test_cfg(), seed ^ 7);
    let lang = *lm.language();
    let prompts: Vec<(Vec<TokenId>, usize)> = (0..10)
        .map(|i| (lang.sample_sequence(3 + i, 10, u64::from(i)), 14))
        .collect();
    let collection = collect_training_data(&mut lm, &mut draft, &prompts, 4);
    let pcfg = PredictorConfig {
        hidden_dim: 64,
        ..PredictorConfig::default()
    };
    let mut bank = PredictorBank::new(test_cfg().n_layers, &pcfg, &mut Pcg::seed(seed));
    train_bank(
        &mut bank,
        &collection.samples,
        1.0,
        &TrainConfig {
            epochs: 20,
            lr: 3e-3,
            ..TrainConfig::default()
        },
        seed,
    );
    Pipeline {
        trained_bank: bank,
        frequencies: collection.exit_frequencies,
        theoretical: collection.theoretical_layers,
        config: SpecEeConfig {
            predictor: pcfg,
            ..SpecEeConfig::default()
        },
        draft,
        seed,
        profile,
    }
}

#[test]
fn specee_preserves_dense_output_and_exits_early() {
    let p = pipeline(101);
    let prompt = vec![2u32, 9, 4, 7];
    let schedule = p
        .config
        .build_schedule(test_cfg().n_layers, Some(&p.frequencies));
    let mut engine = SpecEeEngine::new(
        build_lm(p.seed, &p.profile),
        p.draft.clone(),
        p.trained_bank.clone(),
        schedule,
        p.config.clone(),
    );
    let out = engine.generate(&prompt, 24);
    let dense = DenseEngine::new(build_lm(p.seed, &p.profile)).generate(&prompt, 24);

    assert_eq!(out.tokens.len(), 24);
    let agr = agreement(&out.tokens, &dense.tokens);
    assert!(agr >= 0.85, "agreement {agr}");
    assert!(
        out.avg_layers() < test_cfg().n_layers as f64 - 1.0,
        "avg layers {}",
        out.avg_layers()
    );
    // actual exits cannot beat the theoretical earliest
    assert!(out.avg_layers() + 0.5 >= p.theoretical, "impossible exits");
}

#[test]
fn speculative_engine_is_faster_in_layers_and_consistent() {
    let p = pipeline(103);
    let prompt = vec![5u32, 3, 8];
    let dense = DenseEngine::new(build_lm(p.seed, &p.profile)).generate(&prompt, 24);

    let mut eagle = SpeculativeEngine::baseline(
        build_lm(p.seed, &p.profile),
        p.draft.clone(),
        p.config.clone(),
    );
    let eagle_out = eagle.generate(&prompt, 24);
    assert!(eagle_out.rounds > 0);
    assert!(
        eagle_out.tokens.len() as f64 / eagle_out.rounds as f64 > 1.3,
        "tokens per round {}",
        eagle_out.tokens.len() as f64 / eagle_out.rounds as f64
    );
    let agr = agreement(&eagle_out.tokens, &dense.tokens);
    assert!(agr >= 0.85, "EAGLE agreement {agr}");

    let schedule = p
        .config
        .build_schedule(test_cfg().n_layers, Some(&p.frequencies));
    let mut specee = SpeculativeEngine::with_early_exit(
        build_lm(p.seed, &p.profile),
        p.draft.clone(),
        p.trained_bank.clone(),
        schedule,
        p.config.clone(),
    );
    let out = specee.generate(&prompt, 24);
    assert!(out.avg_layers() <= test_cfg().n_layers as f64);
    let agr = agreement(&out.tokens, &dense.tokens);
    assert!(agr >= 0.7, "SpecEE+EAGLE agreement {agr}");
}

#[test]
fn kv_cache_stays_aligned_across_engines() {
    let p = pipeline(107);
    let prompt = vec![1u32, 2, 3, 4, 5];
    let schedule = p
        .config
        .build_schedule(test_cfg().n_layers, Some(&p.frequencies));
    let mut engine = SpecEeEngine::new(
        build_lm(p.seed, &p.profile),
        p.draft.clone(),
        p.trained_bank.clone(),
        schedule,
        p.config.clone(),
    );
    let out = engine.generate(&prompt, 16);
    // prompt + all fed tokens must be committed at every layer
    assert_eq!(engine.model().kv_len(), prompt.len() + 15);
    assert_eq!(out.exit_layers.len(), 16);
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let p = pipeline(109);
        let schedule = p
            .config
            .build_schedule(test_cfg().n_layers, Some(&p.frequencies));
        let mut engine = SpecEeEngine::new(
            build_lm(p.seed, &p.profile),
            p.draft.clone(),
            p.trained_bank.clone(),
            schedule,
            p.config.clone(),
        );
        engine.generate(&[3, 1, 4], 12).tokens
    };
    assert_eq!(run(), run());
}

#[test]
fn two_level_scheduling_cuts_predictor_work_without_hurting_exits() {
    let p = pipeline(113);
    let prompt = vec![6u32, 2, 8];
    let run = |mode: SchedulingMode| {
        let config = SpecEeConfig {
            scheduling: mode,
            ..p.config.clone()
        };
        let schedule = config.build_schedule(test_cfg().n_layers, Some(&p.frequencies));
        let mut engine = SpecEeEngine::new(
            build_lm(p.seed, &p.profile),
            p.draft.clone(),
            p.trained_bank.clone(),
            schedule,
            config,
        );
        engine.generate(&prompt, 24)
    };
    let all = run(SchedulingMode::AllLayers);
    let two = run(SchedulingMode::TwoLevel);
    assert!(
        two.predictor_calls < all.predictor_calls,
        "two-level {} vs all-layers {}",
        two.predictor_calls,
        all.predictor_calls
    );
    assert!(two.avg_layers() <= all.avg_layers() + 2.5);
}

#[test]
fn meter_records_full_scale_costs() {
    let cfg = ModelConfig::sim_llama2_7b();
    let profile = DatasetProfile::qa();
    let lm = SyntheticLmBuilder::new(cfg.clone(), profile)
        .seed(3)
        .build();
    let mut dense = DenseEngine::new(lm);
    let out = dense.generate(&[1, 2, 3], 4);
    // one decode token at 7B scale moves ~13 GB of weights
    let bytes_per_token = out.meter.total_bytes() / out.meter.tokens() as f64;
    assert!(
        (8e9..25e9).contains(&bytes_per_token),
        "bytes/token {bytes_per_token:.3e}"
    );
    assert_eq!(out.meter.tokens(), 4);
    assert!(out.meter.host_steps() >= 4);
}

#[test]
fn blocked_backend_preserves_tokens_and_exit_layers_exactly() {
    // The blocked backend keeps the reference f32 summation order on the
    // matvec paths the engine actually exercises, so retargeting the model
    // must change nothing observable: identical tokens AND identical
    // per-token exit layers on the quickstart workload.
    let prompt = vec![2u32, 9, 4, 7];
    let run = |backend: specee::tensor::BackendKind| {
        let p = pipeline(101);
        let schedule = p
            .config
            .build_schedule(test_cfg().n_layers, Some(&p.frequencies));
        let mut engine = SpecEeEngine::new(
            build_lm(p.seed, &p.profile),
            p.draft.clone(),
            p.trained_bank.clone(),
            schedule,
            p.config.clone(),
        );
        engine.set_backend(backend);
        assert_eq!(engine.model().backend(), backend);
        let out = engine.generate(&prompt, 24);
        (out.tokens, out.exit_layers)
    };

    let reference = run(specee::tensor::BackendKind::Reference);
    let blocked = run(specee::tensor::BackendKind::Blocked);
    assert_eq!(reference.0, blocked.0, "token streams diverged");
    assert_eq!(reference.1, blocked.1, "exit layers diverged");

    // Dense full-depth decoding agrees bit-for-bit too.
    let dense_run = |backend: specee::tensor::BackendKind| {
        let mut lm = build_lm(101, &DatasetProfile::qa());
        lm.set_backend(backend);
        DenseEngine::new(lm).generate(&prompt, 16).tokens
    };
    assert_eq!(
        dense_run(specee::tensor::BackendKind::Reference),
        dense_run(specee::tensor::BackendKind::Blocked)
    );
}
