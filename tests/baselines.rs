//! Cross-crate comparison of every decoding engine on one substrate:
//! the structural expectations behind Table 1 / Fig. 7, checked end to end
//! on a small model.

use specee::core::baselines::{collect_adainfer_data, AdaInferEngine, RaeeEngine};
use specee::core::collect::{collect_training_data, train_bank};
use specee::core::engine::{DenseEngine, SpecEeEngine};
use specee::core::predictor::{PredictorBank, PredictorConfig};
use specee::core::skip_layer::{
    calibrate_calm_threshold, collect_router_data, CalmEngine, DLlmEngine, MoDEngine,
};
use specee::core::{agreement, GenOutput, SpecEeConfig};
use specee::metrics::OpKind;
use specee::model::{ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

const SEED: u64 = 2121;
const GEN: usize = 14;

fn cfg() -> ModelConfig {
    ModelConfig {
        n_layers: 12,
        vocab_size: 512,
        ..ModelConfig::tiny()
    }
}

fn build_lm() -> SyntheticLm {
    SyntheticLmBuilder::new(cfg(), DatasetProfile::qa())
        .seed(SEED)
        .build()
}

fn train_prompts() -> Vec<(Vec<TokenId>, usize)> {
    (0..10u32)
        .map(|i| (vec![2 + i, 7 + (i % 5), 1 + i], 12usize))
        .collect()
}

fn prompt() -> Vec<TokenId> {
    vec![4, 2, 9]
}

fn run_all() -> Vec<(&'static str, GenOutput)> {
    let mut outs = Vec::new();

    outs.push((
        "dense",
        DenseEngine::new(build_lm()).generate(&prompt(), GEN),
    ));

    // SpecEE
    let mut lm = build_lm();
    let mut draft = OracleDraft::new(*lm.language(), 0.9, &cfg(), SEED ^ 1);
    let data = collect_training_data(&mut lm, &mut draft, &train_prompts(), 4);
    let pcfg = PredictorConfig {
        hidden_dim: 32,
        ..PredictorConfig::default()
    };
    let mut bank = PredictorBank::new(12, &pcfg, &mut Pcg::seed(SEED));
    train_bank(
        &mut bank,
        &data.samples,
        1.0,
        &TrainConfig {
            epochs: 24,
            lr: 3e-3,
            ..TrainConfig::default()
        },
        SEED,
    );
    let config = SpecEeConfig {
        predictor: pcfg,
        ..SpecEeConfig::default()
    };
    let schedule = config.build_schedule(12, Some(&data.exit_frequencies));
    let mut specee = SpecEeEngine::new(build_lm(), draft, bank, schedule, config);
    outs.push(("specee", specee.generate(&prompt(), GEN)));

    // AdaInfer
    let mut collect_lm = build_lm();
    let samples = collect_adainfer_data(&mut collect_lm, &train_prompts());
    let mut ada = AdaInferEngine::train(build_lm(), &samples, SEED);
    outs.push(("adainfer", ada.generate(&prompt(), GEN)));

    // RAEE: the retrieval database is keyed on context bigrams, so seed it
    // from the bigrams a dense run actually produces on this prompt
    // (claiming every token settles by layer 8).
    let dense_ref = DenseEngine::new(build_lm()).generate(&prompt(), GEN);
    let mut ctx = prompt();
    let mut observations: Vec<(Vec<TokenId>, usize)> = Vec::new();
    for &t in &dense_ref.tokens {
        ctx.push(t);
        observations.push((ctx.clone(), 8));
    }
    let mut raee = RaeeEngine::build(build_lm(), &observations);
    outs.push(("raee", raee.generate(&prompt(), GEN)));

    // CALM
    let mut calib_lm = build_lm();
    let thr = calibrate_calm_threshold(&mut calib_lm, &train_prompts());
    outs.push((
        "calm",
        CalmEngine::new(build_lm(), thr).generate(&prompt(), GEN),
    ));

    // MoD + D-LLM
    let mut router_lm = build_lm();
    let router_samples = collect_router_data(&mut router_lm, &train_prompts());
    let mut mod_engine = MoDEngine::train(build_lm(), &router_samples, 0.6, SEED);
    outs.push(("mod", mod_engine.generate(&prompt(), GEN)));
    let mut dllm = DLlmEngine::train(build_lm(), &router_samples, SEED);
    outs.push(("dllm", dllm.generate(&prompt(), GEN)));

    outs
}

#[test]
fn every_engine_decodes_the_full_request() {
    for (name, out) in run_all() {
        assert_eq!(out.tokens.len(), GEN, "{name}");
        assert_eq!(out.exit_layers.len(), GEN, "{name}");
        assert!(
            out.exit_layers.iter().all(|&l| l <= 12),
            "{name}: layer out of range"
        );
    }
}

#[test]
fn early_exit_engines_run_fewer_layers_than_dense() {
    let outs = run_all();
    let dense_layers = outs[0].1.avg_layers();
    assert_eq!(dense_layers, 12.0);
    for (name, out) in &outs {
        if *name == "dense" {
            continue;
        }
        assert!(
            out.avg_layers() < dense_layers,
            "{name}: {} layers",
            out.avg_layers()
        );
    }
}

#[test]
fn verified_engines_agree_with_dense_more_than_unverified() {
    let outs = run_all();
    let dense = &outs[0].1;
    let agr = |name: &str| {
        let out = &outs.iter().find(|(n, _)| *n == name).expect("engine").1;
        agreement(&out.tokens, &dense.tokens)
    };
    // SpecEE's full-LM-head verification guards every exit.
    assert!(agr("specee") >= 0.9, "specee {}", agr("specee"));
    // CALM exits on the full distribution's own confidence — also strong.
    assert!(agr("calm") >= 0.7, "calm {}", agr("calm"));
    // RAEE exits blind at retrieved depths: the weakest guarantee of all.
    assert!(
        agr("raee") <= agr("specee"),
        "raee {} vs specee {}",
        agr("raee"),
        agr("specee")
    );
}

#[test]
fn full_vocab_predictors_pay_lm_head_per_layer() {
    let outs = run_all();
    let heads = |name: &str| {
        outs.iter()
            .find(|(n, _)| *n == name)
            .expect("engine")
            .1
            .meter
            .kind(OpKind::LmHeadFull)
            .kernels
    };
    // AdaInfer and CALM traverse the full vocabulary at every evaluated
    // layer; SpecEE only at verification. Dense reads it once per token.
    assert!(
        heads("adainfer") > heads("specee"),
        "{} vs {}",
        heads("adainfer"),
        heads("specee")
    );
    assert!(heads("calm") > heads("dense"));
    // Skip-layer engines never read the head mid-stack.
    assert!(heads("mod") <= heads("dense") + 2);
}
