//! The paged-KV memory plane: copy-on-write prefix sharing, preemption,
//! and priority lanes.
//!
//! Part one admits a fleet of requests that share a 64-token system
//! prompt into one engine twice — once with private pages, once with the
//! resident prefix index on. Sharing co-leases the matching prompt pages
//! read-only and copies only on the first divergent write, so peak
//! physical occupancy collapses while every decoded token stays
//! bit-identical (the pool is pure accounting; each sequence's model
//! still owns its real KV values).
//!
//! Part two starves a capacity-capped pool: a low-priority hog holds
//! pages until a high-priority arrival evicts it mid-decode (pages
//! recycled, generation state parked), then resumes it bit-identically
//! once pages free up. The attached trace recorder captures the
//! preempt/resume timeline, printed below, and an uncapped control run
//! proves the interrupted decode matches the uninterrupted one.
//!
//! Run with: `cargo run --release --example prefix_share`

use specee::batch::{Admission, BatchedEngine};
use specee::core::collect::{collect_training_data, train_bank};
use specee::core::predictor::{PredictorBank, PredictorConfig};
use specee::core::{Lane, ScheduleEngine, SpecEeConfig, TrafficClass};
use specee::model::{KvStats, ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::obs::{EventKind, Recorder};
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

const N_LAYERS: usize = 8;
const PAGE: usize = 16;
const SEED: u64 = 2031;

fn model_cfg() -> ModelConfig {
    ModelConfig {
        n_layers: N_LAYERS,
        vocab_size: 256,
        ..ModelConfig::tiny()
    }
}

fn build_lm() -> SyntheticLm {
    SyntheticLmBuilder::new(model_cfg(), DatasetProfile::qa())
        .seed(SEED)
        .build()
}

fn seq_parts(id: u64) -> (SyntheticLm, OracleDraft) {
    let lm = build_lm();
    let draft = OracleDraft::new(*lm.language(), 0.9, &model_cfg(), SEED ^ id);
    (lm, draft)
}

fn engine(
    max_batch: usize,
    bank: &PredictorBank,
    schedule: &ScheduleEngine,
    config: &SpecEeConfig,
) -> BatchedEngine<SyntheticLm, OracleDraft> {
    BatchedEngine::new(
        max_batch,
        PAGE,
        N_LAYERS,
        bank.clone(),
        schedule.clone(),
        config.clone(),
    )
}

fn main() {
    // Offline: train a small predictor bank once, share across runs.
    let mut lm = build_lm();
    let mut draft = OracleDraft::new(*lm.language(), 0.9, &model_cfg(), SEED);
    let train_prompts: Vec<(Vec<TokenId>, usize)> =
        (0..8u32).map(|i| (vec![1 + i, 2 + i], 8usize)).collect();
    let data = collect_training_data(&mut lm, &mut draft, &train_prompts, 4);
    let pcfg = PredictorConfig {
        hidden_dim: 16,
        ..PredictorConfig::default()
    };
    let mut bank = PredictorBank::new(N_LAYERS, &pcfg, &mut Pcg::seed(SEED));
    train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), SEED);
    let config = SpecEeConfig {
        predictor: pcfg,
        ..SpecEeConfig::default()
    };
    let schedule = ScheduleEngine::all_layers(N_LAYERS);

    // ---- Part 1: copy-on-write prefix sharing ----
    // Request 0 registers five full prefix pages (system prompt +
    // boilerplate). Requests 1-3 append unique suffixes; requests 4-5
    // truncate request 0 mid-page, exercising the copy-on-write tail.
    let system: Vec<TokenId> = (0..4 * PAGE as u32).map(|i| 1 + (i % 200)).collect();
    let long_form: Vec<TokenId> = {
        let mut p = system.clone();
        p.extend((0..PAGE as u32).map(|i| 100 + i));
        p
    };
    let prompts: Vec<Vec<TokenId>> = (0..6u32)
        .map(|i| match i {
            0 => long_form.clone(),
            1..=3 => {
                let mut p = system.clone();
                p.extend([10 + i, 30 + i, 50 + i]);
                p
            }
            _ => long_form[..4 * PAGE + 6].to_vec(),
        })
        .collect();
    let gen = 8usize;
    let run = |share: bool| -> (Vec<specee::batch::BatchedOutput>, KvStats, KvStats) {
        let mut eng = engine(prompts.len(), &bank, &schedule, &config);
        eng.enable_prefix_share(share);
        for (i, prompt) in prompts.iter().enumerate() {
            let (lm, draft) = seq_parts(i as u64);
            match eng.admit_classed(i as u64, TrafficClass::DEFAULT, lm, draft, prompt, gen) {
                Admission::Seated { .. } => {}
                Admission::Done(_) => unreachable!("gen > 0 stays seated"),
            }
        }
        let resident = eng.kv_stats();
        let outputs = eng.drain();
        (outputs, resident, eng.kv_stats())
    };
    let (private_outs, _, private_kv) = run(false);
    let (shared_outs, at_admit, shared_kv) = run(true);
    for (a, b) in private_outs.iter().zip(&shared_outs) {
        assert_eq!(a.tokens, b.tokens, "sharing must not change values");
        assert_eq!(a.exit_layers, b.exit_layers);
    }
    println!(
        "{} requests sharing a {}-token system prompt, gen {gen}, page size {PAGE}:",
        prompts.len(),
        system.len()
    );
    println!(
        "  private pages : peak {:>2} pages, {} created",
        private_kv.pages_peak, private_kv.pages_created
    );
    println!(
        "  cow-shared    : peak {:>2} pages, {} created, {} co-leased at admit, {} cow copies",
        shared_kv.pages_peak, shared_kv.pages_created, at_admit.shared_pages, shared_kv.cow_copies
    );
    println!(
        "  -> {:.0}% peak-occupancy cut, outputs bit-identical\n",
        100.0 * (1.0 - shared_kv.pages_peak as f64 / private_kv.pages_peak as f64)
    );
    assert!(at_admit.shared_pages > 0, "prefix pages co-leased");
    assert!(shared_kv.cow_copies > 0, "divergent writes copied");
    assert!(shared_kv.pages_peak < private_kv.pages_peak);

    // ---- Part 2: preemption under page pressure, traced ----
    // A 3-page pool seats two growing 40-token decodes whose joint page
    // demand soon overflows the cap. The engine repeatedly parks the
    // lane-1 sequence (pages recycled, generation state whole) to let
    // lane 0 make progress, re-seating it whenever pages free up — and
    // the interrupted decode still matches an uncapped control run
    // token for token.
    let admit_laned = |eng: &mut BatchedEngine<SyntheticLm, OracleDraft>| {
        for i in 0..2u64 {
            let (lm, draft) = seq_parts(100 + i);
            let _ = eng.admit_laned(
                i,
                TrafficClass::DEFAULT,
                Lane::new(i as u8),
                lm,
                draft,
                &[4 + i as TokenId, 2, 9],
                40,
            );
        }
    };
    let mut capped = engine(2, &bank, &schedule, &config);
    capped.set_page_capacity(Some(3));
    capped.set_preemption_enabled(true);
    capped.set_recorder(Some(Recorder::for_worker(0)));
    admit_laned(&mut capped);
    let interrupted = capped.drain();
    let mut uncapped = engine(2, &bank, &schedule, &config);
    admit_laned(&mut uncapped);
    let control = uncapped.drain();
    assert!(capped.preemptions() > 0, "the cap must force an eviction");
    assert_eq!(capped.preemptions(), capped.resumes());
    for (a, b) in interrupted.iter().zip(&control) {
        assert_eq!(
            a.tokens, b.tokens,
            "preempted-then-resumed must equal uninterrupted (request {})",
            a.id
        );
    }
    println!("page-pressure timeline (pool cap 3, two growing decodes, lane 1 yields to lane 0):");
    let events = capped
        .take_recorder()
        .map(Recorder::into_events)
        .expect("recorder attached");
    // The raw stream carries one pressure sample per step boundary and
    // one preempt/resume pair per park cycle; condense it to its phases.
    let first_preempt = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::Preempted {
                request,
                lane,
                pages,
            } => Some((request, lane, pages)),
            _ => None,
        })
        .expect("traced preemption");
    let last_resume = events
        .iter()
        .rev()
        .find_map(|e| match e.kind {
            EventKind::Resumed { request, lane } => Some((request, lane)),
            _ => None,
        })
        .expect("traced resume");
    let peak_pressure = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::KvPressure { pages, parked, .. } if parked > 0 => Some(pages),
            _ => None,
        })
        .max()
        .expect("pressure sampled while parked");
    println!(
        "  preempt  request {} (lane {}): {} pages recycled, generation state parked",
        first_preempt.0, first_preempt.1, first_preempt.2
    );
    println!(
        "  ...      {} park/resume cycles while the pool stays saturated \
         (up to {peak_pressure}/3 pages resident, 1 parked)",
        capped.preemptions() - 1
    );
    println!(
        "  resume   request {} (lane {}): pages freed, decode continues in place",
        last_resume.0, last_resume.1
    );
    println!(
        "\ninterrupted decode == uninterrupted decode ({} + {} tokens, bit-identical)",
        interrupted[0].tokens.len(),
        interrupted[1].tokens.len()
    );
}
