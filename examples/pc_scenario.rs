//! PC scenario: Llama2-7B on an 8 GB laptop GPU + CPU hybrid, llama.cpp
//! style, with and without SpecEE and with PowerInfer-style sparse
//! activation — reproducing the Fig. 16 setting as a runnable program.
//!
//! Run with: `cargo run --release --example pc_scenario`

use specee::core::collect::{collect_training_data, train_bank};
use specee::core::engine::{DenseEngine, SpecEeEngine};
use specee::core::predictor::PredictorBank;
use specee::core::SpecEeConfig;
use specee::metrics::{FrameworkProfile, HardwareProfile, Roofline};
use specee::model::ModelConfig;
use specee::nn::TrainConfig;
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

fn main() {
    let cfg = ModelConfig::sim_llama2_7b();
    let profile = DatasetProfile::sum();
    let seed = 33;
    let hw = HardwareProfile::pc_hybrid(0.55);
    println!(
        "hardware: {} ({:.0} GB/s effective)",
        hw.name,
        hw.mem_bw / 1e9
    );

    // Offline predictor training.
    let mut lm = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
        .seed(seed)
        .build();
    let mut draft = OracleDraft::new(*lm.language(), profile.hit_rate, &cfg, seed);
    let prompts = vec![
        (lm.language().sample_sequence(4, 14, 1), 18),
        (lm.language().sample_sequence(8, 14, 2), 18),
    ];
    let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
    let config = SpecEeConfig::default();
    let mut bank = PredictorBank::new(cfg.n_layers, &config.predictor, &mut Pcg::seed(seed));
    train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), seed);

    let prompt = lm.language().sample_sequence(21, 24, 5);
    let gen = 40;

    // llama.cpp baseline: dense weights, hybrid bandwidth.
    let dense_lm = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
        .seed(seed)
        .build();
    let base = DenseEngine::new(dense_lm).generate(&prompt, gen);
    let lcpp = Roofline::with_framework(hw.clone(), FrameworkProfile::llama_cpp());
    let base_tps = lcpp.cost(&base.meter).tokens_per_s();
    println!("\nllama.cpp baseline      : {base_tps:.2} tokens/s (paper ~6.6)");

    // SpecEE on llama.cpp.
    let schedule = config.build_schedule(cfg.n_layers, Some(&data.exit_frequencies));
    let ee_lm = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
        .seed(seed)
        .build();
    let mut engine =
        SpecEeEngine::new(ee_lm, draft.clone(), bank.clone(), schedule, config.clone());
    let out = engine.generate(&prompt, gen);
    let tps = lcpp.cost(&out.meter).tokens_per_s();
    println!(
        "SpecEE + llama.cpp      : {tps:.2} tokens/s ({:.2}x, paper 1.25x; avg layers {:.1})",
        tps / base_tps,
        out.avg_layers()
    );

    // PowerInfer: sparse-activation FFN (25% hot neurons).
    let mut sparse_lm = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
        .seed(seed)
        .build();
    sparse_lm
        .inner_mut()
        .enable_sparse_ffn(0.25, 16, &mut Pcg::seed(seed));
    let pi_base = DenseEngine::new(sparse_lm).generate(&prompt, gen);
    let pi = Roofline::with_framework(hw.clone(), FrameworkProfile::power_infer());
    let pi_tps = pi.cost(&pi_base.meter).tokens_per_s();
    println!("PowerInfer baseline     : {pi_tps:.2} tokens/s (paper ~11.8)");

    let mut sparse_ee = SyntheticLmBuilder::new(cfg.clone(), profile)
        .seed(seed)
        .build();
    sparse_ee
        .inner_mut()
        .enable_sparse_ffn(0.25, 16, &mut Pcg::seed(seed));
    let schedule = config.build_schedule(cfg.n_layers, Some(&data.exit_frequencies));
    let mut engine = SpecEeEngine::new(sparse_ee, draft, bank, schedule, config);
    let out = engine.generate(&prompt, gen);
    let tps = pi.cost(&out.meter).tokens_per_s();
    println!(
        "SpecEE + PowerInfer     : {tps:.2} tokens/s ({:.2}x, paper 1.15x)",
        tps / pi_tps
    );
}
