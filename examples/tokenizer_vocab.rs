//! The vocabulary as a search space: trains byte-level BPE tokenizers of
//! increasing size on the synthetic corpus and shows the two quantities
//! the paper's key insight connects — encoding quality (why real systems
//! want *large* vocabularies) and exit-predictor search-space size (what
//! large vocabularies cost AdaInfer-style methods, Fig. 2(b)).
//!
//! Run with: `cargo run --release --example tokenizer_vocab`

use specee::text::{BpeTrainer, CorpusConfig, SyntheticCorpus};

fn main() {
    let corpus = SyntheticCorpus::new(CorpusConfig::default(), 11).paragraphs(400);
    let eval = SyntheticCorpus::new(CorpusConfig::default(), 1234).paragraphs(10);
    println!(
        "training corpus: {} KB, evaluation text: {} KB\n",
        corpus.len() / 1024,
        eval.len() / 1024
    );

    println!("target | vocab | bytes/token | tokens/word | search-space reduction (K=4)");
    for target in [300usize, 512, 1024, 2048] {
        let tok = BpeTrainer::new(target).train(&corpus);
        let stats = tok.stats(&eval);
        println!(
            "{target:>6} | {:>5} | {:>11.2} | {:>11.2} | {:>7}x",
            tok.vocab().len(),
            stats.bytes_per_token(),
            stats.tokens_per_word(),
            tok.vocab().len() / 4
        );
    }

    // A concrete encoding, end to end.
    let tok = BpeTrainer::new(1024).train(&corpus);
    let text = "the speculative predictor measures the cache";
    let ids = tok.encode(text);
    println!("\nencode {text:?}:");
    for &id in &ids {
        println!(
            "  {id:>5} -> {:?}",
            String::from_utf8_lossy(tok.vocab().bytes(id))
        );
    }
    assert_eq!(tok.decode(&ids), text);
    println!(
        "roundtrip exact; {} tokens for {} bytes",
        ids.len(),
        text.len()
    );
}
