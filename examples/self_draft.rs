//! The self-speculative draft plane: shared-KV shallow drafting with
//! batched token-tree verification.
//!
//! Part one decodes the same prompt three ways on one real
//! `Transformer`: dense greedy (the reference), the speculative engine
//! with a *separate* draft network, and the speculative engine in
//! *self-draft* mode (`SelfDraft`), where the target's own first
//! `EXIT` layers grow the token tree and the verify sweep resumes from
//! the exit-layer hidden states. All three emit the identical greedy
//! stream — asserted bit-exact — but self-draft cuts the shallow layer
//! runs per accepted token: drafted shallow KV is committed on accept,
//! never recomputed, and no second network is streamed.
//!
//! Part two co-batches three self-draft sequences through the lock-step
//! `BatchedEngine` (per-slot shallow draft passes, one masked deep tree
//! sweep per layer) with a trace recorder attached, prints the
//! draft-pass/tree-verified timeline, and asserts each sequence matches
//! its solo single-engine run bit for bit.
//!
//! Run with: `cargo run --release --example self_draft`

use specee::batch::{Admission, BatchedEngine};
use specee::core::engine::{DenseEngine, SpeculativeEngine};
use specee::core::predictor::{PredictorBank, PredictorConfig};
use specee::core::{ScheduleEngine, SpecEeConfig};
use specee::draft::{DraftModel, SelfDraft, SelfDraftSpec, TreeShape};
use specee::model::{LayeredLm, ModelConfig, Transformer};
use specee::obs::{EventKind, Recorder};
use specee::tensor::rng::Pcg;

const N_LAYERS: usize = 8;
const EXIT: usize = 4;
const GEN: usize = 32;
const SEED: u64 = 1117;

fn model_cfg() -> ModelConfig {
    ModelConfig {
        n_layers: N_LAYERS,
        vocab_size: 160,
        ..ModelConfig::tiny()
    }
}

fn target(seed: u64) -> Transformer {
    Transformer::random(model_cfg(), &mut Pcg::seed(seed))
}

fn spec() -> SelfDraftSpec {
    SelfDraftSpec::new(EXIT, TreeShape::chain(3))
}

fn main() {
    let prompt = vec![9u32, 2, 31, 7, 14];

    // ---- Part 1: the layer-call cut, single stream ---------------------
    let reference = DenseEngine::new(target(SEED)).generate(&prompt, GEN);

    let separate = {
        let model = target(SEED);
        let draft = DraftModel::new(model.config(), &mut Pcg::seed(SEED ^ 3));
        let config = SpecEeConfig {
            tree_shape: TreeShape::chain(3),
            ..SpecEeConfig::default()
        };
        SpeculativeEngine::baseline(model, draft, config).generate(&prompt, GEN)
    };
    let selfd = SpeculativeEngine::baseline(
        target(SEED),
        SelfDraft::new(spec()),
        SpecEeConfig::default(),
    )
    .generate(&prompt, GEN);

    // Every mode is greedy over the same target, so the streams are
    // bit-identical — speculation changes cost, never content.
    assert_eq!(separate.tokens, reference.tokens);
    assert_eq!(selfd.tokens, reference.tokens);

    // Shallow-plane layer runs per accepted token: the separate-draft
    // baseline recomputes every tree node through layers 0..EXIT during
    // verification AND pays the draft network; self-draft's metered
    // shallow calls are the whole story.
    let n_nodes = (TreeShape::chain(3).node_count() + 1) as u64;
    let sep_shallow = separate.rounds * n_nodes * EXIT as u64 + separate.draft_calls;
    let self_shallow = selfd.self_draft_calls;
    println!("== self-speculative drafting: the layer-call cut ==");
    println!(
        "separate draft : {} rounds, {:.2} tokens/round, {:.1} shallow runs/token \
         ({} draft-net calls)",
        separate.rounds,
        GEN as f64 / separate.rounds as f64,
        sep_shallow as f64 / GEN as f64,
        separate.draft_calls
    );
    println!(
        "self-draft     : {} rounds, {:.2} tokens/round, {:.1} shallow runs/token \
         (shallow KV committed, not recomputed)",
        selfd.rounds,
        GEN as f64 / selfd.rounds as f64,
        self_shallow as f64 / GEN as f64
    );
    assert!(
        (self_shallow as f64 / GEN as f64) < (sep_shallow as f64 / GEN as f64),
        "self-draft must strictly cut shallow layer runs per token"
    );
    assert_eq!(
        selfd.draft_calls, 0,
        "no separate network in self-draft mode"
    );

    // ---- Part 2: lock-step self-draft through the batched engine -------
    let solo = |seed: u64| {
        SpeculativeEngine::baseline(
            target(seed),
            SelfDraft::new(spec()),
            SpecEeConfig::default(),
        )
        .generate(&prompt, GEN)
    };
    let pcfg = PredictorConfig {
        hidden_dim: 8,
        ..PredictorConfig::default()
    };
    let bank = PredictorBank::new(N_LAYERS, &pcfg, &mut Pcg::seed(5));
    let mut engine = BatchedEngine::new(
        3,
        16,
        N_LAYERS,
        bank,
        ScheduleEngine::all_layers(N_LAYERS),
        SpecEeConfig::default(),
    );
    engine.set_recorder(Some(Recorder::for_worker(0)));
    for id in 0..3u64 {
        let admission = engine.admit(id, target(SEED + id), SelfDraft::new(spec()), &prompt, GEN);
        assert!(matches!(admission, Admission::Seated { .. }));
    }
    let mut outputs = engine.drain();
    outputs.sort_by_key(|o| o.id);
    for out in &outputs {
        assert_eq!(
            out.tokens,
            solo(SEED + out.id).tokens,
            "lock-step self-draft must match the solo engine bit for bit"
        );
    }
    let events = engine
        .take_recorder()
        .map(Recorder::into_events)
        .unwrap_or_default();
    let mut passes = 0u64;
    let mut accepted_hist = [0u64; 4]; // accepted prefix length 1..=4
    for e in &events {
        match e.kind {
            EventKind::DraftPass { .. } => passes += 1,
            EventKind::TreeVerified { accepted, .. } => {
                accepted_hist[(accepted as usize - 1).min(3)] += 1;
            }
            _ => {}
        }
    }
    println!("\n== lock-step batched self-draft (3 sequences) ==");
    println!("draft passes   : {passes}");
    println!("accepted-prefix histogram (1, 2, 3, 4+ tokens): {accepted_hist:?}");
    assert!(passes > 0, "the draft plane must land in the trace");
    println!("\nAll bit-identity and layer-call assertions passed.");
}
