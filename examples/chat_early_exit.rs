//! Interactive-style chat demo: decode several "turns" and visualize per
//! token how deep the model had to go — the Fig. 1(c) intuition that
//! different tokens need different numbers of decoder layers.
//!
//! Run with: `cargo run --release --example chat_early_exit`

use specee::core::collect::{collect_training_data, train_bank};
use specee::core::engine::SpecEeEngine;
use specee::core::predictor::PredictorBank;
use specee::core::SpecEeConfig;
use specee::model::ModelConfig;
use specee::nn::TrainConfig;
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLmBuilder, Vocabulary};
use specee::tensor::rng::Pcg;

fn main() {
    let cfg = ModelConfig::sim_llama2_7b();
    let profile = DatasetProfile::mt_bench();
    let seed = 99;
    let vocab = Vocabulary::new(cfg.vocab_size);

    let mut lm = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
        .seed(seed)
        .build();
    let mut draft = OracleDraft::new(*lm.language(), profile.hit_rate, &cfg, seed);
    let prompts = vec![
        (lm.language().sample_sequence(2, 14, 1), 18),
        (lm.language().sample_sequence(6, 14, 2), 18),
    ];
    let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
    let config = SpecEeConfig::default();
    let mut bank = PredictorBank::new(cfg.n_layers, &config.predictor, &mut Pcg::seed(seed));
    train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), seed);

    println!("Chat with early exiting — bar length = layers executed\n");
    for (turn, start) in [(1u32, 13u32), (2, 42), (3, 77)] {
        let schedule = config.build_schedule(cfg.n_layers, Some(&data.exit_frequencies));
        let fresh = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
            .seed(seed)
            .build();
        let prompt = fresh
            .language()
            .sample_sequence(start, 10, u64::from(start));
        let mut engine =
            SpecEeEngine::new(fresh, draft.clone(), bank.clone(), schedule, config.clone());
        let out = engine.generate(&prompt, 16);

        println!("turn {turn}> {}", vocab.detokenize(&prompt));
        print!("reply{turn}> ");
        for tok in &out.tokens {
            print!("{} ", vocab.token_str(*tok));
        }
        println!();
        for (tok, &layers) in out.tokens.iter().zip(out.exit_layers.iter()) {
            println!(
                "   {:<10} |{:<32}| {layers}/{} layers",
                vocab.token_str(*tok),
                "█".repeat(layers.min(32)),
                cfg.n_layers
            );
        }
        println!(
            "   avg {:.1} layers — {} of {} tokens exited early\n",
            out.avg_layers(),
            out.exit_layers
                .iter()
                .filter(|&&l| l < cfg.n_layers)
                .count(),
            out.tokens.len()
        );
    }
}
