//! Online exit-threshold control under traffic drift (`specee-control`).
//!
//! A batch-1 `BatchedEngine` serves a stream that drifts mid-run:
//!
//! * **phase A — exit-hostile**: tokens saturate at the very end of the
//!   stack and the draft barely knows the domain, so predictor fires are
//!   mostly rejected verifications. The right operating point is "exits
//!   off".
//! * **phase B — shallow chat**: tokens settle within the first few
//!   layers; harvesting exits saves most of the decode work. The right
//!   operating point is a permissive threshold.
//!
//! No static threshold is right for both. The table below shows the
//! `pid` and `bandit` controllers re-converging live — thresholds climb
//! (or park on the 1.0 off-arm) during the hostile phase, then reopen
//! within a couple of requests of the drift — while the static baseline
//! either bleeds rejected verifications or forfeits the exits.
//!
//! Run with: `cargo run --release --example adaptive_threshold`

use specee::batch::{Admission, BatchedEngine};
use specee::control::ControllerPolicy;
use specee::core::collect::{collect_training_data, train_bank};
use specee::core::predictor::{PredictorBank, PredictorConfig};
use specee::core::{ScheduleEngine, SpecEeConfig};
use specee::model::{CostDims, ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

const N_LAYERS: usize = 16;
const GEN: usize = 16;
const SEED: u64 = 2026;
const REQS_PER_PHASE: usize = 6;

fn model_cfg() -> ModelConfig {
    ModelConfig {
        n_layers: N_LAYERS,
        vocab_size: 512,
        ..ModelConfig::tiny()
    }
    .with_cost(CostDims {
        n_layers: N_LAYERS,
        ..CostDims::llama2_7b()
    })
}

// The two traffic classes mirror `crates/bench/benches/
// ablation_controller.rs`, which asserts this scenario's speedup-recovery
// claims at sim-7B scale; keep the numbers in sync when retuning (the
// shallow exit_mu differs numerically only because both clamp to the
// same layer-2 saturation floor at their respective depths).

/// Exit-hostile traffic: saturates at the end of the stack, draft mostly
/// misses, so fires are wasted verifications.
fn hostile_profile() -> DatasetProfile {
    DatasetProfile {
        exit_mu: 0.95,
        exit_sigma: 0.02,
        early_frac: 0.02,
        hit_rate: 0.1,
        ..DatasetProfile::mt_bench()
    }
}

/// Shallow chat traffic: settles within the first few layers.
fn shallow_profile() -> DatasetProfile {
    DatasetProfile {
        exit_mu: 0.10,
        exit_sigma: 0.02,
        early_frac: 0.0,
        ..DatasetProfile::mt_bench()
    }
}

fn build_lm(profile: &DatasetProfile) -> SyntheticLm {
    SyntheticLmBuilder::new(model_cfg(), profile.clone())
        .seed(SEED)
        .build()
}

fn request(id: u64, profile: &DatasetProfile) -> (SyntheticLm, OracleDraft, Vec<TokenId>) {
    let lm = build_lm(profile);
    let draft = OracleDraft::new(*lm.language(), profile.hit_rate, &model_cfg(), SEED ^ id);
    let start = (SEED as u32 + id as u32 * 11) % model_cfg().vocab_size as u32;
    let prompt = lm.language().sample_sequence(start, 10, SEED ^ (id << 3));
    (lm, draft, prompt)
}

struct PhaseOutcome {
    avg_layers: f64,
    final_threshold: f64,
    false_exit_rate: Option<f64>,
}

/// Streams both phases through one engine; prints one row per request.
fn run(
    policy: &ControllerPolicy,
    bank: &PredictorBank,
    config: &SpecEeConfig,
) -> [PhaseOutcome; 2] {
    let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
        1,
        16,
        N_LAYERS,
        bank.clone(),
        ScheduleEngine::all_layers(N_LAYERS),
        config.clone(),
    );
    engine.set_controller(policy.build_classed(bank.len(), config.predictor.threshold));
    println!("--- {} controller ---", policy.name());
    println!(
        "{:<22} {:>4} {:>12} {:>12} {:>12}",
        "phase", "req", "thr", "avg layers", "false-exit"
    );
    let mut outcomes = Vec::new();
    let mut id = 0u64;
    for (name, profile) in [
        ("A hostile-deep", hostile_profile()),
        ("B shallow-chat", shallow_profile()),
    ] {
        let mut layer_sum = 0.0;
        let mut token_sum = 0.0;
        // Snapshot the counters so the phase outcome reports *this*
        // phase's accept/reject stream, not the cumulative run's.
        let start = engine.controller_summary().expect("controller attached");
        for _ in 0..REQS_PER_PHASE {
            let (lm, draft, prompt) = request(id, &profile);
            let out = match engine.admit(id, lm, draft, &prompt, GEN) {
                Admission::Done(out) => out,
                Admission::Seated { .. } => engine.drain().remove(0),
            };
            let summary = engine.controller_summary().expect("controller attached");
            println!(
                "{name:<22} {id:>4} {:>12.2} {:>12.1} {:>12}",
                summary.mean_threshold,
                out.avg_layers(),
                summary
                    .false_exit_rate()
                    .map(|r| format!("{:.0}%", r * 100.0))
                    .unwrap_or_else(|| "-".to_string()),
            );
            layer_sum += out.exit_layers.iter().sum::<usize>() as f64;
            token_sum += out.exit_layers.len() as f64;
            id += 1;
        }
        let summary = engine.controller_summary().expect("controller attached");
        let (accepts, rejects) = (
            summary.accepts - start.accepts,
            summary.rejects - start.rejects,
        );
        outcomes.push(PhaseOutcome {
            avg_layers: layer_sum / token_sum,
            final_threshold: summary.mean_threshold,
            false_exit_rate: (accepts + rejects > 0)
                .then(|| rejects as f64 / (accepts + rejects) as f64),
        });
    }
    println!();
    outcomes.try_into().ok().expect("two phases")
}

fn main() {
    let cfg = model_cfg();

    // Offline phase: predictors trained on the *shallow* class only —
    // the drift scenario: calibration reflects yesterday's traffic.
    let profile = shallow_profile();
    let mut lm = build_lm(&profile);
    let mut draft = OracleDraft::new(*lm.language(), 0.9, &cfg, SEED ^ 7);
    let train_prompts: Vec<(Vec<TokenId>, usize)> = (0..8u32)
        .map(|i| (vec![2 + i, 7 + (i % 5), 1 + i], GEN))
        .collect();
    let pcfg = PredictorConfig {
        hidden_dim: 16,
        ..PredictorConfig::default()
    };
    let data = collect_training_data(&mut lm, &mut draft, &train_prompts, pcfg.spec_k);
    let mut bank = PredictorBank::new(N_LAYERS, &pcfg, &mut Pcg::seed(SEED));
    train_bank(
        &mut bank,
        &data.samples,
        1.0,
        &TrainConfig {
            epochs: 6,
            lr: 3e-3,
            ..TrainConfig::default()
        },
        SEED,
    );
    let config = SpecEeConfig {
        predictor: pcfg,
        ..SpecEeConfig::default()
    };

    println!(
        "drifting stream: {REQS_PER_PHASE} exit-hostile requests, then {REQS_PER_PHASE} \
         shallow requests ({N_LAYERS}-layer model, batch 1)\n"
    );

    let mut results = Vec::new();
    for policy in ControllerPolicy::all() {
        results.push((policy.name(), run(&policy, &bank, &config)));
    }

    println!("phase summary (mean executed layers of {N_LAYERS}):");
    println!(
        "{:<10} {:>16} {:>16} {:>20}",
        "policy", "A avg layers", "B avg layers", "final thr (A -> B)"
    );
    for (name, [a, b]) in &results {
        println!(
            "{name:<10} {:>16.1} {:>16.1} {:>13.2} -> {:.2}",
            a.avg_layers, b.avg_layers, a.final_threshold, b.final_threshold
        );
    }

    // The adaptive controllers must visibly re-converge: tight (or off)
    // under hostile traffic, reopened and harvesting after the drift.
    for (name, [a, b]) in &results {
        if *name == "static" {
            continue;
        }
        assert!(
            b.avg_layers < a.avg_layers - 4.0,
            "{name}: the reopened controller should harvest shallow exits \
             ({:.1} -> {:.1} layers)",
            a.avg_layers,
            b.avg_layers
        );
    }
    let find = |name: &str| {
        &results
            .iter()
            .find(|(n, _)| *n == name)
            .expect("policy ran")
            .1
    };
    // The bandit's single global arm must move: off under hostile
    // traffic, a permissive arm after the drift.
    let bandit = find("bandit");
    assert!(
        bandit[1].final_threshold < bandit[0].final_threshold - 0.1,
        "bandit: arm should fall after the drift ({:.2} -> {:.2})",
        bandit[0].final_threshold,
        bandit[1].final_threshold
    );
    // The PID loops are per-layer: under hostile traffic the mean
    // threshold tightens above the 0.5 start, and after the drift the
    // shallow layers reopen — harvesting within reach of the static
    // baseline that never had to recover.
    let pid = find("pid");
    assert!(
        pid[0].final_threshold > 0.55,
        "pid: hostile traffic should tighten thresholds (mean {:.2})",
        pid[0].final_threshold
    );
    let static_run = find("static");
    assert!(
        pid[1].avg_layers < static_run[1].avg_layers + 2.0,
        "pid: reopened loops should harvest like the static baseline \
         ({:.1} vs {:.1} layers)",
        pid[1].avg_layers,
        static_run[1].avg_layers
    );
    let (static_b, pid_b) = (&static_run[1], &pid[1]);
    println!(
        "\nafter the drift the pid controller executes {:.1} layers/token vs {:.1} for the \
         0.5-static baseline; its false-exit rate ends at {} vs {} static",
        pid_b.avg_layers,
        static_b.avg_layers,
        pid_b
            .false_exit_rate
            .map(|r| format!("{:.0}%", r * 100.0))
            .unwrap_or_else(|| "-".into()),
        static_b
            .false_exit_rate
            .map(|r| format!("{:.0}%", r * 100.0))
            .unwrap_or_else(|| "-".into()),
    );
}
