//! Multi-worker data-parallel serving: the `specee-cluster` runtime.
//!
//! Serves one request burst through clusters of 1, 2 and 4 live workers
//! (the scaling table), then routes a skewed shallow/deep workload with
//! round-robin vs exit-aware routing to show depth packing, and finally
//! demonstrates deadlines: a request whose deadline expires in the queue
//! is cancelled and reported, not decoded.
//!
//! Every worker genuinely decodes on its own OS thread; the simulated
//! clocks are priced per measured step, and the arrival-frontier
//! protocol makes the whole run deterministic.
//!
//! Run with: `cargo run --release --example cluster`

use std::sync::Arc;

use specee::cluster::{Cluster, ClusterConfig, ClusterRequest, RouterPolicy};
use specee::core::collect::{collect_training_data, train_bank};
use specee::core::predictor::{PredictorBank, PredictorConfig};
use specee::core::{ScheduleEngine, SpecEeConfig};
use specee::metrics::{FrameworkProfile, HardwareProfile};
use specee::model::{CostDims, ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::serve::{AdmissionPolicy, BatcherConfig, PoissonArrivals, ServeRequest};
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

const N_LAYERS: usize = 16;
const GEN: usize = 10;
const SEED: u64 = 2025;

fn model_cfg() -> ModelConfig {
    ModelConfig {
        n_layers: N_LAYERS,
        vocab_size: 512,
        ..ModelConfig::tiny()
    }
    .with_cost(CostDims {
        n_layers: N_LAYERS,
        ..CostDims::llama2_7b()
    })
}

/// Shallow-settling traffic (tokens decided around a third of the stack)
/// vs deep-settling traffic — the skew the exit-aware router exploits.
fn profile(shallow: bool) -> DatasetProfile {
    if shallow {
        DatasetProfile {
            exit_mu: 0.3,
            early_frac: 0.3,
            ..DatasetProfile::qa()
        }
    } else {
        DatasetProfile {
            exit_mu: 0.95,
            early_frac: 0.02,
            ..DatasetProfile::qa()
        }
    }
}

fn build_lm(shallow: bool) -> SyntheticLm {
    SyntheticLmBuilder::new(model_cfg(), profile(shallow))
        .seed(SEED)
        .build()
}

fn cluster_config(workers: usize, max_batch: usize) -> ClusterConfig {
    ClusterConfig {
        workers,
        page_size: 16,
        page_capacity: None,
        prefix_share: false,
        preemption: false,
        admission: AdmissionPolicy::Fcfs,
        batcher: BatcherConfig {
            max_batch,
            hardware: HardwareProfile::a100_80g(),
            framework: FrameworkProfile::vllm(),
            cost: model_cfg().cost.expect("cost twin"),
        },
        controller: specee::control::ControllerPolicy::Static,
        gossip: true,
        trace: false,
        trace_sample: 1,
        slo: None,
    }
}

fn main() {
    // Offline phase: one predictor bank trained on both traffic classes.
    let pcfg = PredictorConfig {
        hidden_dim: 32,
        ..PredictorConfig::default()
    };
    let mut samples = Vec::new();
    for shallow in [true, false] {
        let mut lm = build_lm(shallow);
        let mut draft = OracleDraft::new(*lm.language(), 0.9, &model_cfg(), SEED);
        let prompts: Vec<(Vec<TokenId>, usize)> = (0..8u32)
            .map(|i| (vec![2 + i, 7 + (i % 5), 1 + i], GEN))
            .collect();
        samples.extend(collect_training_data(&mut lm, &mut draft, &prompts, 4).samples);
    }
    let mut bank = PredictorBank::new(N_LAYERS, &pcfg, &mut Pcg::seed(SEED));
    train_bank(&mut bank, &samples, 1.0, &TrainConfig::default(), SEED);
    let config = SpecEeConfig {
        predictor: pcfg,
        ..SpecEeConfig::default()
    };
    let schedule = ScheduleEngine::all_layers(N_LAYERS);

    let spawn = |workers: usize, policy: RouterPolicy, shallow_of: fn(u64) -> bool| {
        let bank = bank.clone();
        Cluster::<SyntheticLm, OracleDraft>::spawn(
            &cluster_config(workers, 2),
            policy.build(),
            &bank,
            &schedule,
            &config,
            Arc::new(move |req: &ClusterRequest| {
                let lm = build_lm(shallow_of(req.request.id));
                let draft =
                    OracleDraft::new(*lm.language(), 0.9, &model_cfg(), SEED ^ req.request.id);
                (lm, draft)
            }),
        )
    };

    // ---- Scaling table: the same burst on 1, 2 and 4 workers ----
    let specs: Vec<(Vec<TokenId>, usize)> = (0..12u32)
        .map(|i| (vec![4 + (i % 5), 2 + (i % 3), 9 - (i % 4)], GEN))
        .collect();
    let requests = PoissonArrivals::new(500.0, SEED).requests(&specs);
    println!("scaling a 12-request burst across live workers (cap 2 each):");
    println!("workers | tok/s | x vs 1 | mean lat (ms) | p99 lat (ms) | steps");
    let mut base = None;
    for workers in [1usize, 2, 4] {
        let mut cluster = spawn(workers, RouterPolicy::RoundRobin, |_| true);
        for req in &requests {
            cluster.submit(ClusterRequest::new(req.clone()));
        }
        let report = cluster.drain();
        assert_eq!(report.completed(), requests.len());
        let stats = report.stats();
        let base_tput = *base.get_or_insert(stats.throughput_tok_s);
        println!(
            "{workers:>7} | {:>5.1} | {:>5.2}x | {:>13.0} | {:>12.0} | {:>5}",
            stats.throughput_tok_s,
            stats.throughput_tok_s / base_tput,
            stats.mean_latency_s * 1e3,
            stats.p99_latency_s * 1e3,
            report.aggregate().steps,
        );
    }

    // ---- Skewed traffic: shallow/deep classes, round-robin vs exit-aware ----
    // SSDD pattern: ids 0,1 shallow; 2,3 deep; repeating.
    let is_shallow: fn(u64) -> bool = |id| (id / 2) % 2 == 0;
    let skew_requests = PoissonArrivals::new(15.0, SEED ^ 3).requests(&specs);
    println!("\nskewed shallow/deep traffic on 2 workers, round-robin vs exit-aware:");
    for policy in [RouterPolicy::RoundRobin, RouterPolicy::ExitAware] {
        let mut cluster = spawn(2, policy, is_shallow);
        for req in &skew_requests {
            let hint = if is_shallow(req.id) {
                0.35 * N_LAYERS as f64
            } else {
                N_LAYERS as f64
            };
            cluster.submit(ClusterRequest::new(req.clone()).with_exit_hint(hint));
        }
        let report = cluster.drain();
        let stats = report.stats();
        println!(
            "  {:<14} {:>6.1} tok/s | mean lat {:>4.0} ms | per-worker observed depth: {}",
            report.router,
            stats.throughput_tok_s,
            stats.mean_latency_s * 1e3,
            report
                .workers
                .iter()
                .map(|w| format!(
                    "w{} {:.1}/{} ({} reqs)",
                    w.worker,
                    w.observed_depth.unwrap_or(0.0),
                    N_LAYERS,
                    w.report.completions.len()
                ))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // ---- Deadlines: a queued request can expire instead of decoding ----
    let mut cluster = spawn(1, RouterPolicy::RoundRobin, |_| false);
    cluster.submit(ClusterRequest::new(ServeRequest {
        id: 0,
        prompt: vec![1, 2, 3],
        gen_len: 24,
        arrival_s: 0.0,
    }));
    cluster.submit(
        ClusterRequest::new(ServeRequest {
            id: 1,
            prompt: vec![2, 3, 4],
            gen_len: 4,
            arrival_s: 1e-4,
        })
        .with_deadline(2e-4),
    );
    let report = cluster.drain();
    println!(
        "\ndeadlines: request 1 queued behind a 24-token job with a 0.2 ms deadline -> {}",
        if report.workers[0].timed_out == vec![1] {
            "timed out (reported, not decoded)"
        } else {
            "unexpectedly served"
        }
    );
    assert_eq!(report.completed(), 1);
    assert_eq!(report.workers[0].timed_out, vec![1]);
}
