//! Serving: SpecEE under continuous batching (the multi-request extension).
//!
//! The paper evaluates single-stream decoding; this example records real
//! engine traces for a burst of requests and replays them through the
//! continuous batcher at several batch caps, showing how the early-exit
//! advantage decays as weight reads amortize across the batch.
//!
//! Run with: `cargo run --release --example serving`

use specee::core::collect::{collect_training_data, train_bank};
use specee::core::engine::{DenseEngine, SpecEeEngine};
use specee::core::predictor::PredictorBank;
use specee::core::SpecEeConfig;
use specee::metrics::{FrameworkProfile, HardwareProfile};
use specee::model::{ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::serve::{BatcherConfig, ContinuousBatcher, PoissonArrivals, RequestTrace};
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

fn main() {
    let cfg = ModelConfig::sim_llama2_7b();
    let profile = DatasetProfile::mt_bench();
    let seed = 77;
    let gen = 16usize;
    let n_requests = 12;

    // Offline phase: train the predictor bank once.
    let mut lm = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
        .seed(seed)
        .build();
    let mut draft = OracleDraft::new(*lm.language(), profile.hit_rate, &cfg, seed);
    let prompts: Vec<(Vec<TokenId>, usize)> = (0..6)
        .map(|i| {
            (
                lm.language()
                    .sample_sequence(3 + i, 12, seed ^ u64::from(i)),
                gen,
            )
        })
        .collect();
    let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
    let config = SpecEeConfig::default();
    let mut bank = PredictorBank::new(cfg.n_layers, &config.predictor, &mut Pcg::seed(seed));
    train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), seed);

    // Record one trace per request with the real engines.
    let schedule = config.build_schedule(cfg.n_layers, Some(&data.exit_frequencies));
    let fresh = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
        .seed(seed)
        .build();
    let lang = *fresh.language();
    let mut spec_engine = SpecEeEngine::new(fresh, draft, bank, schedule, config);
    let mut dense_engine = DenseEngine::new(
        SyntheticLmBuilder::new(cfg.clone(), profile.clone())
            .seed(seed)
            .build(),
    );

    let specs: Vec<(Vec<TokenId>, usize)> = (0..n_requests)
        .map(|i| {
            (
                lang.sample_sequence(5 + i, 10, seed ^ (0x40 + u64::from(i))),
                gen,
            )
        })
        .collect();
    let mut dense_traces = Vec::new();
    let mut spec_traces = Vec::new();
    for (prompt, g) in &specs {
        dense_traces.push(RequestTrace::from_output(
            &dense_engine.generate(prompt, *g),
            false,
        ));
        spec_traces.push(RequestTrace::from_output(
            &spec_engine.generate(prompt, *g),
            true,
        ));
    }
    println!(
        "recorded {n_requests} request traces; SpecEE mean exit layer {:.1} / {}",
        spec_traces
            .iter()
            .map(RequestTrace::avg_exit_layer)
            .sum::<f64>()
            / n_requests as f64,
        cfg.n_layers
    );

    // Replay under several batch caps.
    let requests = PoissonArrivals::new(8.0, seed).requests(&specs);
    println!("\nbatch | dense tok/s | SpecEE tok/s | speedup | SpecEE mean TTFT");
    for max_batch in [1usize, 2, 4, 8] {
        let batcher = ContinuousBatcher::new(BatcherConfig {
            max_batch,
            hardware: HardwareProfile::a100_80g(),
            framework: FrameworkProfile::vllm(),
            cost: cfg.cost.expect("sim preset has a cost twin"),
        });
        let d = batcher.run(&requests, &dense_traces).stats();
        let s = batcher.run(&requests, &spec_traces).stats();
        println!(
            "{max_batch:>5} | {:>11.2} | {:>12.2} | {:>6.2}x | {:>13.0} ms",
            d.throughput_tok_s,
            s.throughput_tok_s,
            s.throughput_tok_s / d.throughput_tok_s,
            s.mean_ttft_s * 1e3
        );
    }
    println!("\nthe speedup decays toward 1x: a layer's weights are saved only when");
    println!("every co-batched sequence exits below it.");
}
