//! Deterministic cluster tracing: the `specee-obs` observability plane.
//!
//! Runs the same 3-worker burst twice — once untraced, once with the
//! event plane on — and shows that recording is a pure observer: the two
//! runs decode bit-identically. The traced run then exports a Chrome
//! trace (one lane per worker plus the coordinator's routing lane, open
//! in Perfetto or `chrome://tracing`) and a Prometheus text snapshot
//! whose counters are cross-checked against the report's own numbers.
//!
//! Because every timestamp comes from the simulated clock, the trace
//! itself is bit-reproducible run to run — diffing two trace files is a
//! regression test.
//!
//! Run with: `cargo run --release --example trace_cluster`

use std::sync::Arc;

use specee::cluster::{Cluster, ClusterConfig, ClusterRequest, RouterPolicy};
use specee::core::collect::{collect_training_data, train_bank};
use specee::core::predictor::{PredictorBank, PredictorConfig};
use specee::core::{ScheduleEngine, SpecEeConfig};
use specee::metrics::{FrameworkProfile, HardwareProfile};
use specee::model::{CostDims, ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::obs::{chrome_trace, chrome_trace_json, lanes_of, prometheus_text, EventKind};
use specee::serve::{AdmissionPolicy, BatcherConfig, PoissonArrivals};
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

const N_LAYERS: usize = 12;
const WORKERS: usize = 3;
const GEN: usize = 10;
const SEED: u64 = 2025;

fn model_cfg() -> ModelConfig {
    ModelConfig {
        n_layers: N_LAYERS,
        vocab_size: 512,
        ..ModelConfig::tiny()
    }
    .with_cost(CostDims {
        n_layers: N_LAYERS,
        ..CostDims::llama2_7b()
    })
}

fn build_lm() -> SyntheticLm {
    SyntheticLmBuilder::new(model_cfg(), DatasetProfile::qa())
        .seed(SEED)
        .build()
}

fn run(
    trace: bool,
    bank: &PredictorBank,
    schedule: &ScheduleEngine,
    config: &SpecEeConfig,
) -> specee::cluster::ClusterReport {
    let cluster_config = ClusterConfig {
        workers: WORKERS,
        page_size: 16,
        page_capacity: None,
        prefix_share: false,
        preemption: false,
        admission: AdmissionPolicy::Fcfs,
        batcher: BatcherConfig {
            max_batch: 2,
            hardware: HardwareProfile::a100_80g(),
            framework: FrameworkProfile::vllm(),
            cost: model_cfg().cost.expect("cost twin"),
        },
        controller: specee::control::ControllerPolicy::Static,
        gossip: true,
        trace,
        trace_sample: 1,
        slo: None,
    };
    let mut cluster = Cluster::<SyntheticLm, OracleDraft>::spawn(
        &cluster_config,
        RouterPolicy::ExitAware.build(),
        bank,
        schedule,
        config,
        Arc::new(move |req: &ClusterRequest| {
            let lm = build_lm();
            let draft = OracleDraft::new(*lm.language(), 0.9, &model_cfg(), SEED ^ req.request.id);
            (lm, draft)
        }),
    );
    let specs: Vec<(Vec<TokenId>, usize)> = (0..9u32)
        .map(|i| (vec![4 + (i % 5), 2 + (i % 3), 9 - (i % 4)], GEN))
        .collect();
    for req in PoissonArrivals::new(40.0, SEED ^ 7).requests(&specs) {
        cluster.submit(ClusterRequest::new(req).with_exit_hint(0.5 * N_LAYERS as f64));
    }
    cluster.drain()
}

fn main() {
    // Offline phase: train the predictor bank once, share across runs.
    let pcfg = PredictorConfig {
        hidden_dim: 32,
        ..PredictorConfig::default()
    };
    let mut lm = build_lm();
    let mut draft = OracleDraft::new(*lm.language(), 0.9, &model_cfg(), SEED);
    let prompts: Vec<(Vec<TokenId>, usize)> = (0..8u32)
        .map(|i| (vec![2 + i, 7 + (i % 5), 1 + i], GEN))
        .collect();
    let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
    let mut bank = PredictorBank::new(N_LAYERS, &pcfg, &mut Pcg::seed(SEED));
    train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), SEED);
    let config = SpecEeConfig {
        predictor: pcfg,
        ..SpecEeConfig::default()
    };
    let schedule = ScheduleEngine::all_layers(N_LAYERS);

    // ---- Tracing is a pure observer ----
    let plain = run(false, &bank, &schedule, &config);
    let traced = run(true, &bank, &schedule, &config);
    assert!(plain.events.is_empty());
    assert_eq!(plain.aggregate(), traced.aggregate());
    for (p, t) in plain.workers.iter().zip(&traced.workers) {
        assert_eq!(p.report, t.report);
    }
    println!(
        "traced run == untraced run: {} requests, {} steps, makespan {:.0} ms (bit-identical)",
        traced.completed(),
        traced.aggregate().steps,
        traced.aggregate().makespan_s * 1e3
    );

    // ---- What the event plane captured ----
    let mut by_kind: std::collections::BTreeMap<&'static str, usize> =
        std::collections::BTreeMap::new();
    for e in &traced.events {
        *by_kind.entry(e.kind.name()).or_insert(0) += 1;
    }
    println!(
        "event stream: {} events ({})",
        traced.events.len(),
        by_kind
            .iter()
            .map(|(k, n)| format!("{n} {k}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let routes = traced
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Routing { .. }))
        .count();
    assert_eq!(routes, 9, "one routing decision per request");

    // ---- Chrome trace export (Perfetto-viewable) ----
    let json = chrome_trace_json(&traced.events);
    let doc = chrome_trace(&traced.events);
    let lanes = lanes_of(&doc).expect("traceEvents present");
    assert_eq!(lanes.len(), WORKERS + 1, "worker lanes + coordinator");
    let out_dir = std::env::temp_dir();
    let trace_path = out_dir.join("specee_trace.json");
    std::fs::write(&trace_path, &json).expect("write trace");
    println!(
        "chrome trace: {} lanes -> {} ({} bytes; open in Perfetto / chrome://tracing)",
        lanes.len(),
        trace_path.display(),
        json.len()
    );

    // ---- Prometheus snapshot, cross-checked against the report ----
    let registry = traced.metrics(Some(&HardwareProfile::a100_80g()));
    assert_eq!(
        registry.counter("specee_requests_total") as usize,
        traced.completed()
    );
    assert_eq!(
        registry.counter("specee_steps_total") as u64,
        traced.aggregate().steps
    );
    let text = prometheus_text(&registry);
    let metrics_path = out_dir.join("specee_metrics.prom");
    std::fs::write(&metrics_path, &text).expect("write metrics");
    let exit_hist = registry.histogram("specee_exit_layer").expect("exit hist");
    println!(
        "metrics: {} exposition lines -> {} (p50 exit layer {:.0}, {} exits accepted)",
        text.lines().count(),
        metrics_path.display(),
        exit_hist.quantile(0.5),
        registry.counter("specee_exits_accepted_total{class=\"3\"}")
    );
}
