//! The offline predictor pipeline of §7.4.4, end to end: collect per-layer
//! features with all predictors active, split train/test, train the
//! 2-layer MLP bank, sweep the training-set fraction (Fig. 18's axis), and
//! persist/reload the bank as JSON.
//!
//! Run with: `cargo run --release --example train_predictor`

use specee::core::collect::{collect_training_data, train_bank};
use specee::core::predictor::{PredictorBank, PredictorConfig};
use specee::model::{ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ModelConfig::sim_llama2_7b();
    let profile = DatasetProfile::mt_bench();
    let seed = 4242;

    // 1. Collection: run the model with every predictor site active and
    //    label each (layer, features) pair by whether the early-exit token
    //    equals the full-depth token.
    let mut lm = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
        .seed(seed)
        .build();
    let mut draft = OracleDraft::new(*lm.language(), profile.hit_rate, &cfg, seed);
    let prompts: Vec<(Vec<TokenId>, usize)> = (0..8)
        .map(|i| {
            (
                lm.language()
                    .sample_sequence(2 + i, 14, seed ^ u64::from(i)),
                18,
            )
        })
        .collect();
    let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
    let positives = data.samples.iter().filter(|s| s.label).count();
    println!(
        "collected {} samples ({} positive, {:.1}%), theoretical exit {:.2} layers",
        data.samples.len(),
        positives,
        positives as f64 / data.samples.len() as f64 * 100.0,
        data.theoretical_layers
    );

    // 2. Fraction sweep (Fig. 18): a small slice of the data already
    //    trains an accurate bank.
    let pcfg = PredictorConfig::default();
    println!("\ntrain fraction | mean accuracy");
    for fraction in [0.02, 0.1, 0.5, 1.0] {
        let mut bank = PredictorBank::new(cfg.n_layers, &pcfg, &mut Pcg::seed(seed));
        let report = train_bank(
            &mut bank,
            &data.samples,
            fraction,
            &TrainConfig {
                epochs: 16,
                lr: 3e-3,
                ..TrainConfig::default()
            },
            seed,
        );
        println!(
            "{:>13.0}% | {:>12.1}%  ({} samples)",
            fraction * 100.0,
            report.mean_accuracy * 100.0,
            report.samples_used
        );
    }

    // 3. Persist and reload: the bank round-trips through JSON so a
    //    deployment can ship pre-trained predictors next to the weights.
    let mut bank = PredictorBank::new(cfg.n_layers, &pcfg, &mut Pcg::seed(seed));
    train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), seed);
    let json = bank.to_json()?;
    let reloaded = PredictorBank::from_json(&json)?;
    println!(
        "\nserialized bank: {} KB JSON, {} predictors, {} KB of weights",
        json.len() / 1024,
        reloaded.len(),
        reloaded.total_bytes() / 1024
    );
    Ok(())
}
