//! The online SLO plane guarding tail latency, at example scale
//! (`specee-obs` + `specee-control::SloAdaptive`).
//!
//! A bandit controller optimizes the reward it can see — accepted-exit
//! layer savings gated by an accuracy floor — and nothing in that
//! reward sees the queue. With a production-calibrated floor (only arms
//! whose verifier accept rate clears 95% earn reward) the bandit
//! honestly parks on the exits-off arm under modestly predicted
//! traffic; when a sustained burst then arrives faster than full-depth
//! decoding can serve, the backlog and every queued request's TTFT grow
//! without bound, and the bandit never notices.
//!
//! This example arms the `ContinuousBatcher`'s [`SloTracker`] with a
//! `p99_ttft` objective and wraps the same bandit in `SloAdaptive`: the
//! tracker's multi-window burn-rate alert fires as the tail starts to
//! burn, the wrapper bends the bandit's choice toward an aggressive exit
//! floor until the backlog drains, and the fired/cleared transitions
//! land in the trace as typed events — printed below straight from the
//! recorder.
//!
//! The tracker alerts on a deliberately tighter internal objective than
//! the external SLA (alert-before-you-burn), so the guard re-engages
//! while the tail still has budget. `crates/bench/benches/
//! ablation_slo.rs` asserts the same scenario's speedup-retention
//! claims at sim-7B scale.
//!
//! Run with: `cargo run --release --example slo_guard`

use specee::batch::BatchedEngine;
use specee::control::{BanditConfig, ControllerPolicy};
use specee::core::collect::{collect_training_data, train_bank};
use specee::core::predictor::{PredictorBank, PredictorConfig};
use specee::core::{ScheduleEngine, SpecEeConfig};
use specee::metrics::{FrameworkProfile, HardwareProfile};
use specee::model::{CostDims, ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::obs::{EventKind, Recorder, SloSpec};
use specee::serve::{BatcherConfig, ContinuousBatcher, PoissonArrivals, ServeRequest, ServeStats};
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

const N_LAYERS: usize = 16;
const GEN: usize = 12;
const MAX_BATCH: usize = 2;
const SEED: u64 = 2026;
const N_REQUESTS: usize = 60;

/// The external p99 TTFT SLA the table measures against.
const SLA_P99_TTFT_S: f64 = 0.35;
/// The tighter internal objective the tracker alerts on: the guard
/// oscillates around whatever it tracks, so tracking the SLA itself
/// would let each queue-rebuild cycle graze past it.
const TRACKED_P99_TTFT_S: f64 = 0.08;

fn model_cfg() -> ModelConfig {
    ModelConfig {
        n_layers: N_LAYERS,
        vocab_size: 512,
        ..ModelConfig::tiny()
    }
    .with_cost(CostDims {
        n_layers: N_LAYERS,
        ..CostDims::llama2_7b()
    })
}

/// Shallow chat traffic: tokens settle within the first few layers, so
/// a permissive threshold harvests most of the decode work — the
/// headroom the SLO plane spends when the tail burns.
fn shallow_profile() -> DatasetProfile {
    DatasetProfile {
        exit_mu: 0.10,
        exit_sigma: 0.02,
        early_frac: 0.0,
        ..DatasetProfile::mt_bench()
    }
}

fn build_lm(seed: u64) -> SyntheticLm {
    SyntheticLmBuilder::new(model_cfg(), shallow_profile())
        .seed(seed)
        .build()
}

struct RunOutcome {
    stats: ServeStats,
    avg_layers: f64,
    transitions: Vec<(f64, EventKind)>,
}

/// One pass of the stream through the live lock-step engine. `policy`
/// attaches a controller (None = static never-fire reference), `slo`
/// arms the batcher's burn-rate tracker.
fn run(
    bank: &PredictorBank,
    config: &SpecEeConfig,
    requests: &[ServeRequest],
    threshold: Option<f32>,
    policy: Option<&ControllerPolicy>,
    slo: Option<&SloSpec>,
) -> RunOutcome {
    let cfg = model_cfg();
    let mut bank = bank.clone();
    if let Some(t) = threshold {
        bank.set_threshold(t);
    }
    let base = threshold.unwrap_or(config.predictor.threshold);
    let n_predictors = bank.len();
    let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
        MAX_BATCH,
        16,
        N_LAYERS,
        bank,
        ScheduleEngine::all_layers(N_LAYERS),
        config.clone(),
    );
    if let Some(p) = policy {
        engine.set_controller(p.build_classed(n_predictors, base));
    }
    engine.set_recorder(Some(Recorder::for_worker(0)));
    let mut batcher = ContinuousBatcher::new(BatcherConfig {
        max_batch: MAX_BATCH,
        hardware: HardwareProfile::a100_80g(),
        framework: FrameworkProfile::vllm(),
        cost: cfg.cost.expect("cost twin"),
    });
    if let Some(spec) = slo {
        batcher = batcher.with_slo(spec.clone());
    }
    let profile = shallow_profile();
    let outcome = batcher.run_live(requests, &mut engine, |req| {
        let lm = build_lm(SEED);
        let draft = OracleDraft::new(*lm.language(), profile.hit_rate, &cfg, SEED ^ req.id);
        (lm, draft)
    });
    let transitions = engine
        .take_recorder()
        .map(|r| r.into_events())
        .unwrap_or_default()
        .into_iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::SloFired { .. } | EventKind::SloCleared { .. }
            )
        })
        .map(|e| (e.t, e.kind))
        .collect();
    RunOutcome {
        stats: outcome.report.stats(),
        avg_layers: outcome.report.avg_layers,
        transitions,
    }
}

fn main() {
    let cfg = model_cfg();

    // Offline phase: a deliberately modest predictor (as in
    // `examples/adaptive_threshold.rs`), so no exit arm clears the
    // bandit's 95% accuracy floor and it parks on exits-off.
    let mut lm = build_lm(SEED);
    let mut draft = OracleDraft::new(*lm.language(), 0.9, &cfg, SEED ^ 7);
    let train_prompts: Vec<(Vec<TokenId>, usize)> = (0..8u32)
        .map(|i| (vec![2 + i, 7 + (i % 5), 1 + i], GEN))
        .collect();
    let pcfg = PredictorConfig {
        hidden_dim: 16,
        ..PredictorConfig::default()
    };
    let data = collect_training_data(&mut lm, &mut draft, &train_prompts, pcfg.spec_k);
    let mut bank = PredictorBank::new(N_LAYERS, &pcfg, &mut Pcg::seed(SEED));
    train_bank(
        &mut bank,
        &data.samples,
        1.0,
        &TrainConfig {
            epochs: 6,
            lr: 3e-3,
            ..TrainConfig::default()
        },
        SEED,
    );
    let config = SpecEeConfig {
        predictor: pcfg,
        ..SpecEeConfig::default()
    };

    // A warm 2 s trickle primes the tracker's windows with healthy
    // TTFTs, then a sustained burst arrives faster than exits-off
    // decoding can serve (but within what floor-threshold exits
    // sustain): the exits-off bandit falls behind without bound, the
    // guarded run has the headroom to drain once pressure engages.
    let specs: Vec<(Vec<TokenId>, usize)> = {
        let lm = build_lm(SEED);
        (0..N_REQUESTS)
            .map(|i| {
                let start = (SEED as u32 + i as u32 * 11) % cfg.vocab_size as u32;
                (
                    lm.language()
                        .sample_sequence(start, 10, SEED ^ ((i as u64) << 3)),
                    GEN,
                )
            })
            .collect()
    };
    let warm = PoissonArrivals::new(4.0, SEED ^ 0x51).requests(&specs[..8]);
    let burst_start = warm.last().expect("warm trickle").arrival_s.max(2.0);
    let mut burst = PoissonArrivals::new(9.5, SEED ^ 0x52).requests(&specs[8..]);
    for (k, r) in burst.iter_mut().enumerate() {
        r.id = (8 + k) as u64;
        r.arrival_s += burst_start;
    }
    let mut requests = warm;
    requests.extend(burst);

    let bandit_policy = ControllerPolicy::Bandit(BanditConfig {
        accuracy_floor: 0.95,
        ..BanditConfig::default()
    });
    let spec = SloSpec::parse(&format!("p99_ttft={TRACKED_P99_TTFT_S}")).expect("valid spec");

    let dense = run(&bank, &config, &requests, Some(2.0), None, None);
    let bandit = run(&bank, &config, &requests, None, Some(&bandit_policy), None);
    let guarded = run(
        &bank,
        &config,
        &requests,
        None,
        Some(&bandit_policy.clone().slo_adaptive()),
        Some(&spec),
    );

    println!(
        "{} requests (warm trickle, then a sustained burst), batch cap {MAX_BATCH}, \
         {N_LAYERS}-layer model",
        requests.len()
    );
    println!(
        "tracker objective p99_ttft <= {:.0} ms, external SLA {:.0} ms\n",
        TRACKED_P99_TTFT_S * 1e3,
        SLA_P99_TTFT_S * 1e3
    );
    println!(
        "{:<12} {:>8} {:>14} {:>12} {:>14}",
        "policy", "tok/s", "p99 TTFT (ms)", "avg layers", "within SLA"
    );
    for (name, r) in [
        ("no-exit", &dense),
        ("bandit", &bandit),
        ("slo+bandit", &guarded),
    ] {
        println!(
            "{name:<12} {:>8.2} {:>14.0} {:>12.1} {:>14}",
            r.stats.throughput_tok_s,
            r.stats.p99_ttft_s * 1e3,
            r.avg_layers,
            if r.stats.p99_ttft_s <= SLA_P99_TTFT_S {
                "yes"
            } else {
                "NO"
            }
        );
    }

    // The guard's activity is itself observable: the tracker's state
    // transitions land in the trace as typed events.
    println!("\nslo+bandit trace transitions:");
    for (t, kind) in &guarded.transitions {
        match kind {
            EventKind::SloFired {
                objective,
                burn_rate,
            } => {
                println!("  t={t:.3}s  FIRED   {objective} (burn {burn_rate:.1}x)")
            }
            EventKind::SloCleared { objective } => {
                println!("  t={t:.3}s  CLEARED {objective}")
            }
            _ => unreachable!("filtered above"),
        }
    }
    assert!(
        !guarded.transitions.is_empty(),
        "the guarded run should fire (and trace) at least one alert"
    );
    assert!(
        bandit.transitions.is_empty(),
        "no tracker armed, no transitions"
    );

    // The headline claim, small-scale twin of `ablation_slo`: the
    // exits-off bandit blows the SLA, the wrapped bandit holds it.
    assert!(
        bandit.stats.p99_ttft_s > SLA_P99_TTFT_S,
        "unwrapped bandit should blow the SLA ({:.0} ms vs {:.0} ms)",
        bandit.stats.p99_ttft_s * 1e3,
        SLA_P99_TTFT_S * 1e3
    );
    assert!(
        guarded.stats.p99_ttft_s <= SLA_P99_TTFT_S,
        "slo+bandit should hold the SLA ({:.0} ms vs {:.0} ms)",
        guarded.stats.p99_ttft_s * 1e3,
        SLA_P99_TTFT_S * 1e3
    );
    assert!(
        guarded.stats.throughput_tok_s > dense.stats.throughput_tok_s,
        "the guard spends exits only under pressure — it should still beat no-exit"
    );
    println!(
        "\nslo+bandit holds p99 TTFT at {:.0} ms (bandit: {:.0} ms, SLA {:.0} ms)",
        guarded.stats.p99_ttft_s * 1e3,
        bandit.stats.p99_ttft_s * 1e3,
        SLA_P99_TTFT_S * 1e3
    );
}
