//! The traffic-class-keyed feedback plane on a mixed stream.
//!
//! Two traffic classes interleave request-by-request through one
//! engine:
//!
//! * **class S — shallow chat**: tokens settle within the first few
//!   layers and the draft knows the domain; harvesting exits saves most
//!   of the decode work at a permissive threshold.
//! * **class H — draft-hostile**: tokens *look* identical to class S
//!   (same exit layers, same predictor scores) but the draft barely
//!   knows the domain, so nearly every predictor fire is a rejected
//!   full-LM-head verification. The honest operating point is "exits
//!   off".
//!
//! A single global bandit sees the blend: its epochs mix clean class-S
//! rewards with class-H bleeding, the accuracy floor zeroes them, and
//! the posterior drifts toward the off-arm — forfeiting class S. The
//! classed controller keys one posterior per class and serves both at
//! their own operating points, live in the same engine via per-class
//! predictor banks. The table below shows both runs side by side, and a
//! small 3-worker cluster repeats the tagged run with coordinator
//! gossip, printing the per-class breakdown every worker converged to.
//!
//! Run with: `cargo run --release --example mixed_traffic`

use std::sync::Arc;

use specee::batch::{Admission, BatchedEngine};
use specee::cluster::{Cluster, ClusterConfig, ClusterRequest, RouterPolicy};
use specee::control::{BanditConfig, ControllerPolicy};
use specee::core::collect::{collect_training_data, train_bank};
use specee::core::predictor::{PredictorBank, PredictorConfig};
use specee::core::{ScheduleEngine, SpecEeConfig, TrafficClass};
use specee::metrics::{FrameworkProfile, HardwareProfile};
use specee::model::{CostDims, ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::serve::{AdmissionPolicy, BatcherConfig, ServeRequest};
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

const N_LAYERS: usize = 16;
const GEN: usize = 6;
const SEED: u64 = 2027;
const PER_CLASS: usize = 16;

const CLASS_S: TrafficClass = TrafficClass::new(1);
const CLASS_H: TrafficClass = TrafficClass::new(4);

fn model_cfg() -> ModelConfig {
    ModelConfig {
        n_layers: N_LAYERS,
        vocab_size: 512,
        ..ModelConfig::tiny()
    }
    .with_cost(CostDims {
        n_layers: N_LAYERS,
        ..CostDims::llama2_7b()
    })
}

/// Shallow chat traffic the predictor was calibrated on.
fn shallow_profile() -> DatasetProfile {
    DatasetProfile {
        exit_mu: 0.10,
        exit_sigma: 0.02,
        early_frac: 0.0,
        ..DatasetProfile::mt_bench()
    }
}

/// Same exit geometry, hostile draft: fires become wasted verifications.
fn hostile_profile() -> DatasetProfile {
    DatasetProfile {
        hit_rate: 0.1,
        ..shallow_profile()
    }
}

fn class_of(id: u64) -> TrafficClass {
    // Period-4 blend (H, S, S, H) — fine-grained, and coprime to the
    // cluster's worker count so round-robin mixes both classes onto
    // every worker.
    if matches!(id % 4, 0 | 3) {
        CLASS_H
    } else {
        CLASS_S
    }
}

fn profile_of(class: TrafficClass) -> DatasetProfile {
    if class == CLASS_S {
        shallow_profile()
    } else {
        hostile_profile()
    }
}

fn request(id: u64) -> (SyntheticLm, OracleDraft, Vec<TokenId>) {
    let profile = profile_of(class_of(id));
    let lm = SyntheticLmBuilder::new(model_cfg(), profile.clone())
        .seed(SEED)
        .build();
    let draft = OracleDraft::new(*lm.language(), profile.hit_rate, &model_cfg(), SEED ^ id);
    let start = (SEED as u32 + id as u32 * 11) % model_cfg().vocab_size as u32;
    let prompt = lm.language().sample_sequence(start, 10, SEED ^ (id << 3));
    (lm, draft, prompt)
}

/// The bandit policy both runs use: the default grid's 1.0 arm is the
/// off switch the hostile class needs; forgetting is disabled because
/// the per-class streams are stationary.
fn bandit() -> ControllerPolicy {
    ControllerPolicy::Bandit(BanditConfig {
        discount: 1.0,
        ..BanditConfig::default()
    })
}

struct ClassOutcome {
    tokens: f64,
    layer_sum: f64,
    fires: u64,
    accepts: u64,
}

impl ClassOutcome {
    fn avg_layers(&self) -> f64 {
        self.layer_sum / self.tokens.max(1.0)
    }
}

/// Streams the blend through one batch-1 engine; `tagged` keys the
/// controller by class, untagged blends everything into one posterior.
fn run(bank: &PredictorBank, config: &SpecEeConfig, tagged: bool) -> [ClassOutcome; 2] {
    let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
        1,
        16,
        N_LAYERS,
        bank.clone(),
        ScheduleEngine::all_layers(N_LAYERS),
        config.clone(),
    );
    engine.set_controller(bandit().build_classed(bank.len(), config.predictor.threshold));
    let mut outcomes = [
        ClassOutcome {
            tokens: 0.0,
            layer_sum: 0.0,
            fires: 0,
            accepts: 0,
        },
        ClassOutcome {
            tokens: 0.0,
            layer_sum: 0.0,
            fires: 0,
            accepts: 0,
        },
    ];
    for id in 0..2 * PER_CLASS as u64 {
        let class = class_of(id);
        let (lm, draft, prompt) = request(id);
        let admit_class = if tagged { class } else { TrafficClass::DEFAULT };
        let out = match engine.admit_classed(id, admit_class, lm, draft, &prompt, GEN) {
            Admission::Done(out) => out,
            Admission::Seated { .. } => loop {
                let step = engine.step();
                let slot = usize::from(class == CLASS_H);
                outcomes[slot].fires += step.feedback.len() as u64;
                outcomes[slot].accepts +=
                    step.feedback.iter().filter(|f| f.accepted).count() as u64;
                if let Some(out) = step.finished.into_iter().next() {
                    break out;
                }
            },
        };
        let slot = usize::from(class == CLASS_H);
        outcomes[slot].tokens += out.exit_layers.len() as f64;
        outcomes[slot].layer_sum += out.exit_layers.iter().sum::<usize>() as f64;
    }
    outcomes
}

fn main() {
    let cfg = model_cfg();

    // Offline: calibrate predictors on the shallow class (the hostile
    // class is indistinguishable to them — that is the point).
    let profile = shallow_profile();
    let mut lm = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
        .seed(SEED)
        .build();
    let mut draft = OracleDraft::new(*lm.language(), 0.9, &cfg, SEED ^ 7);
    let train_prompts: Vec<(Vec<TokenId>, usize)> = (0..8u32)
        .map(|i| (vec![2 + i, 7 + (i % 5), 1 + i], 12))
        .collect();
    let pcfg = PredictorConfig {
        hidden_dim: 16,
        ..PredictorConfig::default()
    };
    let data = collect_training_data(&mut lm, &mut draft, &train_prompts, pcfg.spec_k);
    let mut bank = PredictorBank::new(N_LAYERS, &pcfg, &mut Pcg::seed(SEED));
    train_bank(
        &mut bank,
        &data.samples,
        1.0,
        &TrainConfig {
            epochs: 6,
            lr: 3e-3,
            ..TrainConfig::default()
        },
        SEED,
    );
    let config = SpecEeConfig {
        predictor: pcfg,
        ..SpecEeConfig::default()
    };

    println!(
        "mixed stream: {} shallow (S) + {} draft-hostile (H) requests, \
         interleaved H S S H …, {N_LAYERS}-layer model, batch 1\n",
        PER_CLASS, PER_CLASS
    );

    let global = run(&bank, &config, false);
    let classed = run(&bank, &config, true);
    println!(
        "{:<22} {:>14} {:>14} {:>16} {:>16}",
        "controller", "S avg layers", "H avg layers", "S accept rate", "H accept rate"
    );
    let rate = |o: &ClassOutcome| {
        if o.fires == 0 {
            "-".to_string()
        } else {
            format!("{:.0}%", 100.0 * o.accepts as f64 / o.fires as f64)
        }
    };
    for (name, [s, h]) in [("global bandit", &global), ("per-class bandit", &classed)] {
        println!(
            "{name:<22} {:>14.1} {:>14.1} {:>16} {:>16}",
            s.avg_layers(),
            h.avg_layers(),
            rate(s),
            rate(h),
        );
    }

    // The classed controller must harvest class S markedly better than
    // the blend-poisoned global posterior, while keeping class H
    // essentially off (full depth).
    assert!(
        classed[0].avg_layers() < global[0].avg_layers() - 1.0,
        "per-class control should harvest class S better: {:.1} vs {:.1} layers",
        classed[0].avg_layers(),
        global[0].avg_layers()
    );
    assert!(
        classed[1].avg_layers() > N_LAYERS as f64 - 2.0,
        "class H should run (almost) full depth: {:.1}",
        classed[1].avg_layers()
    );

    // The same tagged stream through a 3-worker cluster with gossip:
    // every worker ends up with both classes' operating points (the
    // coordinator broadcasts each worker's evidence to the others), and
    // the per-class breakdown mirrors the single-engine run.
    let mut cluster: Cluster<SyntheticLm, OracleDraft> = Cluster::spawn(
        &ClusterConfig {
            workers: 3,
            page_size: 16,
            page_capacity: None,
            prefix_share: false,
            preemption: false,
            admission: AdmissionPolicy::Fcfs,
            batcher: BatcherConfig {
                max_batch: 1,
                hardware: HardwareProfile::a100_80g(),
                framework: FrameworkProfile::vllm(),
                cost: cfg.cost.expect("cost twin"),
            },
            controller: bandit(),
            gossip: true,
            trace: false,
            trace_sample: 1,
            slo: None,
        },
        RouterPolicy::RoundRobin.build(),
        &bank,
        &ScheduleEngine::all_layers(N_LAYERS),
        &config,
        Arc::new(|req: &ClusterRequest| {
            let (lm, draft, _) = request(req.request.id);
            (lm, draft)
        }),
    );
    for id in 0..2 * PER_CLASS as u64 {
        let (_, _, prompt) = request(id);
        cluster.submit(
            ClusterRequest::new(ServeRequest {
                id,
                prompt,
                gen_len: GEN,
                arrival_s: id as f64 * 0.003,
            })
            .with_class(class_of(id)),
        );
    }
    let report = cluster.drain();
    println!("\n3-worker cluster, per-class bandit + gossip:");
    for row in report.class_breakdown() {
        println!(
            "  {:<7} {:>3} requests | avg layers {:>4.1}/{N_LAYERS} | thr {}",
            row.class.to_string(),
            row.requests,
            row.mean_layers().unwrap_or(0.0),
            row.mean_threshold
                .map(|t| format!("{t:.2}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    assert_eq!(report.completed(), 2 * PER_CLASS);
    let breakdown = report.class_breakdown();
    assert_eq!(breakdown.len(), 2, "both classes reported");
    // Gossip warmed every worker's controller for both classes.
    for worker in &report.workers {
        assert_eq!(
            worker.classes.len(),
            2,
            "worker {} should carry both classes' controller state",
            worker.worker
        );
    }
    println!(
        "\nper-class control harvests S at {:.1} layers (global blend: {:.1}) while \
         holding H at {:.1}/{N_LAYERS}",
        classed[0].avg_layers(),
        global[0].avg_layers(),
        classed[1].avg_layers(),
    );
}
