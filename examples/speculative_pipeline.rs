//! Speculative-decoding pipeline (the cloud scenario): EAGLE-style tree
//! decoding, then the same with SpecEE's hyper-token early exiting (T3),
//! priced on the A100 roofline.
//!
//! Run with: `cargo run --release --example speculative_pipeline`

use specee::core::collect::{collect_training_data, train_bank};
use specee::core::engine::SpeculativeEngine;
use specee::core::predictor::PredictorBank;
use specee::core::SpecEeConfig;
use specee::draft::TreeShape;
use specee::metrics::{FrameworkProfile, HardwareProfile, Roofline};
use specee::model::ModelConfig;
use specee::nn::TrainConfig;
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

fn main() {
    let cfg = ModelConfig::sim_llama2_7b();
    let profile = DatasetProfile::qa();
    let seed = 7;

    // Offline training of the exit predictors.
    let mut lm = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
        .seed(seed)
        .build();
    let mut draft = OracleDraft::new(*lm.language(), profile.hit_rate, &cfg, seed);
    let prompts = vec![
        (lm.language().sample_sequence(4, 14, 1), 18),
        (lm.language().sample_sequence(8, 14, 2), 18),
    ];
    let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
    let config = SpecEeConfig {
        tree_shape: TreeShape::eagle_default(),
        ..SpecEeConfig::default()
    };
    let mut bank = PredictorBank::new(cfg.n_layers, &config.predictor, &mut Pcg::seed(seed));
    train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), seed);

    let prompt = lm.language().sample_sequence(11, 20, 9);
    let build = || {
        SyntheticLmBuilder::new(cfg.clone(), profile.clone())
            .seed(seed)
            .build()
    };
    let roofline = Roofline::with_framework(HardwareProfile::a100_80g(), FrameworkProfile::eagle());

    // EAGLE baseline: draft tree + verify, full depth.
    let mut eagle = SpeculativeEngine::baseline(build(), draft.clone(), config.clone());
    let base = eagle.generate(&prompt, 48);
    let base_cost = roofline.cost(&base.meter);
    println!("EAGLE baseline:");
    println!(
        "  tokens/round      : {:.2}",
        base.tokens.len() as f64 / base.rounds as f64
    );
    println!("  avg layers        : {:.2}", base.avg_layers());
    println!(
        "  modelled tokens/s : {:.1} (A100)",
        base_cost.tokens_per_s()
    );

    // SpecEE + EAGLE: hyper-token merged mapping (T3).
    let schedule = config.build_schedule(cfg.n_layers, Some(&data.exit_frequencies));
    let mut specee = SpeculativeEngine::with_early_exit(build(), draft, bank, schedule, config);
    let out = specee.generate(&prompt, 48);
    let cost = roofline.cost(&out.meter);
    println!("\nSpecEE+EAGLE:");
    println!(
        "  tokens/round      : {:.2}",
        out.tokens.len() as f64 / out.rounds as f64
    );
    println!("  avg layers        : {:.2}", out.avg_layers());
    println!("  modelled tokens/s : {:.1} (A100)", cost.tokens_per_s());
    println!(
        "  speedup           : {:.2}x (paper: ~1.05x over EAGLE)",
        cost.tokens_per_s() / base_cost.tokens_per_s()
    );
    let same = out
        .tokens
        .iter()
        .zip(base.tokens.iter())
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "  output agreement  : {:.1}%",
        same as f64 / out.tokens.len().min(base.tokens.len()) as f64 * 100.0
    );
}
