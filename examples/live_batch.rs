//! Live batched decoding: N sequences in lock-step with per-sequence
//! early exit.
//!
//! Where `examples/serving.rs` *replays* recorded traces through a clock
//! model, this example drives the `specee-batch` runtime directly: four
//! sequences decode together, each making its own predictor decisions,
//! and every step prints the measured per-layer runner counts — the
//! Cannikin effect (the batch pays for layers down to the rearmost
//! still-needed one) observed live rather than assumed. It then serves
//! the same burst through `ContinuousBatcher::run_live` and overlays the
//! live and replay clocks.
//!
//! Run with: `cargo run --release --example live_batch`

use specee::batch::{Admission, BatchedEngine};
use specee::core::collect::{collect_training_data, train_bank};
use specee::core::engine::SpecEeEngine;
use specee::core::predictor::{PredictorBank, PredictorConfig};
use specee::core::SpecEeConfig;
use specee::metrics::{FrameworkProfile, HardwareProfile};
use specee::model::{CostDims, ModelConfig, TokenId};
use specee::nn::TrainConfig;
use specee::serve::{BatcherConfig, ContinuousBatcher, PoissonArrivals, RequestTrace};
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLm, SyntheticLmBuilder};
use specee::tensor::rng::Pcg;

const N_LAYERS: usize = 16;
const GEN: usize = 12;

fn model_cfg() -> ModelConfig {
    ModelConfig {
        n_layers: N_LAYERS,
        vocab_size: 512,
        ..ModelConfig::tiny()
    }
    .with_cost(CostDims {
        n_layers: N_LAYERS,
        ..CostDims::llama2_7b()
    })
}

fn build_lm(seed: u64) -> SyntheticLm {
    SyntheticLmBuilder::new(model_cfg(), DatasetProfile::qa())
        .seed(seed)
        .build()
}

fn build_draft(lm: &SyntheticLm, seed: u64) -> OracleDraft {
    OracleDraft::new(*lm.language(), 0.9, &model_cfg(), seed)
}

fn main() {
    let seed = 2025;
    let cfg = model_cfg();

    // Offline phase: collect features, train the per-layer predictors.
    let mut lm = build_lm(seed);
    let mut draft = build_draft(&lm, seed);
    let train_prompts: Vec<(Vec<TokenId>, usize)> = (0..10u32)
        .map(|i| (vec![2 + i, 7 + (i % 5), 1 + i], GEN))
        .collect();
    let data = collect_training_data(&mut lm, &mut draft, &train_prompts, 4);
    let pcfg = PredictorConfig {
        hidden_dim: 32,
        ..PredictorConfig::default()
    };
    let mut bank = PredictorBank::new(N_LAYERS, &pcfg, &mut Pcg::seed(seed));
    train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), seed);
    let config = SpecEeConfig {
        predictor: pcfg,
        ..SpecEeConfig::default()
    };
    let schedule = config.build_schedule(N_LAYERS, Some(&data.exit_frequencies));

    // Live lock-step decode of four co-batched sequences.
    let prompts: [&[TokenId]; 4] = [&[4, 2, 9], &[1, 5, 3], &[8, 8, 2], &[6, 1, 7]];
    let mut engine: BatchedEngine<SyntheticLm, OracleDraft> = BatchedEngine::new(
        4,
        16,
        N_LAYERS,
        bank.clone(),
        schedule.clone(),
        config.clone(),
    );
    for (i, p) in prompts.iter().enumerate() {
        let lm = build_lm(seed);
        let d = build_draft(&lm, seed ^ i as u64);
        match engine.admit(i as u64, lm, d, p, GEN) {
            Admission::Seated { slot } => assert_eq!(slot, i),
            Admission::Done(_) => unreachable!("GEN > 1"),
        }
    }
    println!("live lock-step decode, batch 4, {N_LAYERS} layers:");
    println!("step | occupancy | rearmost layer | per-sequence exits");
    let mut finished = Vec::new();
    let mut step_no = 0;
    while engine.occupancy() > 0 {
        let step = engine.step();
        step_no += 1;
        // Per-slot exit = number of layers that slot ran (count of layers
        // whose runner set includes it — recoverable from runner deltas).
        let exits: Vec<String> = step
            .layer_runners
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0] > w[1])
            .flat_map(|(l, w)| std::iter::repeat_n(format!("L{}", l + 1), w[0] - w[1]))
            .collect();
        println!(
            "{step_no:>4} | {:>9} | {:>14} | {}",
            step.ctx_lens.len(),
            step.rearmost_layer(),
            if exits.is_empty() {
                "all full depth".to_string()
            } else {
                exits.join(" ")
            }
        );
        finished.extend(step.finished);
    }
    finished.sort_by_key(|o| o.id);
    println!(
        "\npage pool: {} pages created, {} peak in use, {} now (recycled on retire)",
        engine.pool().pages_created(),
        engine.pool().pages_peak(),
        engine.pool().pages_in_use()
    );
    for out in &finished {
        println!(
            "seq {}: {} tokens, mean exit {:.1}/{N_LAYERS}, {} verifies",
            out.id,
            out.tokens.len(),
            out.avg_layers(),
            out.verify_calls
        );
    }

    // Served comparison: the same burst through replay and live modes.
    let specs: Vec<(Vec<TokenId>, usize)> = prompts.iter().map(|p| (p.to_vec(), GEN)).collect();
    let requests = PoissonArrivals::new(30.0, seed).requests(&specs);
    let batcher = ContinuousBatcher::new(BatcherConfig {
        max_batch: 4,
        hardware: HardwareProfile::a100_80g(),
        framework: FrameworkProfile::vllm(),
        cost: cfg.cost.expect("cost twin"),
    });
    let mut traces = Vec::new();
    for (i, (p, g)) in specs.iter().enumerate() {
        let lm = build_lm(seed);
        let d = build_draft(&lm, seed ^ i as u64);
        let mut single = SpecEeEngine::new(lm, d, bank.clone(), schedule.clone(), config.clone());
        traces.push(RequestTrace::from_output(&single.generate(p, *g), true));
    }
    let replay = batcher.run(&requests, &traces);
    let mut live_engine: BatchedEngine<SyntheticLm, OracleDraft> =
        BatchedEngine::new(4, 16, N_LAYERS, bank, schedule, config);
    let live = batcher.run_live(&requests, &mut live_engine, |req| {
        let lm = build_lm(seed);
        let d = build_draft(&lm, seed ^ req.id);
        (lm, d)
    });
    for (out, trace) in live.outputs.iter().zip(&traces) {
        assert_eq!(out.tokens, trace.tokens, "live/replay token mismatch");
    }
    println!(
        "\nserved burst of {}: replay {:.2} tok/s, live {:.2} tok/s (same tokens, measured clock)",
        specs.len(),
        replay.stats().throughput_tok_s,
        live.report.stats().throughput_tok_s
    );
}
