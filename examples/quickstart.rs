//! Quickstart: the full SpecEE pipeline in ~60 lines.
//!
//! Builds a calibrated synthetic Llama2-7B stand-in, collects training
//! features, trains the per-layer exit predictors, and decodes with
//! speculative early exiting — printing where each token exited.
//!
//! Run with: `cargo run --release --example quickstart`

use specee::core::collect::{collect_training_data, train_bank};
use specee::core::engine::{DenseEngine, SpecEeEngine};
use specee::core::predictor::PredictorBank;
use specee::core::{agreement, SpecEeConfig};
use specee::model::ModelConfig;
use specee::nn::TrainConfig;
use specee::synth::{DatasetProfile, OracleDraft, SyntheticLmBuilder, Vocabulary};
use specee::tensor::rng::Pcg;

fn main() {
    let cfg = ModelConfig::sim_llama2_7b();
    let profile = DatasetProfile::mt_bench();
    let seed = 2024;

    // 1. Build the target model and an aligned draft (speculative) model.
    let mut lm = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
        .seed(seed)
        .build();
    let mut draft = OracleDraft::new(*lm.language(), profile.hit_rate, &cfg, seed);

    // 2. Offline phase (§7.4.4): collect per-layer features and labels,
    //    then train one lightweight MLP predictor per layer.
    println!("collecting training data ...");
    let prompts = vec![
        (lm.language().sample_sequence(3, 16, 1), 20),
        (lm.language().sample_sequence(9, 16, 2), 20),
        (lm.language().sample_sequence(27, 16, 3), 20),
    ];
    let data = collect_training_data(&mut lm, &mut draft, &prompts, 4);
    println!(
        "  {} samples over {} layers; theoretical average exit: {:.1} layers",
        data.samples.len(),
        cfg.n_layers,
        data.theoretical_layers
    );
    let config = SpecEeConfig::default();
    let mut bank = PredictorBank::new(cfg.n_layers, &config.predictor, &mut Pcg::seed(seed));
    let report = train_bank(&mut bank, &data.samples, 1.0, &TrainConfig::default(), seed);
    println!(
        "  mean predictor accuracy: {:.1}%",
        report.mean_accuracy * 100.0
    );

    // 3. Online phase: decode with speculative early exiting.
    let schedule = config.build_schedule(cfg.n_layers, Some(&data.exit_frequencies));
    let fresh = SyntheticLmBuilder::new(cfg.clone(), profile.clone())
        .seed(seed)
        .build();
    let prompt = fresh.language().sample_sequence(5, 12, 7);
    let mut engine = SpecEeEngine::new(fresh, draft, bank, schedule, config);
    let out = engine.generate(&prompt, 24);

    let vocab = Vocabulary::new(cfg.vocab_size);
    println!("\nprompt : {}", vocab.detokenize(&prompt));
    println!("output : {}", vocab.detokenize(&out.tokens));
    println!("\ntoken-by-token exit layers (of {} total):", cfg.n_layers);
    for (tok, layers) in out.tokens.iter().zip(out.exit_layers.iter()) {
        println!(
            "  {:<10} exited after layer {layers}",
            vocab.token_str(*tok)
        );
    }
    println!(
        "\naverage layers: {:.2} / {} ({} predictor calls, {} verifications)",
        out.avg_layers(),
        cfg.n_layers,
        out.predictor_calls,
        out.verify_calls
    );

    // 4. Sanity: the early-exit output matches dense decoding.
    let reference = SyntheticLmBuilder::new(cfg, profile).seed(seed).build();
    let dense = DenseEngine::new(reference).generate(&prompt, 24);
    println!(
        "agreement with dense decoding: {:.1}%",
        agreement(&out.tokens, &dense.tokens) * 100.0
    );
}
